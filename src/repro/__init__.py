"""repro — a reproduction of "Kishu: Time-Traveling for Computational
Notebooks" (SIGMOD 2025 demo; UIUC technical report).

Quickstart::

    from repro import NotebookKernel, KishuSession

    kernel = NotebookKernel()
    kishu = KishuSession.init(kernel)
    kernel.run_cell("xs = [1, 2, 3]")
    before = kishu.head_id
    kernel.run_cell("xs.clear()")
    kishu.checkout(before)          # un-does the clear, incrementally
    assert kernel.get("xs") == [1, 2, 3]
"""

from repro.analysis import (
    CellEffects,
    CrossValidator,
    EscapeKind,
    LintEngine,
    PurityRegistry,
    RuleRegistry,
    analyze_cell,
)
from repro.core import (
    Blocklist,
    CheckoutReport,
    CheckpointGraph,
    CoVariable,
    CoVariablePool,
    DeltaDetector,
    InMemoryCheckpointStore,
    KishuSession,
    ReadOnlyCellAnalyzer,
    RecoveryReport,
    RetryPolicy,
    SerializerChain,
    SessionState,
    SQLiteCheckpointStore,
    StateDelta,
    VarGraph,
    VarGraphBuilder,
)
from repro.errors import (
    CheckoutError,
    CheckpointNotFoundError,
    DeserializationError,
    KernelError,
    KishuError,
    PermanentStorageError,
    RestorationError,
    SerializationError,
    SimulatedCrash,
    StorageError,
    TransientStorageError,
)
from repro.kernel import Cell, CellResult, NotebookKernel, PatchedNamespace
from repro.telemetry import AnalysisStats, WalkStats, WalkTelemetry

__version__ = "1.0.0"

__all__ = [
    "AnalysisStats",
    "Blocklist",
    "CellEffects",
    "CrossValidator",
    "EscapeKind",
    "LintEngine",
    "PurityRegistry",
    "RuleRegistry",
    "analyze_cell",
    "CheckoutReport",
    "CheckpointGraph",
    "CoVariable",
    "CoVariablePool",
    "DeltaDetector",
    "InMemoryCheckpointStore",
    "KishuSession",
    "ReadOnlyCellAnalyzer",
    "SerializerChain",
    "SessionState",
    "SQLiteCheckpointStore",
    "StateDelta",
    "VarGraph",
    "VarGraphBuilder",
    "Cell",
    "CellResult",
    "NotebookKernel",
    "PatchedNamespace",
    "KishuError",
    "KernelError",
    "SerializationError",
    "DeserializationError",
    "CheckpointNotFoundError",
    "CheckoutError",
    "RestorationError",
    "StorageError",
    "TransientStorageError",
    "PermanentStorageError",
    "SimulatedCrash",
    "RecoveryReport",
    "RetryPolicy",
    "WalkStats",
    "WalkTelemetry",
    "__version__",
]
