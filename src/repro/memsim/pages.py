"""Page table for the simulated process address space.

The OS-level checkpointing baselines (CRIU / CRIU-Incremental, §7.1 of the
paper) operate on memory pages, not objects. This module provides the page
mechanics: a sparse table of fixed-size pages with write-through dirty
tracking, page content digests for incremental snapshot deduplication, and
full/partial page-image copies whose byte volume is the baseline's
checkpoint cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.hashing import digest_bytes

DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class Extent:
    """A contiguous byte range in the address space: [start, start+length)."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length

    def pages(self, page_size: int) -> range:
        """Indices of every page this extent touches."""
        if self.length == 0:
            return range(0)
        first = self.start // page_size
        last = (self.end - 1) // page_size
        return range(first, last + 1)


class PageTable:
    """Sparse array of pages with dirty tracking.

    Writing any byte of a page marks the whole page dirty — exactly the
    granularity mismatch the paper exploits: a one-element change to a
    fragmented structure dirties every page the structure touches.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._pages: Dict[int, bytearray] = {}
        self._dirty: Set[int] = set()

    # -- byte I/O ---------------------------------------------------------------

    def write(self, start: int, data: bytes) -> None:
        """Write bytes at an absolute address, dirtying touched pages."""
        offset = 0
        remaining = len(data)
        address = start
        while remaining > 0:
            page_index = address // self.page_size
            page_offset = address % self.page_size
            span = min(remaining, self.page_size - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.page_size)
                self._pages[page_index] = page
            page[page_offset : page_offset + span] = data[offset : offset + span]
            self._dirty.add(page_index)
            offset += span
            address += span
            remaining -= span

    def read(self, start: int, length: int) -> bytes:
        """Read bytes at an absolute address (zero-filled where unmapped)."""
        chunks: List[bytes] = []
        address = start
        remaining = length
        while remaining > 0:
            page_index = address // self.page_size
            page_offset = address % self.page_size
            span = min(remaining, self.page_size - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                chunks.append(bytes(span))
            else:
                chunks.append(bytes(page[page_offset : page_offset + span]))
            address += span
            remaining -= span
        return b"".join(chunks)

    def zero(self, extent: Extent) -> None:
        """Zero an extent (freeing an object's bytes), dirtying its pages."""
        self.write(extent.start, bytes(extent.length))

    # -- page-level queries --------------------------------------------------------

    def mapped_pages(self) -> Set[int]:
        return set(self._pages)

    def dirty_pages(self) -> Set[int]:
        return set(self._dirty)

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def page_bytes(self, indices: Iterable[int]) -> Dict[int, bytes]:
        """Copy the named pages — this byte movement is the snapshot cost."""
        return {index: bytes(self._pages[index]) for index in indices if index in self._pages}

    def page_digests(self, indices: Iterable[int]) -> Dict[int, int]:
        return {
            index: digest_bytes(self._pages[index])
            for index in indices
            if index in self._pages
        }

    @property
    def mapped_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def __len__(self) -> int:
        return len(self._pages)
