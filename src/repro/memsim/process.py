"""Simulated notebook process heap for OS-level snapshot baselines.

CRIU-style tools see the notebook as a process image: a heap of pages.
This module models how CPython lays session data out on that heap, so the
page-granularity costs the paper reports for CRIU (§2.3, §7.3–7.5) emerge
from mechanics rather than being hard-coded:

* Every top-level variable's value is represented by its serialized bytes,
  split into fixed-size **chunks** standing in for the per-element PyObject
  allocations of real CPython structures.
* Chunks are placed by a bump allocator in *allocation order*. Variables
  built incrementally and interleaved (e.g. two lists appended alternately
  in a loop, the paper's Fig 4) therefore end up with their chunks
  interleaved on shared pages — the fragmentation that makes page-level
  deltas coarse.
* Mutating a variable rewrites all of its chunks (CPython in-place updates
  touch element pointers spread across the structure), dirtying every page
  the variable touches.

Off-process state (simulated GPU memory, remote actors — anything flagged
by :func:`repro.libsim.devices.is_offprocess`) is by definition *not* in
the page image; snapshotting a process whose state references it fails,
reproducing CRIU's documented limitation.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SnapshotError
from repro.memsim.pages import DEFAULT_PAGE_SIZE, Extent, PageTable

DEFAULT_CHUNK_SIZE = 1024


def nominal_object_bytes(obj: Any) -> bytes:
    """Bytes standing in for an object's heap footprint.

    Uses the pickle representation when available (proportional to real
    data size); anything unpicklable (generators live happily in a memory
    image) falls back to a size-estimated filler.
    """
    try:
        return pickle.dumps(obj, protocol=5)
    except Exception:
        estimate = max(sys.getsizeof(obj), 64)
        return bytes(min(estimate, 1 << 20))


@dataclass
class VariableLayout:
    """Where one variable's chunks live in the address space."""

    name: str
    extents: List[Extent] = field(default_factory=list)
    total_bytes: int = 0

    def pages(self, page_size: int) -> Set[int]:
        touched: Set[int] = set()
        for extent in self.extents:
            touched.update(extent.pages(page_size))
        return touched


@dataclass
class ProcessSnapshot:
    """A (possibly incremental) page image of the simulated process."""

    snapshot_id: int
    pages: Dict[int, bytes]
    parent_id: Optional[int]
    #: Per-variable payloads captured alongside the image so a restore can
    #: rebuild live objects: (pickled bytes or None, original reference).
    #: Mirrors CRIU restoring the heap bit-for-bit — a memory image cannot
    #: fail to "deserialize", so restoration falls back to the exact
    #: reference whenever pickling round-trips imperfectly.
    variables: Dict[str, Any]

    @property
    def page_bytes(self) -> int:
        return len(self.pages) * DEFAULT_PAGE_SIZE if self.pages else 0

    @property
    def size_bytes(self) -> int:
        return sum(len(data) for data in self.pages.values())


class SimulatedProcess:
    """The notebook process's heap, as an OS checkpointer sees it."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.pages = PageTable(page_size)
        self.page_size = page_size
        self.chunk_size = chunk_size
        self._layouts: Dict[str, VariableLayout] = {}
        self._cursor = 0
        self._snapshot_counter = 0
        self._last_snapshot_digests: Dict[int, int] = {}

    # -- heap maintenance -------------------------------------------------------

    def sync_variables(
        self, items: Dict[str, Any], changed_names: Optional[Set[str]] = None
    ) -> None:
        """Bring the heap in line with the namespace after a cell.

        ``changed_names`` limits rewriting to variables the cell touched;
        pass ``None`` to resync everything (initial layout). Interleaving
        emerges naturally: chunks for variables written in the same sync
        round-robin through the allocator.
        """
        live_names = set(items)
        for name in list(self._layouts):
            if name not in live_names:
                self._free(name)

        if changed_names is None:
            targets = [name for name in items]
        else:
            targets = [name for name in items if name in changed_names]

        payloads = {name: nominal_object_bytes(items[name]) for name in targets}
        self._write_interleaved(payloads)

    def _write_interleaved(self, payloads: Dict[str, bytes]) -> None:
        """Allocate/rewrite chunks for several variables, interleaving new
        allocations the way a shared bump allocator would."""
        plans: List[Tuple[str, bytes]] = []
        for name, data in payloads.items():
            layout = self._layouts.get(name)
            if layout is not None and layout.total_bytes == len(data):
                # Same-size in-place rewrite: touch existing extents.
                offset = 0
                for extent in layout.extents:
                    self.pages.write(extent.start, data[offset : offset + extent.length])
                    offset += extent.length
                continue
            if layout is not None:
                self._free(name)
            plans.append((name, data))

        if len(plans) == 1:
            # A lone allocation lays out contiguously — no interleaving
            # partner, so chunking it would add cost without fragmentation.
            name, data = plans[0]
            extent = Extent(start=self._cursor, length=len(data))
            self.pages.write(extent.start, data)
            self._cursor += len(data)
            self._layouts[name] = VariableLayout(
                name=name, extents=[extent], total_bytes=len(data)
            )
            return

        # New/regrown variables: interleave chunk allocation round-robin.
        cursors = {name: 0 for name, _ in plans}
        layouts = {name: VariableLayout(name=name) for name, _ in plans}
        remaining = dict(plans)
        while remaining:
            for name in list(remaining):
                data = remaining[name]
                offset = cursors[name]
                chunk = data[offset : offset + self.chunk_size]
                extent = Extent(start=self._cursor, length=len(chunk))
                self.pages.write(extent.start, chunk)
                layouts[name].extents.append(extent)
                layouts[name].total_bytes += len(chunk)
                self._cursor += len(chunk)
                cursors[name] += len(chunk)
                if cursors[name] >= len(data):
                    del remaining[name]
        for name, layout in layouts.items():
            self._layouts[name] = layout

    def touch_variable(self, name: str) -> None:
        """Dirty a variable's pages without changing its value.

        Models CPython reference counting: merely *reading* an object
        writes its refcount field, which lives in the object header — one
        per allocation. A contiguous buffer (a numpy array) has one
        header, so reading it dirties one page; a fragmented structure (a
        chunked list) has a header per element chunk, so reading it
        dirties a page per chunk — the §2.3 asymmetry that keeps
        page-level incremental snapshots large on fragmented state.
        """
        layout = self._layouts.get(name)
        if layout is None:
            return
        self._touch_counter = getattr(self, "_touch_counter", 0) + 1
        header = bytes([self._touch_counter & 0xFF])
        for extent in layout.extents:
            # One refcount header per allocation (extent start).
            self.pages.write(extent.start, header)

    def _free(self, name: str) -> None:
        layout = self._layouts.pop(name, None)
        if layout is None:
            return
        for extent in layout.extents:
            self.pages.zero(extent)

    # -- snapshotting -------------------------------------------------------------

    def snapshot(
        self,
        namespace_items: Dict[str, Any],
        *,
        incremental: bool = False,
        allow_offprocess: bool = False,
    ) -> ProcessSnapshot:
        """Take a (full or incremental) page image of the process.

        Raises:
            SnapshotError: if the state references off-process data and
                ``allow_offprocess`` is False — CRIU cannot capture device
                memory or other processes (§7.2).
        """
        if not allow_offprocess:
            offenders = _offprocess_variables(namespace_items)
            if offenders:
                raise SnapshotError(
                    "process image cannot capture off-process state held by "
                    f"variable(s): {sorted(offenders)}"
                )

        mapped = self.pages.mapped_pages()
        if incremental and self._last_snapshot_digests:
            digests = self.pages.page_digests(mapped)
            changed = {
                index
                for index, digest in digests.items()
                if self._last_snapshot_digests.get(index) != digest
            }
            image = self.pages.page_bytes(changed)
            self._last_snapshot_digests = digests
        else:
            image = self.pages.page_bytes(mapped)
            self._last_snapshot_digests = self.pages.page_digests(mapped)

        self._snapshot_counter += 1
        variables = {}
        for name, value in namespace_items.items():
            payload = None
            if _picklable(value):
                payload = pickle.dumps(value, protocol=5)
            variables[name] = (payload, value)
        snapshot = ProcessSnapshot(
            snapshot_id=self._snapshot_counter,
            pages=image,
            parent_id=self._snapshot_counter - 1 if incremental else None,
            variables=variables,
        )
        self.pages.clear_dirty()
        return snapshot

    # -- geometry queries (for tests/benchmarks) ------------------------------------

    def pages_of(self, name: str) -> Set[int]:
        layout = self._layouts.get(name)
        return layout.pages(self.page_size) if layout is not None else set()

    def layout_of(self, name: str) -> Optional[VariableLayout]:
        return self._layouts.get(name)

    @property
    def heap_bytes(self) -> int:
        return self.pages.mapped_bytes


def restore_namespace(snapshots: List[ProcessSnapshot]) -> Dict[str, Any]:
    """Rebuild the variable mapping from a full snapshot chain.

    Models CRIU restore: every page of every snapshot in the chain is read
    and pieced together (the paper's §7.5 observation that incremental
    CRIU restores are the slowest), then objects are revived.
    """
    if not snapshots:
        raise SnapshotError("no snapshots to restore from")
    # Piece the image together: every page of every snapshot in the chain
    # is physically copied into the reassembled address space, with later
    # snapshots overwriting earlier pages — this byte movement is why
    # incremental CRIU restores are the slowest (§7.5).
    image: Dict[int, bytearray] = {}
    for snapshot in snapshots:
        for index, page in snapshot.pages.items():
            image[index] = bytearray(page)

    final = snapshots[-1]
    restored: Dict[str, Any] = {}
    for name, (payload, reference) in final.variables.items():
        if payload is None:
            restored[name] = reference
            continue
        try:
            restored[name] = pickle.loads(payload)
        except Exception:
            # A bit-for-bit image restore cannot fail; fall back to the
            # exact object the image would have preserved.
            restored[name] = reference
    return restored


def _picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj, protocol=5)
        return True
    except Exception:
        return False


def _offprocess_variables(items: Dict[str, Any]) -> Set[str]:
    from repro.libsim.devices import contains_offprocess

    return {name for name, value in items.items() if contains_offprocess(value)}
