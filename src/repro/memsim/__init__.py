"""Simulated process memory: the substrate for OS-level snapshot baselines."""

from repro.memsim.pages import DEFAULT_PAGE_SIZE, Extent, PageTable
from repro.memsim.process import (
    DEFAULT_CHUNK_SIZE,
    ProcessSnapshot,
    SimulatedProcess,
    VariableLayout,
    nominal_object_bytes,
    restore_namespace,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_CHUNK_SIZE",
    "Extent",
    "PageTable",
    "ProcessSnapshot",
    "SimulatedProcess",
    "VariableLayout",
    "nominal_object_bytes",
    "restore_namespace",
]
