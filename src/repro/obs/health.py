"""Fleet health engine: SLO evaluation, burn-rate alerting, backpressure.

PR 5 gave every session spans, metrics, and events; PR 7 put many
sessions behind one service. This module closes the loop (DESIGN.md
§16): it *aggregates* the per-session streams into sliding-window fleet
snapshots, *judges* them against a declarative SLO spec with
multi-window burn rates, and *acts* on sustained violations by driving
the commit queue's adaptive backpressure ladder.

Layers:

* :class:`FleetAggregator` — sliding windows of (time, value, session)
  samples per indicator; deterministic snapshots with nearest-rank
  percentiles. Time comes from an injectable clock, exactly like
  :mod:`repro.obs.trace` — tests and event replay use logical clocks so
  every output is byte-stable.
* :class:`SLOSpec` / :class:`SLO` — versioned declarative objectives
  (JSON always, TOML where ``tomllib`` exists), mirroring the PR 9 stub
  file format. Three indicator kinds: ``latency`` and ``gauge`` judge
  windowed samples against a threshold under an objective good-fraction;
  ``rate`` judges windowed event counts against an allowance.
* :class:`SLOEvaluator` — computes the error budget (``1 - objective``)
  and the burn rate (observed bad fraction / budget) over a *short* and
  a *long* window; an alert fires only when **both** burn, and resolves
  when the short window recovers. Fire/resolve transitions are emitted
  as ``slo_alert_fired`` / ``slo_alert_resolved`` events with
  deterministic, reasoned payloads.
* :class:`BackpressureController` — hysteresis over firing
  backpressure-flagged alerts, walking the commit queue through
  ``accept -> degrade_fsync -> block`` (and back down) via
  ``CommitQueue.set_pressure``.
* :class:`HealthEngine` — bundles the above behind a one-attribute
  disabled gate (same discipline as ``NO_OBSERVER``): a disabled
  engine's :meth:`~HealthEngine.tick` is a single attribute check.

Determinism rule: nothing here reads the wall clock unless the caller
installs one. Replay (:func:`replay_events`) drives the aggregator with
each event's ``seq`` as logical seconds, so the same event stream plus
the same SLO file always produces a byte-identical alert sequence —
pinned by ``tests/golden/health_alerts.jsonl``.
"""

from __future__ import annotations

import hashlib
import json
import time as _time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.events import EventType
from repro.obs.recorder import NO_OBSERVER, Observer
from repro.telemetry import HealthStats

#: Version of the SLO file format (mirrors ``stub_format`` from PR 9).
SLO_FORMAT_VERSION = 1

_KINDS = ("latency", "gauge", "rate")
_SEVERITIES = ("page", "ticket")


class SLOError(ValueError):
    """A malformed SLO spec (bad file, bad field, unsupported version)."""


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; deterministic, no interpolation."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil(q/100 * n)
    return ordered[min(rank, len(ordered)) - 1]


# ---------------------------------------------------------------------------
# Declarative SLO spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLO:
    """One service-level objective over one indicator.

    ``latency`` / ``gauge`` kinds judge windowed *samples*: a sample is
    bad when ``value > threshold``; the error budget is
    ``1 - objective`` and the burn rate is the bad fraction divided by
    the budget. ``rate`` kinds judge windowed event *counts* against
    ``max_per_window`` (scaled from the long window down to the short);
    a zero allowance means the burn equals the raw count, so a single
    event fires.
    """

    name: str
    indicator: str
    kind: str
    threshold: Optional[float] = None
    objective: float = 0.99
    max_per_window: Optional[float] = None
    short_window: float = 60.0
    long_window: float = 300.0
    burn_threshold: float = 1.0
    min_samples: int = 1
    severity: str = "page"
    backpressure: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SLOError(f"slo {self.name!r}: kind must be one of {_KINDS}")
        if self.severity not in _SEVERITIES:
            raise SLOError(
                f"slo {self.name!r}: severity must be one of {_SEVERITIES}"
            )
        if self.kind in ("latency", "gauge"):
            if self.threshold is None:
                raise SLOError(f"slo {self.name!r}: {self.kind} needs a threshold")
            if not (0.0 < self.objective < 1.0):
                raise SLOError(
                    f"slo {self.name!r}: objective must be in (0, 1)"
                )
        else:
            if self.max_per_window is None or self.max_per_window < 0:
                raise SLOError(
                    f"slo {self.name!r}: rate needs max_per_window >= 0"
                )
        if not (0 < self.short_window < self.long_window):
            raise SLOError(
                f"slo {self.name!r}: need 0 < short_window < long_window"
            )
        if self.burn_threshold <= 0:
            raise SLOError(f"slo {self.name!r}: burn_threshold must be > 0")

    @property
    def budget(self) -> float:
        """Error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "indicator": self.indicator,
            "kind": self.kind,
            "objective": self.objective,
            "short_window": self.short_window,
            "long_window": self.long_window,
            "burn_threshold": self.burn_threshold,
            "min_samples": self.min_samples,
            "severity": self.severity,
            "backpressure": self.backpressure,
        }
        if self.threshold is not None:
            record["threshold"] = self.threshold
        if self.max_per_window is not None:
            record["max_per_window"] = self.max_per_window
        if self.description:
            record["description"] = self.description
        return record


@dataclass(frozen=True)
class SLOSpec:
    """A versioned set of SLOs loaded from one document."""

    name: str
    slos: Tuple[SLO, ...]
    slo_format: int = SLO_FORMAT_VERSION
    source: Optional[str] = None

    @classmethod
    def from_mapping(
        cls, data: Any, source: Optional[str] = None
    ) -> "SLOSpec":
        if not isinstance(data, dict):
            raise SLOError(f"SLO spec must be an object, got {type(data).__name__}")
        fmt = data.get("slo_format", SLO_FORMAT_VERSION)
        if not isinstance(fmt, int) or fmt > SLO_FORMAT_VERSION:
            raise SLOError(
                f"SLO file format {fmt!r} is newer than supported "
                f"version {SLO_FORMAT_VERSION}"
            )
        raw = data.get("slos")
        if not isinstance(raw, list) or not raw:
            raise SLOError("'slos' must be a non-empty list")
        slos: List[SLO] = []
        seen: set = set()
        known = {f.name for f in SLO.__dataclass_fields__.values()}
        for entry in raw:
            if not isinstance(entry, dict):
                raise SLOError(f"slo entry must be an object, got {entry!r}")
            unknown = sorted(set(entry) - known)
            if unknown:
                raise SLOError(
                    f"slo {entry.get('name', '?')!r}: unknown fields {unknown}"
                )
            try:
                slo = SLO(**entry)
            except TypeError as exc:
                raise SLOError(f"slo entry {entry!r}: {exc}") from exc
            if slo.name in seen:
                raise SLOError(f"duplicate slo name {slo.name!r}")
            seen.add(slo.name)
            slos.append(slo)
        name = data.get("name", "unnamed")
        if not isinstance(name, str):
            raise SLOError("'name' must be a string")
        return cls(name=name, slos=tuple(slos), slo_format=fmt, source=source)

    @classmethod
    def from_file(cls, path: Any) -> "SLOSpec":
        """Load ``.json`` (or, where ``tomllib`` exists, ``.toml``)."""
        path = Path(path)
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # Python < 3.11
                raise SLOError(
                    f"{path}: TOML SLO specs need Python 3.11+ (tomllib); "
                    "use the JSON form instead"
                ) from exc
            with open(path, "rb") as handle:
                data: Any = tomllib.load(handle)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                try:
                    data = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise SLOError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_mapping(data, source=str(path))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "slo_format": self.slo_format,
            "slos": [slo.as_dict() for slo in self.slos],
        }

    def fingerprint(self) -> str:
        """Stable content hash, for report provenance."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_spec() -> SLOSpec:
    """The shipped fleet SLO spec (``repro/obs/slodata/fleet.json``)."""
    return SLOSpec.from_file(Path(__file__).parent / "slodata" / "fleet.json")


# ---------------------------------------------------------------------------
# Sliding-window aggregation
# ---------------------------------------------------------------------------


class FleetAggregator:
    """Folds per-session observation streams into sliding windows.

    Each sample is ``(time, value, session)`` on one named indicator
    series; reads filter by window (and optionally by session), so one
    structure serves both fleet-wide and per-session views. The clock is
    injectable (defaults to ``time.monotonic``); replay installs a
    logical clock for byte-stable output.
    """

    def __init__(
        self,
        *,
        clock: Optional[Callable[[], float]] = None,
        retention: float = 600.0,
    ) -> None:
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.clock = clock if clock is not None else _time.monotonic
        self.retention = retention
        self._series: Dict[str, Deque[Tuple[float, float, Optional[str]]]] = {}
        self._sessions: set = set()

    # -- ingestion ---------------------------------------------------------

    def observe(
        self,
        name: str,
        value: float,
        session: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        """Record one sample on an indicator series."""
        at = self.clock() if now is None else now
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = deque()
        series.append((at, float(value), session))
        if session is not None:
            self._sessions.add(session)
        horizon = at - self.retention
        while series and series[0][0] <= horizon:
            series.popleft()

    #: Gauges are point-in-time samples; windowing treats them the same.
    gauge = observe

    def count(
        self,
        name: str,
        amount: float = 1,
        session: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        """Record an event occurrence (rate indicators sum amounts)."""
        self.observe(name, amount, session=session, now=now)

    def ingest_event(
        self,
        type: str,
        fields: Dict[str, Any],
        now: Optional[float] = None,
    ) -> None:
        """Fold one structured event into the windows.

        Every event contributes to its ``events.<type>`` rate series;
        depth-carrying and byte-carrying events additionally feed their
        gauge series, so replaying an event log reconstructs queue-depth
        and byte-growth indicators without the live registry.
        """
        session = fields.get("session")
        if session is not None:
            session = str(session)
        self.count(f"events.{type}", 1, session=session, now=now)
        if type == EventType.COMMIT_ENQUEUED and "depth" in fields:
            self.observe(
                "service.queue_depth",
                float(fields["depth"]),
                session=session,
                now=now,
            )
        elif type == EventType.COMMIT and "bytes" in fields:
            self.observe(
                "store.bytes_written",
                float(fields["bytes"]),
                session=session,
                now=now,
            )

    # -- reads -------------------------------------------------------------

    def window_values(
        self,
        name: str,
        window: float,
        now: Optional[float] = None,
        session: Optional[str] = None,
    ) -> List[float]:
        """Samples on ``name`` newer than ``now - window`` (oldest first)."""
        at = self.clock() if now is None else now
        series = self._series.get(name)
        if not series:
            return []
        horizon = at - window
        return [
            value
            for stamp, value, sess in series
            if stamp > horizon and (session is None or sess == session)
        ]

    def indicators(self) -> List[str]:
        return sorted(self._series)

    def sessions(self) -> List[str]:
        return sorted(self._sessions)

    def snapshot(
        self, window: Optional[float] = None, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """Deterministic fleet + per-session window statistics."""
        at = self.clock() if now is None else now
        span = window if window is not None else self.retention

        def stats_for(values: List[float]) -> Dict[str, float]:
            return {
                "count": len(values),
                "sum": round(sum(values), 6),
                "p50": round(_percentile(values, 50), 6),
                "p95": round(_percentile(values, 95), 6),
                "p99": round(_percentile(values, 99), 6),
                "max": round(max(values), 6) if values else 0.0,
            }

        fleet: Dict[str, Any] = {}
        per_session: Dict[str, Dict[str, Any]] = {}
        for name in self.indicators():
            fleet[name] = stats_for(self.window_values(name, span, now=at))
        for sess in self.sessions():
            rows: Dict[str, Any] = {}
            for name in self.indicators():
                values = self.window_values(name, span, now=at, session=sess)
                if values:
                    rows[name] = stats_for(values)
            if rows:
                per_session[sess] = rows
        return {"window": span, "fleet": fleet, "sessions": per_session}


# ---------------------------------------------------------------------------
# SLO evaluation with multi-window burn rates
# ---------------------------------------------------------------------------


@dataclass
class _AlertState:
    status: str = "ok"  # "ok" | "firing"
    fired: int = 0
    resolved: int = 0
    last_burn_short: float = 0.0
    last_burn_long: float = 0.0


def _burn_over(
    slo: SLO, values: List[float], window: float
) -> Tuple[float, str]:
    """(burn rate, reason fragment) for one window's worth of samples."""
    if slo.kind == "rate":
        count = sum(values)
        allowed = (slo.max_per_window or 0.0) * (window / slo.long_window)
        if allowed <= 0:
            # Zero-tolerance objective: burn equals the raw count so a
            # single event fires (and the value stays JSON-finite).
            burn = float(count)
        else:
            burn = count / allowed
        reason = f"{count:g} events in {window:g}s (allowed {allowed:g})"
        return burn, reason
    total = len(values)
    if total < slo.min_samples:
        return 0.0, f"{total} samples in {window:g}s (< {slo.min_samples} needed)"
    bad = sum(1 for value in values if value > slo.threshold)
    burn = (bad / total) / slo.budget
    reason = (
        f"{bad}/{total} samples over {slo.threshold:g} in {window:g}s "
        f"(budget {slo.budget:g})"
    )
    return burn, reason


class SLOEvaluator:
    """Multi-window burn-rate evaluator with fire/resolve state.

    An alert fires when the burn rate crosses ``burn_threshold`` in
    **both** the short and the long window (the SRE multi-window rule:
    the long window proves the violation is sustained, the short window
    proves it is still happening) and resolves as soon as the short
    window recovers. Transitions are appended to :attr:`alerts` and
    emitted as events through the observer.
    """

    def __init__(
        self,
        spec: SLOSpec,
        aggregator: FleetAggregator,
        *,
        observer: Optional[Observer] = None,
        stats: Optional[HealthStats] = None,
    ) -> None:
        self.spec = spec
        self.aggregator = aggregator
        self.observer = observer if observer is not None else NO_OBSERVER
        self.stats = stats
        self._states: Dict[str, _AlertState] = {
            slo.name: _AlertState() for slo in spec.slos
        }
        #: Fire/resolve transition records, oldest first.
        self.alerts: List[Dict[str, Any]] = []

    def state(self, name: str) -> _AlertState:
        return self._states[name]

    def firing(self) -> List[str]:
        return sorted(
            name
            for name, state in self._states.items()
            if state.status == "firing"
        )

    def firing_backpressure(self) -> bool:
        """Is any backpressure-flagged SLO currently firing?"""
        firing = set(self.firing())
        return any(
            slo.backpressure for slo in self.spec.slos if slo.name in firing
        )

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One evaluation pass; returns this pass's transitions."""
        at = self.aggregator.clock() if now is None else now
        transitions: List[Dict[str, Any]] = []
        if self.stats is not None:
            self.stats.evaluations += 1
        for slo in self.spec.slos:
            short = self.aggregator.window_values(
                slo.indicator, slo.short_window, now=at
            )
            long_ = self.aggregator.window_values(
                slo.indicator, slo.long_window, now=at
            )
            burn_short, reason_short = _burn_over(slo, short, slo.short_window)
            burn_long, reason_long = _burn_over(slo, long_, slo.long_window)
            state = self._states[slo.name]
            state.last_burn_short = burn_short
            state.last_burn_long = burn_long
            if (
                state.status == "ok"
                and burn_short >= slo.burn_threshold
                and burn_long >= slo.burn_threshold
            ):
                state.status = "firing"
                state.fired += 1
                reason = (
                    f"{slo.indicator}: short {reason_short}; long {reason_long}"
                )
                record = {
                    "type": EventType.SLO_ALERT_FIRED,
                    "slo": slo.name,
                    "indicator": slo.indicator,
                    "severity": slo.severity,
                    "burn_short": round(burn_short, 4),
                    "burn_long": round(burn_long, 4),
                    "reason": reason,
                }
                transitions.append(record)
            elif state.status == "firing" and burn_short < slo.burn_threshold:
                state.status = "ok"
                state.resolved += 1
                record = {
                    "type": EventType.SLO_ALERT_RESOLVED,
                    "slo": slo.name,
                    "indicator": slo.indicator,
                    "severity": slo.severity,
                    "burn_short": round(burn_short, 4),
                    "reason": f"{slo.indicator}: short {reason_short}",
                }
                transitions.append(record)
        for record in transitions:
            self.alerts.append(record)
            fields = {key: value for key, value in record.items() if key != "type"}
            self.observer.event(record["type"], **fields)
            if self.stats is not None:
                if record["type"] == EventType.SLO_ALERT_FIRED:
                    self.stats.alerts_fired += 1
                else:
                    self.stats.alerts_resolved += 1
        return transitions


# ---------------------------------------------------------------------------
# Adaptive backpressure
# ---------------------------------------------------------------------------


class BackpressureController:
    """Hysteresis between firing SLO alerts and the queue pressure ladder.

    ``escalate_after`` consecutive evaluations with a firing
    backpressure-flagged alert move the queue one level up the
    ``accept -> degrade_fsync -> block`` ladder; ``relax_after``
    consecutive clean evaluations move it one level back down. The
    hysteresis keeps a flapping burn rate from thrashing fsync policy.
    """

    def __init__(
        self,
        queue: Any,
        *,
        escalate_after: int = 2,
        relax_after: int = 3,
        ceiling: Optional[int] = None,
    ) -> None:
        if escalate_after < 1 or relax_after < 1:
            raise ValueError("escalate_after and relax_after must be >= 1")
        self.queue = queue
        self.escalate_after = escalate_after
        self.relax_after = relax_after
        self.ceiling = ceiling
        self._levels = tuple(queue.PRESSURE_LEVELS)
        self._level = 0
        self._hot = 0
        self._cool = 0

    @property
    def level(self) -> str:
        return self._levels[self._level]

    def update(self, firing: bool, *, reason: str = "") -> Optional[str]:
        """Feed one evaluation result; returns the new level on change."""
        if firing:
            self._hot += 1
            self._cool = 0
            if (
                self._hot >= self.escalate_after
                and self._level < len(self._levels) - 1
            ):
                self._level += 1
                self._hot = 0
                level = self._levels[self._level]
                self.queue.set_pressure(
                    level, ceiling=self.ceiling, reason=reason or "slo_firing"
                )
                return level
        else:
            self._cool += 1
            self._hot = 0
            if self._cool >= self.relax_after and self._level > 0:
                self._level -= 1
                self._cool = 0
                level = self._levels[self._level]
                self.queue.set_pressure(
                    level, ceiling=self.ceiling, reason=reason or "slo_recovered"
                )
                return level
        return None


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class HealthEngine:
    """Aggregator + evaluator + backpressure behind one disabled gate.

    A disabled engine costs one attribute check per verb — the same
    budget discipline as ``NO_OBSERVER`` (benchmarks/test_pr10_health.py
    measures it against the 3% commit budget).
    """

    def __init__(
        self,
        spec: Optional[SLOSpec] = None,
        *,
        observer: Optional[Observer] = None,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        escalate_after: int = 2,
        relax_after: int = 3,
        retention: Optional[float] = None,
    ) -> None:
        self.enabled = enabled
        if not enabled:
            return
        self.spec = spec if spec is not None else default_spec()
        self.observer = observer if observer is not None else NO_OBSERVER
        span = retention
        if span is None:
            span = max((slo.long_window for slo in self.spec.slos), default=600.0)
            span = max(span * 2, 600.0)
        self.aggregator = FleetAggregator(clock=clock, retention=span)
        # Publish health.* counters into the observer's registry — but
        # never into a disabled observer's (NO_OBSERVER is shared
        # global state whose registry must stay empty): fall back to a
        # private registry instead.
        metrics = (
            self.observer.metrics
            if getattr(self.observer, "enabled", False)
            else None
        )
        self.stats = HealthStats(metrics)
        self.evaluator = SLOEvaluator(
            self.spec, self.aggregator, observer=self.observer, stats=self.stats
        )
        self._escalate_after = escalate_after
        self._relax_after = relax_after
        self.controller: Optional[BackpressureController] = None
        self._queue: Any = None

    @classmethod
    def disabled(cls) -> "HealthEngine":
        return cls(enabled=False)

    # -- wiring ------------------------------------------------------------

    def attach_queue(self, queue: Any, *, ceiling: Optional[int] = None) -> None:
        """Bind a :class:`~repro.service.queue.CommitQueue` for sensing
        (depth sampled each tick) and actuation (pressure ladder).

        With no explicit ``ceiling``, the ``block`` cap comes from the
        spec's backpressure-flagged queue-depth gauge SLO — the sensor
        and the actuator agree on one number by construction.
        """
        if not self.enabled:
            return
        if ceiling is None:
            for slo in self.spec.slos:
                if (
                    slo.backpressure
                    and slo.kind == "gauge"
                    and slo.indicator == "service.queue_depth"
                    and slo.threshold is not None
                ):
                    ceiling = max(1, int(slo.threshold))
                    break
        self._queue = queue
        self.controller = BackpressureController(
            queue,
            escalate_after=self._escalate_after,
            relax_after=self._relax_after,
            ceiling=ceiling,
        )

    # -- ingestion verbs (all gated on `enabled`) --------------------------

    def record_commit(
        self, seconds: float, session: Optional[str] = None
    ) -> None:
        if not self.enabled:
            return
        self.aggregator.observe("commit.latency_seconds", seconds, session=session)

    def record_checkout(
        self, seconds: float, session: Optional[str] = None
    ) -> None:
        if not self.enabled:
            return
        self.aggregator.observe(
            "checkout.latency_seconds", seconds, session=session
        )

    def ingest_event(self, type: str, fields: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        self.aggregator.ingest_event(type, fields)

    # -- the control loop --------------------------------------------------

    def tick(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Sample, evaluate, actuate. Returns this pass's transitions."""
        if not self.enabled:
            return []
        if self._queue is not None:
            self.aggregator.gauge(
                "service.queue_depth", float(self._queue.depth()), now=now
            )
        transitions = self.evaluator.evaluate(now=now)
        if self.controller is not None:
            firing = self.evaluator.firing_backpressure()
            reason = ",".join(
                name
                for name in self.evaluator.firing()
                if any(
                    slo.name == name and slo.backpressure
                    for slo in self.spec.slos
                )
            )
            changed = self.controller.update(firing, reason=reason)
            if changed is not None:
                self.stats.backpressure_transitions += 1
        return transitions

    def report(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Deterministic engine state: snapshot + alert history."""
        if not self.enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "spec": {
                "name": self.spec.name,
                "fingerprint": self.spec.fingerprint(),
                "source": self.spec.source,
            },
            "snapshot": self.aggregator.snapshot(now=now),
            "firing": self.evaluator.firing(),
            "alerts": list(self.evaluator.alerts),
            "pressure": self.controller.level if self.controller else None,
        }


# ---------------------------------------------------------------------------
# One-shot and replay evaluation (soak reports, CLI, golden tests)
# ---------------------------------------------------------------------------


def evaluate_static(
    spec: SLOSpec, indicators: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Judge whole-run indicator summaries against a spec, windowless.

    ``indicators`` maps indicator name to either ``{"samples": [...]}``
    (latency/gauge kinds) or ``{"count": n}`` (rate kinds; the whole run
    is treated as one long window). Used by the soak driver and
    ``repro health`` where there is no live sliding clock.
    """
    results: List[Dict[str, Any]] = []
    firing: List[str] = []
    for slo in spec.slos:
        data = indicators.get(slo.indicator)
        if slo.kind == "rate":
            count = float(data.get("count", 0)) if data else 0.0
            allowed = slo.max_per_window or 0.0
            burn = float(count) if allowed <= 0 else count / allowed
            reason = f"{count:g} events over the run (allowed {allowed:g})"
            status = "firing" if burn >= slo.burn_threshold else "ok"
        else:
            samples = list(data.get("samples", ())) if data else []
            if len(samples) < slo.min_samples:
                results.append(
                    {
                        "slo": slo.name,
                        "indicator": slo.indicator,
                        "severity": slo.severity,
                        "status": "no_data",
                        "burn": 0.0,
                        "reason": (
                            f"{len(samples)} samples "
                            f"(< {slo.min_samples} needed)"
                        ),
                    }
                )
                continue
            bad = sum(1 for value in samples if value > slo.threshold)
            burn = (bad / len(samples)) / slo.budget
            reason = (
                f"{bad}/{len(samples)} samples over {slo.threshold:g} "
                f"(budget {slo.budget:g})"
            )
            status = "firing" if burn >= slo.burn_threshold else "ok"
        if status == "firing":
            firing.append(slo.name)
        results.append(
            {
                "slo": slo.name,
                "indicator": slo.indicator,
                "severity": slo.severity,
                "status": status,
                "burn": round(burn, 4),
                "reason": reason,
            }
        )
    return {
        "spec": spec.name,
        "fingerprint": spec.fingerprint(),
        "results": results,
        "firing": sorted(firing),
    }


def replay_events(
    spec: SLOSpec,
    records: Iterable[Dict[str, Any]],
    *,
    evaluate_every: float = 1.0,
) -> Dict[str, Any]:
    """Replay an exported event log through the evaluator, logically.

    Each record's ``seq`` becomes logical seconds, so the alert sequence
    is a pure function of (event stream, spec): the determinism pinned
    by ``tests/golden/health_alerts.jsonl``. The evaluator runs at every
    ``evaluate_every`` logical seconds and once past the final event.
    """
    clock_now = [0.0]
    aggregator = FleetAggregator(
        clock=lambda: clock_now[0],
        retention=max(
            (slo.long_window for slo in spec.slos), default=600.0
        ) * 2,
    )
    evaluator = SLOEvaluator(spec, aggregator)
    alerts: List[Dict[str, Any]] = []
    last_eval = -1.0
    count = 0
    for record in records:
        seq = record.get("seq")
        if seq is None:
            continue
        at = float(seq)
        clock_now[0] = at
        fields = {
            key: value
            for key, value in record.items()
            if key not in ("seq", "type")
        }
        aggregator.ingest_event(str(record.get("type")), fields, now=at)
        count += 1
        if at - last_eval >= evaluate_every:
            for transition in evaluator.evaluate(now=at):
                alerts.append(dict(transition, at=at))
            last_eval = at
    # A final pass one short-window past the last event lets alerts whose
    # short window has drained resolve deterministically.
    if count:
        tail = clock_now[0] + max(slo.short_window for slo in spec.slos) + 1.0
        clock_now[0] = tail
        for transition in evaluator.evaluate(now=tail):
            alerts.append(dict(transition, at=tail))
    return {
        "spec": spec.name,
        "fingerprint": spec.fingerprint(),
        "events": count,
        "alerts": alerts,
        "firing": evaluator.firing(),
        "snapshot": aggregator.snapshot(now=clock_now[0]),
    }


__all__ = [
    "SLO",
    "SLOError",
    "SLOSpec",
    "SLO_FORMAT_VERSION",
    "FleetAggregator",
    "SLOEvaluator",
    "BackpressureController",
    "HealthEngine",
    "default_spec",
    "evaluate_static",
    "replay_events",
]
