"""Deterministic storage accounting for ``repro stats`` (DESIGN.md §11).

Rebuilds a :class:`~repro.obs.metrics.MetricsRegistry` from a checkpoint
store's durable contents — nodes, payload sizes, tombstones, version
reuse — so the rendered output depends only on what the workload wrote,
never on when it ran. This is the registry behind the golden-tested
``repro stats`` output: byte-stable for a deterministic workload.

Metric semantics (all under ``store.*``):

* ``store.nodes`` — committed checkpoint nodes;
* ``store.payloads_stored`` / ``store.tombstones`` — payload rows with /
  without data;
* ``store.bytes_total`` — sum of stored payload sizes;
* ``store.payload_bytes`` — per-payload size histogram (fixed
  :data:`~repro.obs.metrics.BYTE_BUCKETS` bounds);
* ``store.dedup_hits`` — versioned co-variables carried forward by
  reference across commits: at each node, state entries whose version
  points at an *earlier* node. A monolithic checkpointer re-writes all
  of these every commit;
* ``store.incremental_bytes`` vs ``store.monolithic_bytes`` — bytes this
  (incremental) scheme stored vs what re-writing every co-variable's
  current version at every commit would have stored. Their ratio is the
  paper's checkpoint-size saving (Fig 15).

Kept out of :mod:`repro.obs` re-exports on purpose: this module imports
``repro.core`` (graph reconstruction), and core modules import
``repro.obs`` — importing it lazily from the CLI keeps the layering
acyclic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.metrics import BYTE_BUCKETS, MetricsRegistry


def _session_graphs(store: Any) -> List[Tuple[str, Any]]:
    """(session_id, CheckpointGraph) per session, sorted by session id.

    Schema-v2 stores enumerate their sessions; a store (or bare handle)
    without the registry surface degrades to its own single graph, which
    preserves the historical single-session behaviour byte for byte.
    """
    from repro.core.graph import CheckpointGraph

    own = getattr(store, "session_id", None)
    ids: List[str] = []
    lister = getattr(store, "list_sessions", None)
    scoper = getattr(store, "for_session", None)
    if lister is not None and scoper is not None:
        try:
            ids = sorted({record.session_id for record in lister()})
        except Exception:
            ids = []
    if own is not None and own not in ids:
        ids = sorted([*ids, own])
    if not ids or scoper is None:
        return [(own or "default", CheckpointGraph.from_store(store))]
    return [(sid, CheckpointGraph.from_store(store.for_session(sid))) for sid in ids]


def registry_from_store(store: Any) -> MetricsRegistry:
    """Compute the deterministic ``store.*`` registry of a store's contents.

    On a schema-v2 multi-session store the totals aggregate every
    session's graph (sessions visited in sorted id order, so rendering
    stays byte-stable); ``store.head_state_covariables`` becomes the sum
    of per-session head states. A single-session store renders exactly
    as before.
    """
    from repro.core.graph import ROOT_ID

    registry = MetricsRegistry()
    nodes = registry.counter("store.nodes")
    stored = registry.counter("store.payloads_stored")
    tombstones = registry.counter("store.tombstones")
    bytes_total = registry.counter("store.bytes_total")
    dedup = registry.counter("store.dedup_hits")
    incremental = registry.counter("store.incremental_bytes")
    monolithic = registry.counter("store.monolithic_bytes")
    sizes = registry.histogram("store.payload_bytes", BYTE_BUCKETS)

    head_covariables = 0
    for _sid, graph in _session_graphs(store):
        for node in sorted(graph.all_nodes(), key=lambda n: n.timestamp):
            if node.node_id == ROOT_ID:
                continue
            nodes.inc()
            for info in node.updated.values():
                if info.stored:
                    stored.inc()
                    bytes_total.inc(info.size_bytes)
                    incremental.inc(info.size_bytes)
                    sizes.record(info.size_bytes)
                else:
                    tombstones.inc()
            for key, version in node.state.items():
                if version != node.node_id:
                    dedup.inc()
                info = graph.get(version).updated.get(key)
                if info is not None:
                    monolithic.inc(info.size_bytes)
        head_covariables += len(graph.get(graph.head_id).state)

    registry.gauge("store.head_state_covariables").set(head_covariables)
    return registry


def per_session_stats(store: Any) -> Dict[str, Dict[str, int]]:
    """Per-session storage breakdown for schema-v2 stores.

    Maps session id to commit/payload/byte totals; sessions with no
    committed nodes are omitted (a registered-but-empty session has
    nothing to account). Sorted by session id, deterministic.
    """
    from repro.core.graph import ROOT_ID

    result: Dict[str, Dict[str, int]] = {}
    for sid, graph in _session_graphs(store):
        commits = stored = tombstones = bytes_total = 0
        for node in graph.all_nodes():
            if node.node_id == ROOT_ID:
                continue
            commits += 1
            for info in node.updated.values():
                if info.stored:
                    stored += 1
                    bytes_total += info.size_bytes
                else:
                    tombstones += 1
        if commits:
            result[sid] = {
                "commits": commits,
                "payloads_stored": stored,
                "tombstones": tombstones,
                "bytes_total": bytes_total,
            }
    return dict(sorted(result.items()))


def size_ratio(registry: MetricsRegistry) -> float:
    """Incremental-vs-monolithic checkpoint size ratio (lower is better)."""
    monolithic = registry.counter("store.monolithic_bytes").value
    if not monolithic:
        return 1.0
    return registry.counter("store.incremental_bytes").value / monolithic


def render_store_stats(registry: MetricsRegistry) -> str:
    """Human-readable ``repro stats`` text; deterministic line order."""
    lines = registry.render_text().splitlines()
    ratio = size_ratio(registry)
    lines.append(f"store.size_ratio_incremental_vs_monolithic {ratio:.4f}")
    return "\n".join(lines)


def stats_as_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON form of ``repro stats`` output (sorted keys at render time)."""
    payload: Dict[str, Any] = dict(registry.as_dict())
    payload["store.size_ratio_incremental_vs_monolithic"] = round(
        size_ratio(registry), 4
    )
    return payload


__all__ = [
    "per_session_stats",
    "registry_from_store",
    "render_store_stats",
    "size_ratio",
    "stats_as_dict",
]
