"""Deterministic storage accounting for ``repro stats`` (DESIGN.md §11).

Rebuilds a :class:`~repro.obs.metrics.MetricsRegistry` from a checkpoint
store's durable contents — nodes, payload sizes, tombstones, version
reuse — so the rendered output depends only on what the workload wrote,
never on when it ran. This is the registry behind the golden-tested
``repro stats`` output: byte-stable for a deterministic workload.

Metric semantics (all under ``store.*``):

* ``store.nodes`` — committed checkpoint nodes;
* ``store.payloads_stored`` / ``store.tombstones`` — payload rows with /
  without data;
* ``store.bytes_total`` — sum of stored payload sizes;
* ``store.payload_bytes`` — per-payload size histogram (fixed
  :data:`~repro.obs.metrics.BYTE_BUCKETS` bounds);
* ``store.dedup_hits`` — versioned co-variables carried forward by
  reference across commits: at each node, state entries whose version
  points at an *earlier* node. A monolithic checkpointer re-writes all
  of these every commit;
* ``store.incremental_bytes`` vs ``store.monolithic_bytes`` — bytes this
  (incremental) scheme stored vs what re-writing every co-variable's
  current version at every commit would have stored. Their ratio is the
  paper's checkpoint-size saving (Fig 15).

Kept out of :mod:`repro.obs` re-exports on purpose: this module imports
``repro.core`` (graph reconstruction), and core modules import
``repro.obs`` — importing it lazily from the CLI keeps the layering
acyclic.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.metrics import BYTE_BUCKETS, MetricsRegistry


def registry_from_store(store: Any) -> MetricsRegistry:
    """Compute the deterministic ``store.*`` registry of a store's contents."""
    from repro.core.graph import CheckpointGraph, ROOT_ID

    graph = CheckpointGraph.from_store(store)
    registry = MetricsRegistry()
    nodes = registry.counter("store.nodes")
    stored = registry.counter("store.payloads_stored")
    tombstones = registry.counter("store.tombstones")
    bytes_total = registry.counter("store.bytes_total")
    dedup = registry.counter("store.dedup_hits")
    incremental = registry.counter("store.incremental_bytes")
    monolithic = registry.counter("store.monolithic_bytes")
    sizes = registry.histogram("store.payload_bytes", BYTE_BUCKETS)

    for node in sorted(graph.all_nodes(), key=lambda n: n.timestamp):
        if node.node_id == ROOT_ID:
            continue
        nodes.inc()
        for info in node.updated.values():
            if info.stored:
                stored.inc()
                bytes_total.inc(info.size_bytes)
                incremental.inc(info.size_bytes)
                sizes.record(info.size_bytes)
            else:
                tombstones.inc()
        for key, version in node.state.items():
            if version != node.node_id:
                dedup.inc()
            info = graph.get(version).updated.get(key)
            if info is not None:
                monolithic.inc(info.size_bytes)

    registry.gauge("store.head_state_covariables").set(
        len(graph.get(graph.head_id).state)
    )
    return registry


def size_ratio(registry: MetricsRegistry) -> float:
    """Incremental-vs-monolithic checkpoint size ratio (lower is better)."""
    monolithic = registry.counter("store.monolithic_bytes").value
    if not monolithic:
        return 1.0
    return registry.counter("store.incremental_bytes").value / monolithic


def render_store_stats(registry: MetricsRegistry) -> str:
    """Human-readable ``repro stats`` text; deterministic line order."""
    lines = registry.render_text().splitlines()
    ratio = size_ratio(registry)
    lines.append(f"store.size_ratio_incremental_vs_monolithic {ratio:.4f}")
    return "\n".join(lines)


def stats_as_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON form of ``repro stats`` output (sorted keys at render time)."""
    payload: Dict[str, Any] = dict(registry.as_dict())
    payload["store.size_ratio_incremental_vs_monolithic"] = round(
        size_ratio(registry), 4
    )
    return payload


__all__ = [
    "registry_from_store",
    "render_store_stats",
    "size_ratio",
    "stats_as_dict",
]
