"""Span-based lifecycle tracing (DESIGN.md §11).

A :class:`Span` is one timed region of a lifecycle — ``commit``,
``commit.detect``, ``checkout.materialize`` — with wall and CPU time,
structured attributes, and children. A :class:`Tracer` maintains the
active span stack (spans nest by lexical scoping of ``with`` blocks,
re-entrancy included: a commit performed *inside* a checkout's replay
simply nests) and keeps every finished root span.

Two export formats:

* :meth:`Tracer.to_chrome_trace` — Chrome trace-event JSON (the
  ``chrome://tracing`` / Perfetto ``traceEvents`` array of complete
  ``"X"`` events), for flame-graph inspection of a real run;
* :meth:`Tracer.format_tree` — a human-readable indented tree for the
  ``%trace`` REPL command.

Timing is wall-clock and therefore non-deterministic by nature; traces
are never golden-tested byte-for-byte — only their *structure* (span
names, nesting, attributes) is asserted. Deterministic numbers belong in
the metrics registry instead.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from contextlib import contextmanager


class Span:
    """One timed, attributed region; children nest inside it."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start_wall",
        "end_wall",
        "start_cpu",
        "end_cpu",
        "seq",
    )

    def __init__(self, name: str, seq: int) -> None:
        self.name = name
        self.seq = seq
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_cpu = 0.0
        self.end_cpu = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return max(self.end_wall - self.start_wall, 0.0)

    @property
    def cpu_seconds(self) -> float:
        return max(self.end_cpu - self.start_cpu, 0.0)

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def update(self, attrs: Dict[str, Any]) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class NullSpan:
    """The shared do-nothing span handed out by a disabled observer."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, Any] = {}
    duration = 0.0
    cpu_seconds = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, attrs: Dict[str, Any]) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Owns the span stack and the finished roots of one session."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        max_roots: int = 10_000,
    ) -> None:
        self.clock = clock
        self.cpu_clock = cpu_clock
        self.roots: List[Span] = []
        self.max_roots = max_roots
        self._stack: List[Span] = []
        self._seq = 0

    # -- recording -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    def start(self, name: str, **attrs: Any) -> Span:
        span = Span(name, self._seq)
        self._seq += 1
        if attrs:
            span.attrs.update(attrs)
        span.start_wall = self.clock()
        span.start_cpu = self.cpu_clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            if len(self.roots) >= self.max_roots:
                # Bounded retention: drop the oldest roots, never grow
                # without limit inside a long-lived session.
                del self.roots[: len(self.roots) // 2]
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.end_cpu = self.cpu_clock()
        span.end_wall = self.clock()
        # Pop up to and including `span`, tolerating callers that finish
        # out of order (a leaked child is closed with its parent).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end_cpu = span.end_cpu
            top.end_wall = span.end_wall

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        self.roots = []
        self._stack = []
        self._seq = 0

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Chrome trace-event ``traceEvents`` list (complete events).

        Timestamps are microseconds relative to the first recorded span,
        so the trace starts at t=0 regardless of process uptime.
        """
        if not self.roots:
            return []
        origin = self.roots[0].start_wall
        events: List[Dict[str, Any]] = []
        for span in self.all_spans():
            args = {key: _json_safe(value) for key, value in sorted(span.attrs.items())}
            args["cpu_us"] = int(span.cpu_seconds * 1e6)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": int((span.start_wall - origin) * 1e6),
                    "dur": int(span.duration * 1e6),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return events

    def write_chrome_trace(self, path: str) -> None:
        payload = {"traceEvents": self.to_chrome_trace(), "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def format_tree(self, *, last: Optional[int] = None) -> str:
        """Human-readable span tree; ``last`` limits to the newest roots."""
        roots = self.roots if last is None else self.roots[-last:]
        if not roots:
            return "(no spans recorded)"
        lines: List[str] = []
        for root in roots:
            self._format_span(root, 0, lines)
        return "\n".join(lines)

    def _format_span(self, span: Span, depth: int, lines: List[str]) -> None:
        attrs = ""
        if span.attrs:
            rendered = ", ".join(
                f"{key}={_short(value)}" for key, value in sorted(span.attrs.items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{span.name}  "
            f"{span.duration * 1e3:.2f}ms (cpu {span.cpu_seconds * 1e3:.2f}ms)"
            f"{attrs}"
        )
        for child in span.children:
            self._format_span(child, depth + 1, lines)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return sorted(str(item) for item in value)
    return str(value)


def _short(value: Any) -> str:
    text = str(_json_safe(value))
    return text if len(text) <= 48 else text[:45] + "..."


__all__ = ["NULL_SPAN", "NullSpan", "Span", "Tracer"]
