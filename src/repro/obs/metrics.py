"""Central metrics registry: counters, gauges, deterministic histograms.

The registry is the single numeric ground truth of the observability
layer (DESIGN.md §11). Every instrument lives under a dotted name
(``commit.payload_bytes``, ``replay.plans_declined``), is created on
first use, and renders into one canonically ordered dictionary —
``as_dict()`` followed by ``json.dumps(..., sort_keys=True)`` is
byte-stable across runs by construction:

* **Counters** and **gauges** hold integers (or floats the caller set
  explicitly).
* **Histograms** have *fixed* bucket bounds chosen at creation; only
  integer per-bucket counts, the observation count, and the running sum
  are kept. Given deterministic inputs (byte sizes, cell counts), the
  rendered output is identical byte for byte on every run.

Determinism rule: wall-clock or CPU-time measurements never enter a
*golden-tested* registry — they belong to spans (:mod:`repro.obs.trace`),
which are excluded from golden output. Registries only ever hold
quantities that are a pure function of the workload; service registries
(never golden-tested) may additionally record measured latencies on the
fixed :data:`LATENCY_BUCKETS` bounds so fleet aggregation sees stable
bucket shapes.

Thread safety: one :class:`MetricsRegistry` serializes **all** instrument
creation *and* mutation under a single re-entrant lock (``_lock``). Every
instrument created through a registry shares that one lock, so concurrent
service sessions hammering the same registry (the PR 7 write-ahead writer
publishes from its own thread) never lose increments and never observe a
half-rendered snapshot. Instruments constructed standalone get a private
lock. The disabled-observer fast path never reaches the registry, so the
lock costs nothing when observation is off.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default bucket upper bounds for byte-sized observations: powers of 4
#: from 64 B to 4 MiB. An observation lands in the first bucket whose
#: bound is >= the value; larger values land in the overflow bucket.
BYTE_BUCKETS: Tuple[int, ...] = (
    64,
    256,
    1024,
    4096,
    16384,
    65536,
    262144,
    1048576,
    4194304,
)

#: Default bucket bounds for small cardinalities (cells, co-variables).
COUNT_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: Default bucket upper bounds for latency observations, in **seconds**:
#: 1 ms to 30 s on a 1-2.5-5 ladder. Shared by every latency histogram
#: (commit/checkout latency, the write-ahead writer's store latency) so
#: fleet aggregation and SLO evaluation see one bucket vocabulary.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing integer (callers may also set it)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def as_value(self) -> Number:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def as_value(self) -> Number:
        return self.value


class Histogram:
    """Fixed-bound histogram; deterministic given deterministic inputs.

    ``bounds`` are inclusive upper bounds, strictly increasing. Bucket
    ``i`` counts observations ``v <= bounds[i]`` (and greater than the
    previous bound); anything above the last bound lands in the overflow
    bucket rendered as ``"+Inf"``.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        bounds: Sequence[Number] = BYTE_BUCKETS,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        bounds = tuple(bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram bounds must be non-empty and increasing")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum: Number = 0
        self._lock = lock if lock is not None else threading.RLock()

    def record(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.overflow += 1

    def record_many(self, values: Iterable[Number]) -> None:
        for value in values:
            self.record(value)

    def as_value(self) -> Dict[str, Number]:
        with self._lock:
            buckets: Dict[str, Number] = {
                f"le_{bound}": count for bound, count in zip(self.bounds, self.counts)
            }
            buckets["le_+Inf"] = self.overflow
            return {"buckets": buckets, "count": self.count, "sum": self.sum}


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Create-on-first-use instrument registry with canonical rendering.

    All instruments created through a registry share the registry's single
    re-entrant lock, making creation, mutation, and snapshot rendering safe
    under concurrent writer threads (see the module docstring).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, Instrument] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[Number]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(
                    name,
                    bounds if bounds is not None else BYTE_BUCKETS,
                    lock=self._lock,
                )
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def _get(self, name: str, kind: type) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, lock=self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # -- rendering -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Name-sorted snapshot; json.dumps(sort_keys=True) of this is
        byte-stable across runs for deterministic workloads."""
        with self._lock:
            return {
                name: self._instruments[name].as_value()
                for name in sorted(self._instruments)
            }

    def render_text(self) -> str:
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                if isinstance(instrument, Histogram):
                    lines.append(
                        f"{name}  count={instrument.count} sum={instrument.sum}"
                    )
                    for bound, count in zip(instrument.bounds, instrument.counts):
                        if count:
                            lines.append(f"  le {bound}: {count}")
                    if instrument.overflow:
                        lines.append(f"  le +Inf: {instrument.overflow}")
                else:
                    lines.append(f"{name}  {instrument.value}")
            return "\n".join(lines)


__all__ = [
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
