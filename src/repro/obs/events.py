"""Structured event log: typed, reason-carrying lifecycle events.

Counters say *how often*; the event log says *why*. Every decision the
system used to make silently — declining a replay plan, escalating a
cell to check-all detection, injecting a fault, retrying a store write,
degrading a payload to a tombstone, sweeping a torn checkpoint — emits
one :class:`Event` with a type from the taxonomy below and a flat dict
of JSON-safe fields.

Determinism rules (DESIGN.md §11): events carry a monotonically
increasing ``seq`` assigned at emission, never a wall-clock timestamp,
so :meth:`EventLog.to_jsonl` is byte-stable for a deterministic
workload. Field values are coerced to JSON-safe primitives at emission
(sets become sorted lists) so rendering cannot fail later.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterator, List, Optional


class EventType:
    """The event taxonomy. Values are stable wire names."""

    #: A replay plan was declined; fields: reason, detail, covariable, node.
    REPLAY_PLAN_DECLINED = "replay_plan_declined"
    #: A replay plan executed; fields: covariable, node, cells_replayed, loads.
    REPLAY_PLAN_EXECUTED = "replay_plan_executed"
    #: The cross-validator escalated a cell; fields: reasons, missing,
    #: execution_count.
    CROSSVAL_ESCALATION = "crossval_escalation"
    #: A declared-pure library stub was refuted by a runtime delta;
    #: fields: names, execution_count.
    STUB_MISMATCH = "stub_mismatch"
    #: A fault rule fired; fields: kind, op, detail, note.
    FAULT_INJECTED = "fault_injected"
    #: A transient fault triggered a retry; fields: attempt, delay, error.
    RETRY = "retry"
    #: Retries were exhausted; fields: attempts, error.
    RETRY_EXHAUSTED = "retry_exhausted"
    #: A recovery scan swept torn state; fields: swept_nodes, orphan_payloads.
    RECOVERY = "recovery"
    #: A payload degraded to a tombstone; fields: covariable, node.
    TOMBSTONE_DEGRADED = "tombstone_degraded"
    #: A failed checkpoint's delta was folded forward; fields: node.
    DELTA_CARRYOVER = "delta_carryover"
    #: Fallback recomputation re-ran a cell that raised (as it did live)
    #: but still resolved the key; fields: node, covariable, error.
    REPLAY_ERROR_TOLERATED = "replay_error_tolerated"
    #: A checkpoint committed; fields: node, covariables, bytes, escalated.
    COMMIT = "commit"
    #: A checkout completed; fields: target, loads, recomputes, deletes.
    CHECKOUT = "checkout"
    #: A store closed with a checkpoint still open and rolled it back
    #: instead of abandoning it; fields: node, session.
    CHECKPOINT_ROLLED_BACK_ON_CLOSE = "checkpoint_rolled_back_on_close"
    #: A commit entered the write-ahead queue; fields: node, session, depth.
    COMMIT_ENQUEUED = "commit_enqueued"
    #: The background writer flushed a batch; fields: batch_size, sessions.
    QUEUE_BATCH_WRITTEN = "queue_batch_written"
    #: A queued commit permanently failed to persist; fields: node,
    #: session, error.
    QUEUE_WRITE_FAILED = "queue_write_failed"
    #: The background writer died (simulated crash or fatal error);
    #: fields: error, pending.
    QUEUE_WRITER_CRASHED = "queue_writer_crashed"
    #: A session joined the registry; fields: session, notebook_path.
    SESSION_REGISTERED = "session_registered"
    #: A session attached/resumed through the service; fields: session,
    #: checkpoints.
    SESSION_ATTACHED = "session_attached"
    #: A session detached from the service; fields: session.
    SESSION_DETACHED = "session_detached"
    #: A session migrated to a new notebook path; fields: session,
    #: notebook_path.
    SESSION_RENAMED = "session_renamed"
    #: An SLO alert started firing; fields: slo, indicator, severity,
    #: burn_short, burn_long, reason.
    SLO_ALERT_FIRED = "slo_alert_fired"
    #: A firing SLO alert recovered; fields: slo, indicator, severity,
    #: burn_short, reason.
    SLO_ALERT_RESOLVED = "slo_alert_resolved"
    #: The commit queue moved between backpressure levels; fields:
    #: level, previous, reason.
    BACKPRESSURE_CHANGED = "backpressure_changed"

    ALL = (
        REPLAY_PLAN_DECLINED,
        REPLAY_PLAN_EXECUTED,
        CROSSVAL_ESCALATION,
        STUB_MISMATCH,
        FAULT_INJECTED,
        RETRY,
        RETRY_EXHAUSTED,
        RECOVERY,
        TOMBSTONE_DEGRADED,
        DELTA_CARRYOVER,
        REPLAY_ERROR_TOLERATED,
        COMMIT,
        CHECKOUT,
        CHECKPOINT_ROLLED_BACK_ON_CLOSE,
        COMMIT_ENQUEUED,
        QUEUE_BATCH_WRITTEN,
        QUEUE_WRITE_FAILED,
        QUEUE_WRITER_CRASHED,
        SESSION_REGISTERED,
        SESSION_ATTACHED,
        SESSION_DETACHED,
        SESSION_RENAMED,
        SLO_ALERT_FIRED,
        SLO_ALERT_RESOLVED,
        BACKPRESSURE_CHANGED,
    )


class Event:
    """One structured log record."""

    __slots__ = ("seq", "type", "fields")

    def __init__(self, seq: int, type: str, fields: Dict[str, Any]) -> None:
        self.seq = seq
        self.type = type
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        record = {"seq": self.seq, "type": self.type}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:
        return f"Event({self.seq}, {self.type!r}, {self.fields!r})"


class EventLog:
    """Append-only in-memory event log with JSONL export.

    Thread safety: one lock covers seq assignment + append (``emit``) and
    every snapshot path (``of_type``/``counts``/``to_jsonl``/iteration), so
    concurrent service threads never skip or duplicate a ``seq`` and
    exports never observe a half-appended log. Iteration walks a copy
    taken under the lock; emitting while iterating is safe.
    """

    def __init__(self, *, max_events: int = 100_000) -> None:
        self.events: List[Event] = []
        self.max_events = max_events
        self._seq = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def emit(self, type: str, **fields: Any) -> Event:
        coerced = {key: _coerce(value) for key, value in fields.items()}
        with self._lock:
            event = Event(self._seq, type, coerced)
            self._seq += 1
            if len(self.events) >= self.max_events:
                # Bounded retention: drop from the front; `dropped` records
                # that the log is a suffix, never silently pretends otherwise.
                removed = len(self.events) // 2 or 1
                del self.events[:removed]
                self.dropped += removed
            self.events.append(event)
        return event

    def of_type(self, *types: str) -> List[Event]:
        wanted = set(types)
        with self._lock:
            return [event for event in self.events if event.type in wanted]

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        with self._lock:
            snapshot = list(self.events)
        for event in snapshot:
            totals[event.type] = totals.get(event.type, 0) + 1
        return dict(sorted(totals.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(list(self.events))

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical JSON object per line; byte-stable for a
        deterministic workload (sorted keys, no wall-clock fields)."""
        with self._lock:
            snapshot = list(self.events)
        return "\n".join(
            json.dumps(event.as_dict(), sort_keys=True) for event in snapshot
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text + "\n")

    @classmethod
    def read_jsonl(cls, path: str) -> List[Dict[str, Any]]:
        """Parse a written log back into dicts (for harnesses and CLI)."""
        records: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


def _coerce(value: Any) -> Any:
    """Make a field JSON-safe and deterministic at emission time."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_coerce(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _coerce(item) for key, item in value.items()}
    return str(value)


__all__ = ["Event", "EventLog", "EventType"]
