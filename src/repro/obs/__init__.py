"""repro.obs — unified observability: tracing, metrics, event log.

The three sinks (DESIGN.md §11):

* :class:`~repro.obs.trace.Tracer` — nested lifecycle spans with
  wall/CPU time and attributes; exports Chrome trace-event JSON and a
  human-readable tree (``%trace``).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms whose rendered output is byte-stable across
  runs (``repro stats``). The legacy ``repro.telemetry`` stats classes
  are views over this registry.
* :class:`~repro.obs.events.EventLog` — typed, reason-carrying JSONL
  events for decisions that counters alone cannot explain (plan
  declines, escalations, fault injections, retries, recovery).

One :class:`~repro.obs.recorder.Observer` bundles all three behind an
enabled/disabled gate; :data:`~repro.obs.recorder.NO_OBSERVER` is the
shared no-op used when a session opts out (``KishuSession(observe=False)``).
"""

from repro.obs.events import Event, EventLog, EventType
from repro.obs.metrics import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import NO_OBSERVER, Observer, maybe_span
from repro.obs.trace import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Event",
    "EventLog",
    "EventType",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NO_OBSERVER",
    "NULL_SPAN",
    "NullSpan",
    "Observer",
    "Span",
    "Tracer",
    "maybe_span",
]
