"""Prometheus text-exposition rendering of a metrics registry snapshot.

One pure function: :func:`render_prometheus` maps a
:class:`~repro.obs.metrics.MetricsRegistry` to the Prometheus text
exposition format (version 0.0.4) — counters as ``_total``, gauges
plain, histograms as cumulative ``le`` buckets plus ``_sum``/``_count``.
Output is name-sorted and contains no timestamps, so a deterministic
registry renders byte-identically on every run (same discipline as
``MetricsRegistry.as_dict``).

No HTTP server ships here: the service is in-process, so surfaces that
want an exposition snapshot (``repro health --format prom``, scrapers
run out-of-band against exported files) call this and write the text
wherever they need it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry


def _sanitize(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry,
    *,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    ``labels`` (e.g. ``{"session": "s001"}``) are attached to every
    series; keys and values are rendered sorted and escaped.
    """
    label_text = ""
    if labels:
        parts = []
        for key in sorted(labels):
            value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
            parts.append(f'{_sanitize(key)}="{value}"')
        label_text = "{" + ",".join(parts) + "}"

    lines: List[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = f"{_sanitize(namespace)}_{_sanitize(name)}" if namespace else _sanitize(name)
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            snapshot = instrument.as_value()
            cumulative = 0
            for bound, count in zip(instrument.bounds, instrument.counts):
                cumulative += count
                if label_text:
                    inner = label_text[1:-1] + f',le="{bound:g}"'
                else:
                    inner = f'le="{bound:g}"'
                lines.append(f"{metric}_bucket{{{inner}}} {cumulative}")
            cumulative += instrument.overflow
            if label_text:
                inner = label_text[1:-1] + ',le="+Inf"'
            else:
                inner = 'le="+Inf"'
            lines.append(f"{metric}_bucket{{{inner}}} {cumulative}")
            lines.append(
                f"{metric}_sum{label_text} {_format_value(snapshot['sum'])}"
            )
            lines.append(f"{metric}_count{label_text} {snapshot['count']}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f"{metric}{label_text} {_format_value(instrument.value)}"
            )
        else:
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(
                f"{metric}_total{label_text} {_format_value(instrument.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["render_prometheus"]
