"""The Observer: one handle bundling tracer, metrics registry, event log.

Every instrumented component takes (or is handed) an :class:`Observer`
and calls four verbs on it:

* ``obs.span(name, **attrs)`` — open a lifecycle span (context manager);
* ``obs.event(type, **fields)`` — append a structured event (and bump
  the ``events.<type>`` counter so event frequencies are queryable from
  the registry without scanning the log);
* ``obs.count/observe/gauge`` — registry shortcuts;
* ``obs.annotate(**attrs)`` — attach attributes to the innermost open
  span, from code that does not hold the span object.

Disabled mode (:data:`NO_OBSERVER`, or ``Observer(enabled=False)``)
short-circuits every verb before touching any sink: ``span`` returns a
shared, pre-built null context manager and the rest return immediately
after one attribute check — the near-zero-overhead guarantee the
``benchmarks/test_obs_overhead.py`` budget test enforces.
"""

from __future__ import annotations

from typing import Any, ContextManager, Iterator, Optional, Sequence, Union

from contextlib import contextmanager

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, NullSpan, Span, Tracer


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Observer:
    """Bundles the three sinks behind one enabled/disabled gate."""

    __slots__ = ("enabled", "tracer", "metrics", "events")

    def __init__(
        self,
        *,
        enabled: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()

    # -- tracing ---------------------------------------------------------------

    def span(
        self, name: str, **attrs: Any
    ) -> ContextManager[Union[Span, NullSpan]]:
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attrs)

    def annotate(self, **attrs: Any) -> None:
        """Set attributes on the innermost open span, if any."""
        if not self.enabled:
            return
        current = self.tracer.current()
        if current is not None:
            current.attrs.update(attrs)

    # -- events ----------------------------------------------------------------

    def event(self, type: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.emit(type, **fields)
        self.metrics.counter(f"events.{type}").inc()

    # -- metrics ---------------------------------------------------------------

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(
        self,
        name: str,
        value: Union[int, float],
        bounds: Optional[Sequence[Union[int, float]]] = None,
    ) -> None:
        if self.enabled:
            self.metrics.histogram(name, bounds).record(value)

    def gauge(self, name: str, value: Union[int, float]) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)


#: The process-wide disabled observer. Components default to this so
#: construction order never matters; sessions swap in a live one.
NO_OBSERVER = Observer(enabled=False)


@contextmanager
def maybe_span(
    observer: Optional[Observer], name: str, **attrs: Any
) -> Iterator[Union[Span, NullSpan]]:
    """Span over a possibly-None observer (convenience for call sites
    whose observer attribute is optional)."""
    obs = observer if observer is not None else NO_OBSERVER
    with obs.span(name, **attrs) as span:
        yield span


__all__ = ["NO_OBSERVER", "Observer", "maybe_span"]
