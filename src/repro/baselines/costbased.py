"""Cost-based Det-replay: the optimization the paper leaves to future work.

§7.5.2 of the paper: "cost-based optimization is required for
Kishu+Det-replay to function, which we leave to future work" — plain
Det-replay skips storage for *every* deterministic cell, which saves
storage but can make checkout catastrophically slow (the 1050 s Cluster
replay). This extension makes the skip decision per cell with a cost
model: skip storage only when the estimated replay cost (the cell's own
measured duration plus its dependency chain) stays below a budget,
otherwise store the payload like plain Kishu.

The result keeps Det-replay's storage savings on cheap deterministic
cells while bounding worst-case checkout time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.kishu_method import KishuMethod
from repro.core.covariable import CoVarKey
from repro.core.session import KishuSession
from repro.kernel.kernel import NotebookKernel


class CostBasedDetReplaySession(KishuSession):
    """Det-replay with a per-cell replay-cost budget.

    A deterministic cell's payloads are skipped only if replaying it at
    checkout — including transitively replaying any earlier skipped cells
    it depends on — is estimated to stay under ``replay_budget_seconds``.
    """

    def __init__(
        self, *args, replay_budget_seconds: float = 1.0, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.replay_budget_seconds = replay_budget_seconds
        #: Estimated replay cost of each *skipped* node (cell duration
        #: plus the replay cost of skipped dependencies).
        self._skipped_replay_cost: Dict[str, float] = {}
        self._decisions: List[bool] = []

    def should_store_delta(self, tags: Set[str]) -> bool:
        if "deterministic" not in tags:
            self._decisions.append(True)
            return True
        replay_cost = self._estimate_replay_cost()
        store = replay_cost > self.replay_budget_seconds
        self._decisions.append(store)
        if not store:
            # Record the skip under the node id the commit will create.
            self._pending_skip_cost = replay_cost
        return store

    def _estimate_replay_cost(self) -> float:
        """Cell duration plus replay costs of skipped ancestors it reads."""
        cost = getattr(self, "_last_cell_duration", 0.0)
        parent_state = self.graph.head.state
        record = getattr(self, "_last_commit_record", None)
        if record is None:
            return cost
        from repro.kernel.namespace import filter_user_names

        for name in filter_user_names(record.gets):
            key = self.pool.key_of(name)
            if key is None:
                continue
            version = parent_state.get(key)
            if version is not None and version in self._skipped_replay_cost:
                cost += self._skipped_replay_cost[version]
        return cost

    def commit(self):
        node = super().commit()
        if node is not None and hasattr(self, "_pending_skip_cost"):
            self._skipped_replay_cost[node.node_id] = self._pending_skip_cost
            del self._pending_skip_cost
        return node

    @property
    def skip_decisions(self) -> List[bool]:
        """Per-commit store decisions (False = skipped, replay on checkout)."""
        return list(self._decisions)


class CostBasedDetReplayMethod(KishuMethod):
    """Cost-based Det-replay under the common benchmark interface."""

    name = "Kishu+Det-replay (cost-based)"

    def __init__(
        self,
        kernel: NotebookKernel,
        replay_budget_seconds: float = 1.0,
        **session_kwargs,
    ) -> None:
        from repro.baselines.base import CheckpointMethod

        CheckpointMethod.__init__(self, kernel)
        self.session = CostBasedDetReplaySession(
            kernel,
            auto_checkpoint=False,
            replay_budget_seconds=replay_budget_seconds,
            **session_kwargs,
        )
        self._node_ids: List[str] = []
