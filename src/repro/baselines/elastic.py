"""ElasticNotebook-style session replicator baseline (§7.1).

ElasticNotebook optimizes live *migration*: per checkpoint it profiles
every variable (size and serializability probing) and solves a
store-versus-recompute decision, then writes one replication file for the
whole state. Used as a per-cell checkpointer, this gives it the paper's
observed cost profile:

* smaller files than DumpSession when variables are cheap to recompute
  (the recompute set stores only cell code) — next-best storage on most
  notebooks (Fig 13);
* checkpoint time inflated by the profiling pass — slower than
  DumpSession on some notebooks (Fig 14, §7.4);
* restore is whole-state into a fresh kernel, never incremental, with
  recompute-set cells re-run on load (Fig 15/16).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod, timed
from repro.core.serialization import SerializerChain, active_globals
from repro.errors import DeserializationError, SerializationError
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord, filter_user_names


@dataclass
class _Replication:
    """One whole-state replication file."""

    stored_blob: Optional[bytes]
    pickler_name: Optional[str]
    recompute_cells: List[str]  # cell sources to re-run on restore
    size_bytes: int
    #: All cell sources up to this checkpoint, for the checkout-time
    #: fault-tolerance path (full replay if the blob fails to load).
    history_sources: List[str] = None


class ElasticNotebookMethod(CheckpointMethod):
    """Profiling-based store/recompute session replicator."""

    name = "ElasticNotebook"
    incremental_checkout = False

    #: Assumed storage throughput used by the cost model to convert a
    #: variable's size into an estimated write cost (bytes/second) —
    #: the paper testbed's ~360 MB/s NFS write speed, matching the
    #: simulated disk the benchmarks charge I/O through.
    assumed_write_bandwidth = 360 * 1024 * 1024

    def __init__(self, kernel: NotebookKernel) -> None:
        super().__init__(kernel)
        self.serializer = SerializerChain()
        self.replications: List[_Replication] = []
        #: (source, written names, read names, duration) per executed cell.
        self._cell_history: List[Tuple[str, Set[str], Set[str], float]] = []

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        items = self.kernel.user_variables()
        written = filter_user_names(record.sets) if record is not None else set(items)
        read = filter_user_names(record.gets) if record is not None else set()
        self._cell_history.append(
            (result.cell.source, written, read, result.duration)
        )

        with timed() as clock:
            store_names, recompute_cells = self._optimize(items)
            stored = {name: items[name] for name in store_names}
            try:
                blob, pickler_name = self.serializer.serialize(set(stored), stored)
            except SerializationError:
                # Fault tolerance: fall back to recomputing everything.
                blob, pickler_name = None, None
                recompute_cells = [source for source, _, _, _ in self._cell_history]
            size = len(blob) if blob is not None else 0
            self._charge_write(size)
            self.replications.append(
                _Replication(
                    stored_blob=blob,
                    pickler_name=pickler_name,
                    recompute_cells=recompute_cells,
                    size_bytes=size,
                    history_sources=[s for s, _, _, _ in self._cell_history],
                )
            )
        return self._record_cost(
            CheckpointCost(seconds=clock.seconds, bytes_written=size)
        )

    def _optimize(self, items: Dict[str, Any]) -> Tuple[Set[str], List[str]]:
        """The store-versus-recompute decision, with per-variable profiling.

        Profiling *is* the point: each variable is trial-pickled to learn
        its size and serializability (this is the overhead §7.4 describes).
        A variable is stored when its estimated write cost is below the
        cost of re-running its *lineage closure* — the producing cell plus,
        transitively, every cell producing an input it reads (EN's
        dependency-graph cost model): recomputing a variable in a fresh
        kernel replays its whole ancestry.
        """
        store: Set[str] = set()
        recompute_cells: List[str] = []
        producer: Dict[str, int] = {}
        for index, (_, written, _, _) in enumerate(self._cell_history):
            for name in written:
                producer[name] = index

        closure_cost = self._lineage_closure_costs(producer)

        recompute_sources: Set[str] = set()
        for name, value in items.items():
            size = self._profile_size(value)
            producing_cell = producer.get(name)
            if size is None:
                # Unserializable: must recompute.
                if producing_cell is not None:
                    recompute_sources.add(self._cell_history[producing_cell][0])
                continue
            write_cost = size / self.assumed_write_bandwidth
            rerun_cost = (
                closure_cost[producing_cell]
                if producing_cell is not None
                else float("inf")
            )
            if write_cost <= rerun_cost or producing_cell is None:
                store.add(name)
            else:
                recompute_sources.add(self._cell_history[producing_cell][0])

        # Replay order must follow execution order.
        for source, _, _, _ in self._cell_history:
            if source in recompute_sources:
                recompute_cells.append(source)
        return store, recompute_cells

    def _lineage_closure_costs(self, producer: Dict[str, int]) -> List[float]:
        """Per-cell cost of re-running the cell plus its full ancestry."""
        memo: Dict[int, float] = {}

        def closure(index: int) -> float:
            if index in memo:
                return memo[index]
            memo[index] = 0.0  # break dependency cycles from re-executed cells
            _, _, read, duration = self._cell_history[index]
            total = duration
            ancestors: Set[int] = set()
            for name in read:
                dependency = producer.get(name)
                if dependency is not None and dependency != index:
                    ancestors.add(dependency)
            for dependency in ancestors:
                total += closure(dependency)
            memo[index] = total
            return total

        return [closure(index) for index in range(len(self._cell_history))]

    def _profile_size(self, value: Any) -> Optional[int]:
        try:
            blob, _ = self.serializer.serialize({"probe"}, {"probe": value})
            return len(blob)
        except SerializationError:
            return None

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        replication = self.replications[checkpoint_index]
        fresh_kernel = NotebookKernel()
        with timed() as clock:
            if replication.stored_blob is not None:
                self._charge_read(len(replication.stored_blob))
                try:
                    with active_globals(fresh_kernel.user_ns):
                        restored = self.serializer.deserialize(
                            replication.stored_blob, replication.pickler_name
                        )
                except DeserializationError:
                    # Fault tolerance: a payload that will not load is
                    # reconstructed by replaying the recorded cells.
                    restored = {}
                    for source in replication.history_sources or []:
                        fresh_kernel.run_cell(source, raise_on_error=False)
                for name, value in restored.items():
                    fresh_kernel.user_ns.plant(name, value)
            for source in replication.recompute_cells:
                fresh_kernel.run_cell(source, raise_on_error=False)
        return CheckoutCost(
            seconds=clock.seconds,
            restored=fresh_kernel.user_variables(),
            kernel_killed=False,
        )

    def total_storage_bytes(self) -> int:
        return sum(replication.size_bytes for replication in self.replications)
