"""DumpSession: whole-session serialization baseline (§7.1).

Models Dill's ``dump_session`` (and ForkIt, §8.2): after each cell the
*entire* user namespace is pickled into one blob. Restore loads the full
blob into a fresh kernel — correct (shared references preserved, the whole
state is one pickle) but never incremental in either direction, and a
single unserializable object fails the whole checkpoint (the paper's
Qiskit failure).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod, timed
from repro.core.serialization import SerializerChain, active_globals
from repro.errors import DeserializationError, SerializationError
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord


class DumpSessionMethod(CheckpointMethod):
    """Bulk pickle of the full session state per cell execution."""

    name = "DumpSession"
    incremental_checkout = False

    def __init__(self, kernel: NotebookKernel) -> None:
        super().__init__(kernel)
        self.serializer = SerializerChain()
        self.dumps: List[Optional[tuple]] = []  # (blob, pickler_name) or None

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        items = self.kernel.user_variables()
        with timed() as clock:
            try:
                blob, pickler_name = self.serializer.serialize(set(items), items)
            except SerializationError as exc:
                self.dumps.append(None)
                return self._record_cost(
                    CheckpointCost(
                        seconds=clock.seconds,
                        bytes_written=0,
                        failed=True,
                        failure_reason=str(exc),
                    )
                )
            self._charge_write(len(blob))
        self.dumps.append((blob, pickler_name))
        return self._record_cost(
            CheckpointCost(seconds=clock.seconds, bytes_written=len(blob))
        )

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        dump = self.dumps[checkpoint_index]
        if dump is None:
            return CheckoutCost(
                seconds=0.0,
                restored=None,
                failed=True,
                failure_reason="checkpoint missing (session dump had failed)",
            )
        blob, pickler_name = dump
        fresh_kernel = NotebookKernel()
        with timed() as clock:
            self._charge_read(len(blob))
            try:
                with active_globals(fresh_kernel.user_ns):
                    restored = self.serializer.deserialize(blob, pickler_name)
            except DeserializationError as exc:
                return CheckoutCost(
                    seconds=clock.seconds,
                    restored=None,
                    failed=True,
                    failure_reason=str(exc),
                )
            for name, value in restored.items():
                fresh_kernel.user_ns.plant(name, value)
        return CheckoutCost(
            seconds=clock.seconds,
            restored=fresh_kernel.user_variables(),
            kernel_killed=False,
        )

    def total_storage_bytes(self) -> int:
        return sum(len(dump[0]) for dump in self.dumps if dump is not None)
