"""Checkpoint/checkout baselines from the paper's evaluation (§7.1)."""

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod
from repro.baselines.costbased import (
    CostBasedDetReplayMethod,
    CostBasedDetReplaySession,
)
from repro.baselines.criu import CRIUIncrementalMethod, CRIUMethod
from repro.baselines.dumpsession import DumpSessionMethod
from repro.baselines.elastic import ElasticNotebookMethod
from repro.baselines.kishu_method import (
    DetReplayMethod,
    DetReplaySession,
    KishuMethod,
)
from repro.baselines.kvstore import KVStoreMethod

#: Factory list in the order the paper's figures present the methods.
ALL_METHOD_FACTORIES = [
    KishuMethod,
    DetReplayMethod,
    CRIUMethod,
    CRIUIncrementalMethod,
    DumpSessionMethod,
    ElasticNotebookMethod,
]

__all__ = [
    "CheckpointMethod",
    "CheckpointCost",
    "CheckoutCost",
    "CRIUMethod",
    "CRIUIncrementalMethod",
    "DumpSessionMethod",
    "ElasticNotebookMethod",
    "KishuMethod",
    "DetReplayMethod",
    "DetReplaySession",
    "KVStoreMethod",
    "CostBasedDetReplayMethod",
    "CostBasedDetReplaySession",
    "ALL_METHOD_FACTORIES",
]
