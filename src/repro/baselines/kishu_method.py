"""Kishu wrapped in the common benchmark interface."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod, timed
from repro.core.session import KishuSession
from repro.errors import KishuError
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord


class KishuMethod(CheckpointMethod):
    """Kishu: incremental checkpoint and incremental in-place checkout."""

    name = "Kishu"
    incremental_checkout = True

    def __init__(self, kernel: NotebookKernel, **session_kwargs) -> None:
        super().__init__(kernel)
        # The benchmark harness manages recording windows itself, so the
        # session is driven manually (not via kernel hooks).
        self.session = KishuSession(kernel, auto_checkpoint=False, **session_kwargs)
        self._node_ids: List[str] = []

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        self.session._pending_record = record
        self.session._pending_sources = [result.cell.source]
        self.session._pending_tags = set(result.cell.tags)
        self.session._pending_execution_count = result.execution_count
        self.session._last_cell_duration = result.duration
        with timed() as clock:
            node = self.session.commit()
            metric = self.session.metrics[-1]
            self._charge_write(metric.bytes_written)
        self._node_ids.append(node.node_id)
        return self._record_cost(
            CheckpointCost(seconds=clock.seconds, bytes_written=metric.bytes_written)
        )

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        node_id = self._node_ids[checkpoint_index]
        try:
            with timed() as clock:
                report = self.session.checkout(node_id)
                self._charge_read(report.bytes_loaded)
        except KishuError as exc:
            return CheckoutCost(
                seconds=0.0, restored=None, failed=True, failure_reason=repr(exc)
            )
        return CheckoutCost(
            seconds=clock.seconds,
            restored=self.kernel.user_variables(),
            kernel_killed=False,
        )

    def node_id_of(self, checkpoint_index: int) -> str:
        return self._node_ids[checkpoint_index]

    def total_storage_bytes(self) -> int:
        return self.session.total_checkpoint_bytes()

    def tracking_seconds(self) -> float:
        return self.session.total_tracking_seconds()


class DetReplaySession(KishuSession):
    """Kishu+Det-replay: skips checkpointing after deterministic cells.

    Cells tagged ``"deterministic"`` (manual annotation, §7.1 footnote 6)
    write no payloads; their co-variables are replayed via fallback
    recomputation at checkout — saving storage, sometimes catastrophically
    slow to check out (the paper's Cluster 1050 s case).
    """

    def should_store_delta(self, tags) -> bool:
        return "deterministic" not in tags


class DetReplayMethod(KishuMethod):
    """Kishu+Det-replay under the common interface."""

    name = "Kishu+Det-replay"

    def __init__(self, kernel: NotebookKernel, **session_kwargs) -> None:
        CheckpointMethod.__init__(self, kernel)
        self.session = DetReplaySession(kernel, auto_checkpoint=False, **session_kwargs)
        self._node_ids: List[str] = []
