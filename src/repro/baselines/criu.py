"""CRIU and CRIU-Incremental: OS-level memory-snapshot baselines (§7.1).

Both operate on the simulated process heap (:mod:`repro.memsim`): the
notebook's variables are laid out on pages; CRIU copies every mapped page
per checkpoint, CRIU-Incremental copies only pages whose content changed.

Their characteristic costs emerge from the page mechanics:

* checkpoint size — page granularity is coarser than co-variables, so
  fragmented structures dirty many pages (Fig 13);
* checkout — the full page image must be pieced together from the whole
  snapshot chain and the current kernel process killed and replaced
  (Fig 15/16: slowest restores, "kernel_killed" = True);
* failure on off-process state — device memory and other processes are
  not in the page image (Fig 12 / Table 4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod, timed
from repro.errors import SnapshotError
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord, filter_user_names
from repro.memsim.process import ProcessSnapshot, SimulatedProcess, restore_namespace


class CRIUMethod(CheckpointMethod):
    """Full memory dump per cell execution."""

    name = "CRIU"
    incremental_checkout = False
    _incremental_snapshots = False

    def __init__(self, kernel: NotebookKernel) -> None:
        super().__init__(kernel)
        self.process = SimulatedProcess()
        self.snapshots: List[Optional[ProcessSnapshot]] = []
        self._synced_once = False

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        items = self.kernel.user_variables()
        changed = None
        if self._synced_once and record is not None:
            changed = filter_user_names(record.accessed)
        with timed() as clock:
            self.process.sync_variables(items, changed_names=changed)
            if record is not None:
                # Reference counting dirties the pages of everything the
                # cell merely *read* (see SimulatedProcess.touch_variable).
                for name in filter_user_names(record.gets):
                    self.process.touch_variable(name)
            self._synced_once = True
            try:
                snapshot = self.process.snapshot(
                    items, incremental=self._incremental_snapshots
                )
            except SnapshotError as exc:
                self.snapshots.append(None)
                return self._record_cost(
                    CheckpointCost(
                        seconds=clock.seconds,
                        bytes_written=0,
                        failed=True,
                        failure_reason=str(exc),
                    )
                )
            self._charge_write(snapshot.size_bytes)
        self.snapshots.append(snapshot)
        return self._record_cost(
            CheckpointCost(seconds=clock.seconds, bytes_written=snapshot.size_bytes)
        )

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        chain = self._restore_chain(checkpoint_index)
        if chain is None:
            return CheckoutCost(
                seconds=0.0,
                restored=None,
                failed=True,
                failure_reason="checkpoint missing (snapshot had failed)",
            )
        with timed() as clock:
            # CRIU must kill the existing process before reviving the image
            # (PID conflicts); model it as building an entirely new kernel.
            self._charge_read(sum(snapshot.size_bytes for snapshot in chain))
            restored = restore_namespace(chain)
            fresh_kernel = NotebookKernel()
            for name, value in restored.items():
                fresh_kernel.user_ns.plant(name, value)
        return CheckoutCost(
            seconds=clock.seconds,
            restored=fresh_kernel.user_variables(),
            kernel_killed=True,
        )

    def _restore_chain(
        self, checkpoint_index: int
    ) -> Optional[List[ProcessSnapshot]]:
        target = self.snapshots[checkpoint_index]
        if target is None:
            return None
        return [target]

    def total_storage_bytes(self) -> int:
        return sum(s.size_bytes for s in self.snapshots if s is not None)


class CRIUIncrementalMethod(CRIUMethod):
    """Memory dump with page deduplication: stores only changed pages.

    Cheap to write, but restore must piece the image together from the
    entire snapshot chain up to the target — no incremental restore.
    """

    name = "CRIU-Incremental"
    _incremental_snapshots = True

    def _restore_chain(
        self, checkpoint_index: int
    ) -> Optional[List[ProcessSnapshot]]:
        chain = self.snapshots[: checkpoint_index + 1]
        if any(snapshot is None for snapshot in chain):
            return None
        return list(chain)
