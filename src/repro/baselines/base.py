"""Common interface for checkpoint/checkout methods (§7.1 of the paper).

Every method — Kishu itself and the five baselines — implements
:class:`CheckpointMethod`: it observes cell executions on a kernel, writes
checkpoints, and can restore the state as of any earlier cell. The
benchmark harness measures three quantities through this interface,
matching the paper's methodology:

* checkpoint time (tracking + data writing) after each cell execution,
* cumulative checkpoint storage,
* checkout time to restore a past state (into the same kernel for Kishu
  and Det-replay; into a fresh namespace for everything else, since the
  baselines cannot restore incrementally).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord


@dataclass
class CheckpointCost:
    """Cost of one per-cell checkpoint."""

    seconds: float
    bytes_written: int
    failed: bool = False
    failure_reason: str = ""


@dataclass
class CheckoutCost:
    """Cost and outcome of restoring one past state."""

    seconds: float
    restored: Optional[Dict[str, Any]]
    kernel_killed: bool = False
    failed: bool = False
    failure_reason: str = ""


class CheckpointMethod:
    """Interface implemented by Kishu and all baselines."""

    #: Human-readable method name, as it appears in the paper's figures.
    name = "abstract"
    #: True when checkout updates the live kernel in place (only Kishu).
    incremental_checkout = False

    def __init__(self, kernel: NotebookKernel) -> None:
        self.kernel = kernel
        self.checkpoint_costs: List[CheckpointCost] = []
        #: Optional repro.bench.disk.SimulatedDisk charging I/O time; the
        #: harness installs one so every method pays the same bandwidth
        #: for the bytes it moves.
        self.disk = None

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        """Checkpoint the state after one cell execution.

        ``record`` carries the names the cell accessed — only
        application-level methods may use it; page-level methods receive it
        merely to know which heap regions the cell would have rewritten.
        """
        raise NotImplementedError

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        """Restore the state as of checkpoint ``checkpoint_index``
        (0-based, one checkpoint per executed cell)."""
        raise NotImplementedError

    def total_storage_bytes(self) -> int:
        raise NotImplementedError

    def total_checkpoint_seconds(self) -> float:
        return sum(cost.seconds for cost in self.checkpoint_costs)

    # -- helpers -------------------------------------------------------------

    def _record_cost(self, cost: CheckpointCost) -> CheckpointCost:
        self.checkpoint_costs.append(cost)
        return cost

    def _charge_read(self, n_bytes: int) -> None:
        if self.disk is not None:
            self.disk.charge_read(n_bytes)

    def _charge_write(self, n_bytes: int) -> None:
        if self.disk is not None:
            self.disk.charge_write(n_bytes)


class timed:
    """Context manager measuring wall-clock seconds into ``.seconds``."""

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
