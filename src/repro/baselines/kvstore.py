"""Variable-level KV-store baseline: the shared-reference breaker.

On-disk key-value stores (shelve, %store magic, redis-shelve — §8.3 of the
paper) persist each variable *independently*. That makes them appear
incremental, but pickling variables separately severs references shared
*between* variables: two names aliasing one list come back as two distinct
lists. This baseline exists to demonstrate the correctness failure that
motivates the co-variable granularity (§2.4) — the correctness tests
assert that it breaks exactly where Kishu does not.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.baselines.base import CheckoutCost, CheckpointCost, CheckpointMethod, timed
from repro.core.serialization import SerializerChain, active_globals
from repro.errors import DeserializationError, SerializationError
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord, filter_user_names


class KVStoreMethod(CheckpointMethod):
    """Per-variable pickling into a versioned key-value store."""

    name = "KV-store"
    incremental_checkout = False

    def __init__(self, kernel: NotebookKernel) -> None:
        super().__init__(kernel)
        self.serializer = SerializerChain()
        #: versions[i] maps name -> (blob, pickler) for the state after cell i.
        self.versions: List[Dict[str, Optional[Tuple[bytes, str]]]] = []
        self._store: Dict[str, Optional[Tuple[bytes, str]]] = {}

    def on_cell_executed(
        self, result: CellResult, record: Optional[AccessRecord]
    ) -> CheckpointCost:
        items = self.kernel.user_variables()
        touched = (
            filter_user_names(record.accessed) if record is not None else set(items)
        )
        bytes_written = 0
        with timed() as clock:
            for name in list(self._store):
                if name not in items:
                    del self._store[name]
            for name, value in items.items():
                if name in self._store and name not in touched:
                    continue  # unchanged key, keep prior version
                try:
                    blob, pickler = self.serializer.serialize({name}, {name: value})
                    self._store[name] = (blob, pickler)
                    bytes_written += len(blob)
                except SerializationError:
                    self._store[name] = None
            self._charge_write(bytes_written)
            self.versions.append(dict(self._store))
        return self._record_cost(
            CheckpointCost(seconds=clock.seconds, bytes_written=bytes_written)
        )

    def checkout(self, checkpoint_index: int) -> CheckoutCost:
        version = self.versions[checkpoint_index]
        fresh_kernel = NotebookKernel()
        with timed() as clock:
            for name, entry in version.items():
                if entry is None:
                    continue  # variable was unserializable; silently lost
                blob, pickler = entry
                self._charge_read(len(blob))
                try:
                    with active_globals(fresh_kernel.user_ns):
                        # Each variable unpickled independently: references
                        # shared between variables are NOT preserved.
                        payload = self.serializer.deserialize(blob, pickler)
                except DeserializationError:
                    continue
                fresh_kernel.user_ns.plant(name, payload[name])
        return CheckoutCost(
            seconds=clock.seconds,
            restored=fresh_kernel.user_variables(),
            kernel_killed=False,
        )

    def total_storage_bytes(self) -> int:
        total = 0
        for version in self.versions:
            for entry in version.values():
                if entry is not None:
                    total += len(entry[0])
        return total
