"""Interactive notebook REPL with the Kishu command palette.

The SIGMOD 2025 demo paper showcases Kishu through an in-notebook command
palette (``init`` / ``log`` / ``checkout``). This module provides that
experience at a terminal: a read-eval loop where ordinary input runs as
notebook cells (auto-checkpointed by Kishu) and ``%``-prefixed commands
drive time travel.

Commands:
    %log                 show the checkpoint graph (head marked with *)
    %checkout <ref>      restore a state (checkpoint id, branch, or tag)
    %undo                restore the state before the last cell
    %tag <name> [ref]    name a checkpoint (immutable)
    %branch <name>       start a named branch at the head and switch to it
    %vars                list user variables
    %state               show the head's co-variable versions
    %telemetry           walk-cache, static-analysis, and replay counters
    %trace [--out FILE]  show the lifecycle span tree (or export Chrome trace)
    %stats               session metrics registry (counters and histograms)
    %events [type]       structured event log (optionally filtered by type)
    %lint [source]       lint the session's history (or an inline snippet)
    %summaries           show live interprocedural function summaries
    %replay-plan <names> show the minimal replay plan for variables at a ref
    %recover             scan the store for torn checkpoints and sweep them
    %help                command summary
    %quit                leave the session

Run:  python -m repro.cli [--store PATH] [--trace-out FILE]
      python -m repro.cli lint [--format text|json] [--notebook] FILE...
      python -m repro.cli summaries [--format text|json] FILE...
      python -m repro.cli stubs [--format text|json] [--stub FILE] list
      python -m repro.cli stubs [--format text|json] [--stub FILE] check FILE...
      python -m repro.cli plan [--format text|json] [--targets a,b] [--trace-out FILE] FILE
      python -m repro.cli stats --store PATH [--format text|json]
      python -m repro.cli fuzz [--seed S] [--iterations N] [--cells N] [--minimize]
      python -m repro.cli fuzz --soak N [--service] [--slo FILE] [--events-out FILE]
      python -m repro.cli sessions list --store PATH [--status S] [--json]
      python -m repro.cli sessions resume --store PATH SESSION_ID
      python -m repro.cli sessions rename --store PATH SESSION_ID NEW_PATH
      python -m repro.cli health --store PATH [--slo FILE] [--events FILE] [--strict]
      python -m repro.cli top --store PATH [--interval S] [--iterations N]

With ``--store`` the session checkpoints into a durable SQLite database;
if the file already holds history (e.g. from a session that crashed),
the REPL resumes it: any torn checkpoint left by the crash is swept by
the recovery scan (reported at startup), and the last committed state is
restored into the fresh kernel.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Callable, Dict, List, Optional, TextIO

from repro.analysis import JsonReporter, LintEngine, Severity, TextReporter, worst_severity
from repro.core.graph import ROOT_ID
from repro.core.session import KishuSession
from repro.core.storage import CheckpointStore, SQLiteCheckpointStore
from repro.errors import KishuError, StoreBusyError
from repro.kernel.kernel import NotebookKernel

PROMPT_TEMPLATE = "In [{count}]: "


class KishuRepl:
    """A line-oriented notebook session with time-travel commands."""

    def __init__(
        self,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
        store: Optional[CheckpointStore] = None,
        **session_kwargs,
    ) -> None:
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.kernel = NotebookKernel()
        if store is not None and store.read_nodes():
            # The store already holds committed history — resume it
            # (restoring the last committed head) instead of starting over.
            self.session = KishuSession.resume(self.kernel, store, **session_kwargs)
            self._resumed = True
        else:
            self.session = KishuSession.init(self.kernel, store=store, **session_kwargs)
            self._resumed = False
        self._running = False
        self._commands: Dict[str, Callable[[List[str]], None]] = {
            "log": self._cmd_log,
            "checkout": self._cmd_checkout,
            "undo": self._cmd_undo,
            "tag": self._cmd_tag,
            "branch": self._cmd_branch,
            "vars": self._cmd_vars,
            "state": self._cmd_state,
            "telemetry": self._cmd_telemetry,
            "trace": self._cmd_trace,
            "stats": self._cmd_stats,
            "events": self._cmd_events,
            "lint": self._cmd_lint,
            "summaries": self._cmd_summaries,
            "replay-plan": self._cmd_replay_plan,
            "recover": self._cmd_recover,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }

    # -- loop -------------------------------------------------------------------

    def run(self) -> None:
        """Read and execute lines until EOF or %quit."""
        self._running = True
        self._print("kishu session started — %help for commands")
        recovery = self.session.store.last_recovery
        if recovery is not None and not recovery.clean:
            self._print(f"recovery: {recovery.summary()}")
        if self._resumed:
            self._print(
                f"resumed durable session at {self.session.head_id} "
                f"({len(self.session.log())} checkpoint(s))"
            )
        while self._running:
            self._print(
                PROMPT_TEMPLATE.format(count=self.kernel.execution_count + 1),
                end="",
            )
            line = self.stdin.readline()
            if not line:
                break
            self.execute(line.rstrip("\n"))

    def execute(self, line: str) -> None:
        """Execute one input line (a cell or a %command)."""
        stripped = line.strip()
        if not stripped:
            return
        if stripped.startswith("%"):
            self._dispatch(stripped[1:])
            return
        result = self.kernel.run_cell(line, raise_on_error=False)
        if result.stdout:
            self._print(result.stdout, end="")
        if result.error is not None:
            self._print(f"error: {type(result.error).__name__}: {result.error}")
        elif result.value is not None:
            self._print(f"Out[{result.execution_count}]: {result.value!r}")

    # -- commands -----------------------------------------------------------------

    def _dispatch(self, command_line: str) -> None:
        parts = command_line.split()
        name, arguments = parts[0], parts[1:]
        handler = self._commands.get(name)
        if handler is None:
            self._print(f"unknown command %{name} — try %help")
            return
        handler(arguments)

    def _cmd_log(self, arguments: List[str]) -> None:
        entries = self.session.log()
        if not entries:
            self._print("(no checkpoints yet)")
            return
        for entry in entries:
            marker = "*" if entry.is_head else " "
            decoration = f" ({', '.join(entry.refs)})" if entry.refs else ""
            self._print(
                f" {marker} {entry.node_id}{decoration}  "
                f"[{entry.execution_count}]  {entry.code_preview}"
            )

    def _cmd_checkout(self, arguments: List[str]) -> None:
        if len(arguments) != 1:
            self._print("usage: %checkout <checkpoint-id>")
            return
        try:
            report = self.session.checkout(arguments[0])
        except KishuError as exc:
            self._print(f"checkout failed: {exc}")
            return
        self._print(
            f"checked out {arguments[0]}: loaded {len(report.loaded_keys)}, "
            f"recomputed {len(report.recomputed_keys)}, "
            f"deleted {len(report.deleted_names)} "
            f"({report.seconds * 1e3:.1f} ms)"
        )

    def _cmd_undo(self, arguments: List[str]) -> None:
        head = self.session.graph.head
        if head.node_id == ROOT_ID or head.parent_id is None:
            self._print("nothing to undo")
            return
        self._cmd_checkout([head.parent_id])

    def _cmd_tag(self, arguments: List[str]) -> None:
        if not 1 <= len(arguments) <= 2:
            self._print("usage: %tag <name> [checkpoint-id]")
            return
        try:
            node_id = self.session.tag(*arguments)
        except KishuError as exc:
            self._print(f"tag failed: {exc}")
            return
        self._print(f"tagged {node_id} as {arguments[0]!r}")

    def _cmd_branch(self, arguments: List[str]) -> None:
        if len(arguments) != 1:
            self._print("usage: %branch <name>")
            return
        try:
            node_id = self.session.branch(arguments[0])
        except KishuError as exc:
            self._print(f"branch failed: {exc}")
            return
        self._print(f"created branch {arguments[0]!r} at {node_id} (now active)")

    def _cmd_vars(self, arguments: List[str]) -> None:
        variables = self.kernel.user_variables()
        if not variables:
            self._print("(empty namespace)")
            return
        for name in sorted(variables):
            value = variables[name]
            self._print(f"  {name}: {type(value).__qualname__}")

    def _cmd_state(self, arguments: List[str]) -> None:
        state = self.session.graph.head.state
        for key, version in sorted(state.items(), key=lambda kv: sorted(kv[0])):
            names = ", ".join(sorted(key))
            self._print(f"  {{{names}}} @ {version}")

    def _cmd_telemetry(self, arguments: List[str]) -> None:
        """Cumulative walk counters: is tracking cost tracking the delta?"""
        total = self.session.total_walk_stats()
        builder = self.session.pool.builder
        self._print("walk telemetry (all checkpoints):")
        self._print(f"  objects visited     {total.objects_visited}")
        self._print(f"  graphs built        {total.graphs_built}")
        self._print(
            f"  cache hits/misses   {total.cache_hits}/{total.cache_misses}"
            f"  (hit ratio {total.hit_ratio:.0%})"
        )
        self._print(f"  nodes spliced       {total.nodes_spliced}")
        self._print(f"  bytes hashed        {total.bytes_hashed}")
        self._print(f"  cache invalidations {total.cache_invalidations}")
        cache = getattr(builder, "cache", None)
        if cache is not None:
            self._print(
                f"  cache now           {len(cache)} entries, "
                f"{cache.total_nodes} nodes"
            )
        else:
            self._print("  incremental walk cache disabled")
        stats = self.session.analysis_stats
        self._print("static analysis (DESIGN.md §8):")
        self._print(f"  cells analyzed      {stats.cells_analyzed}")
        self._print(f"  escapes found       {stats.escapes_found}")
        self._print(
            f"  predictions         {stats.predictions_confirmed} confirmed / "
            f"{stats.predictions_violated} violated"
        )
        self._print(f"  escalations         {stats.escalations}")
        self._print(f"  read-only skips     {stats.read_only_skips}")
        self._print(
            f"  stub expansions     {stats.stub_expansions} "
            f"(unknown {stats.stub_unknown_calls}, "
            f"mismatches {stats.stub_mismatches})"
        )
        plans = self.session.plan_stats
        self._print("replay planner (DESIGN.md §10):")
        self._print(f"  plans computed      {plans.plans_computed}")
        self._print(
            f"  plans executed      {plans.plans_executed} "
            f"(declined {plans.plans_declined}, unsafe {plans.unsafe_plans})"
        )
        self._print(
            f"  cells replayed      {plans.cells_replayed} "
            f"(skipped {plans.cells_skipped}, loads {plans.payload_loads})"
        )
        self._print(f"  validation mismatches {plans.validation_mismatches}")
        declines = plans.declines_by_reason()
        if declines:
            rendered = ", ".join(f"{k}: {v}" for k, v in declines.items())
            self._print(f"  declines by reason  {rendered}")
        metrics = self.session.metrics
        if metrics:
            # Per-cell checkpoint size/time — the live Fig 13/14 numbers,
            # from the commit.serialize / commit.persist spans.
            self._print("per-cell checkpoints (size / store-write time):")
            for metric in metrics:
                self._print(
                    f"  {metric.node_id}  [{metric.execution_count}]  "
                    f"{metric.serialized_bytes} B serialized "
                    f"({metric.bytes_written} B written), "
                    f"store write {metric.store_write_seconds * 1e3:.2f} ms, "
                    f"checkpoint {metric.checkpoint_seconds * 1e3:.2f} ms"
                )

    def _cmd_trace(self, arguments: List[str]) -> None:
        """Show the lifecycle span tree, or export Chrome trace JSON.

        Usage: %trace [--out FILE] [--last N]. The exported file opens in
        chrome://tracing or Perfetto.
        """
        observer = self.session.observer
        if not observer.enabled:
            self._print("tracing disabled (session started with observe=False)")
            return
        out_path: Optional[str] = None
        last: Optional[int] = None
        index = 0
        while index < len(arguments):
            if arguments[index] == "--out" and index + 1 < len(arguments):
                out_path = arguments[index + 1]
                index += 2
            elif arguments[index] == "--last" and index + 1 < len(arguments):
                try:
                    last = int(arguments[index + 1])
                except ValueError:
                    self._print("usage: %trace [--out FILE] [--last N]")
                    return
                index += 2
            else:
                self._print("usage: %trace [--out FILE] [--last N]")
                return
        if out_path is not None:
            observer.tracer.write_chrome_trace(out_path)
            spans = sum(1 for _ in observer.tracer.all_spans())
            self._print(f"wrote {spans} span(s) to {out_path}")
            return
        self._print(observer.tracer.format_tree(last=last))

    def _cmd_stats(self, arguments: List[str]) -> None:
        """Print the session metrics registry (deterministic ordering)."""
        observer = self.session.observer
        if not observer.enabled:
            self._print("metrics disabled (session started with observe=False)")
            return
        text = observer.metrics.render_text()
        self._print(text if text else "(no metrics recorded)")

    def _cmd_events(self, arguments: List[str]) -> None:
        """Show the structured event log, optionally filtered by type."""
        observer = self.session.observer
        if not observer.enabled:
            self._print("event log disabled (session started with observe=False)")
            return
        events = (
            observer.events.of_type(*arguments)
            if arguments
            else list(observer.events)
        )
        if not events:
            self._print("(no events recorded)")
            return
        for event in events:
            fields = ", ".join(
                f"{key}={value}" for key, value in sorted(event.fields.items())
            )
            self._print(f"  #{event.seq} {event.type}  {fields}")

    def _cmd_lint(self, arguments: List[str]) -> None:
        """Lint executed cells — or an inline snippet given as arguments.

        The session's history is linted as one notebook, so the
        inter-cell KSH30x rules (use-before-def, dead writes,
        execution-order divergence, escaped dependencies) fire alongside
        the per-cell rules.
        """
        engine = LintEngine()
        if arguments:
            findings = engine.lint_source(" ".join(arguments), label="<input>")
        else:
            cells = [
                (f"In[{result.execution_count}]", result.cell.source)
                for result in self.kernel.history
            ]
            if not cells:
                self._print("(no cells executed yet)")
                return
            counts = [result.execution_count for result in self.kernel.history]
            findings = engine.lint_notebook(cells, execution_counts=counts)
        self._print(TextReporter().render(findings))

    def _cmd_summaries(self, arguments: List[str]) -> None:
        """Show the session's live interprocedural function summaries.

        The table is the one the pre-run analyzer consults (DESIGN.md
        §14): helpers defined by committed cells, closed over their
        direct calls, minus anything invalidated by rebinds.
        """
        table = self.session.summaries
        if table is None:
            self._print("summaries disabled (session started with use_summaries=False)")
            return
        self._print(render_summaries_text(table.to_report()))

    def _cmd_replay_plan(self, arguments: List[str]) -> None:
        """Show the minimal replay plan reconstructing variables at a ref.

        Usage: %replay-plan <name> [name...] [@ref]. Without @ref the
        plan targets the head. Costs are measured cell durations where
        available (CellCheckpointMetrics), AST size otherwise.
        """
        names = [arg for arg in arguments if not arg.startswith("@")]
        refs = [arg[1:] for arg in arguments if arg.startswith("@")]
        if not names or len(refs) > 1:
            self._print("usage: %replay-plan <name> [name...] [@ref]")
            return
        try:
            plan = self.session.plan_replay(names, refs[0] if refs else None)
        except KishuError as exc:
            self._print(f"replay-plan failed: {exc}")
            return
        self._print(plan.format())

    def _cmd_recover(self, arguments: List[str]) -> None:
        try:
            report = self.session.store.recover()
        except KishuError as exc:
            self._print(f"recover failed: {exc}")
            return
        self._print(report.summary())

    def _cmd_help(self, arguments: List[str]) -> None:
        self._print(__doc__.split("Commands:")[1].split("Run:")[0].rstrip())

    def _cmd_quit(self, arguments: List[str]) -> None:
        self._running = False
        self._print("bye")

    # -- output --------------------------------------------------------------------

    def _print(self, text: str, end: str = "\n") -> None:
        self.stdout.write(text + end)
        self.stdout.flush()


def _open_store_strict(
    path: str, err: TextIO, *, prog: str
) -> Optional[SQLiteCheckpointStore]:
    """Open a durable checkpoint store for reading, with clear failures.

    ``SQLiteCheckpointStore`` happily *creates* a missing database, which
    turns a typo'd path into a silently empty report; read-only commands
    must refuse instead. Corrupt files (not SQLite, or SQLite without our
    schema) fail here with one actionable message rather than a raw
    sqlite3 traceback. Returns None after printing to ``err``.
    """
    import sqlite3

    if not os.path.exists(path):
        err.write(f"{prog}: store not found: {path}\n")
        return None
    try:
        store = SQLiteCheckpointStore(path)
    except Exception as exc:
        err.write(f"{prog}: cannot open store {path}: {exc}\n")
        return None
    try:
        store.read_nodes()
    except (sqlite3.DatabaseError, KishuError) as exc:
        store.close()
        err.write(
            f"{prog}: not a valid checkpoint store: {path} "
            f"({type(exc).__name__}: {exc})\n"
        )
        return None
    return store


def lint_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro lint`` — run the static cell analysis over script files.

    Each file is linted as one cell (our example scripts and exported
    notebooks are plain ``.py`` files). Exits non-zero only on
    ``ERROR``-severity findings, or on any warning with ``--strict``.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static cell-effect lint (escape hatches, read-only cells).",
    )
    parser.add_argument("paths", metavar="FILE", nargs="+", help="python files to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    parser.add_argument(
        "--notebook",
        action="store_true",
        help="treat each file as a notebook (split into cells, run the "
        "inter-cell KSH30x rules)",
    )
    args = parser.parse_args(argv)

    engine = LintEngine()
    cells = []
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                cells.append((path, handle.read()))
        except OSError as exc:
            err.write(f"repro lint: cannot read {path}: {exc}\n")
            return 2
    if args.notebook:
        from repro.analysis import split_script_cells

        findings = []
        for path, source in cells:
            notebook_cells = [
                (f"{path}[{index}]", cell_source)
                for index, cell_source in enumerate(split_script_cells(source))
            ]
            findings.extend(engine.lint_notebook(notebook_cells))
    else:
        findings = engine.lint_cells(cells)
    reporter = JsonReporter() if args.format_ == "json" else TextReporter()
    out.write(reporter.render(findings) + "\n")
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if findings and worst_severity(findings) >= threshold else 0


def render_summaries_text(report: dict) -> str:
    """Human-readable rendering of a summary-table report."""
    stats = report["stats"]
    lines = [
        f"{report['cells']} cell(s) — {stats['live']} live function "
        f"summaries ({stats['tracking_safe']} tracking-safe), "
        f"{stats['invalidated']} invalidation(s)"
    ]
    for function in report["functions"]:
        parts = [
            f"  {function['name']}({', '.join(function['params'])})"
            f"  [cell {function['cell']}]"
        ]
        for label, key in (
            ("reads", "reads"),
            ("writes", "writes"),
            ("deletes", "deletes"),
            ("mutates globals", "mutates_globals"),
            ("mutates params", "mutates_params"),
            ("returns", "returns_aliases"),
        ):
            if function[key]:
                parts.append(f"{label}: {', '.join(function[key])}")
        if function["escapes"]:
            kinds = sorted({escape["kind"] for escape in function["escapes"]})
            parts.append("escapes: " + ", ".join(kinds))
        if function["calls_unknown"]:
            parts.append("calls-unknown")
        lines.append("  ".join(parts))
    for record in report["invalidations"]:
        lines.append(
            f"  ! cell {record['cell']}: {record['name']!r} invalidated "
            f"({record['reason']})"
        )
    return "\n".join(lines)


def _summaries_paths(
    raw_paths: List[str], err: TextIO, prog: str = "repro summaries"
) -> List[str]:
    """Expand directories to their sorted ``*.py`` files.

    An empty directory is a note, not an error — the caller fails (exit
    2) only when *nothing* across all arguments is analyzable.
    """
    paths: List[str] = []
    for path in raw_paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, entry)
                for entry in os.listdir(path)
                if entry.endswith(".py")
            )
            if not entries:
                err.write(f"{prog}: note: no .py files in {path}\n")
            paths.extend(entries)
        else:
            paths.append(path)
    return paths


def _read_script(path: str, err: TextIO, prog: str) -> Optional[str]:
    """Read one script for analysis, or note why it was skipped.

    Unreadable and unparseable files are skipped with a note on stderr
    (a directory sweep should not die on one scratch file); ``None``
    means skipped.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        err.write(f"{prog}: note: skipping {path}: {exc}\n")
        return None
    try:
        ast.parse(source)
    except SyntaxError as exc:
        err.write(
            f"{prog}: note: skipping {path}: syntax error on line "
            f"{exc.lineno}\n"
        )
        return None
    return source


def summaries_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro summaries`` — interprocedural function-effect summaries.

    Splits each script into notebook-style cells (``# %%`` separators,
    else one cell per top-level statement), feeds them through the
    :class:`~repro.analysis.summaries.NotebookSummaries` table in order,
    and prints the surviving summaries, invalidation events, and stats.
    ``--format json`` is byte-stable for a given input (sorted keys and
    name lists) — the golden-test contract.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro summaries",
        description="Interprocedural function-effect summaries over "
        "notebook-style scripts.",
    )
    parser.add_argument(
        "paths",
        metavar="FILE",
        nargs="+",
        help="python files (or directories of them) to summarize",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    args = parser.parse_args(argv)

    import json as json_module

    from repro.analysis import split_script_cells
    from repro.analysis.summaries import NotebookSummaries

    paths = _summaries_paths(args.paths, err)
    reports = {}
    analyzed: List[str] = []
    for path in paths:
        source = _read_script(path, err, "repro summaries")
        if source is None:
            continue
        table = NotebookSummaries.from_sources(split_script_cells(source))
        reports[path] = table.to_report()
        analyzed.append(path)
    if not analyzed:
        err.write("repro summaries: nothing analyzable\n")
        return 2

    if args.format_ == "json":
        payload = (
            reports[analyzed[0]]
            if len(analyzed) == 1
            else {path: reports[path] for path in sorted(reports)}
        )
        out.write(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    else:
        blocks = []
        for path in analyzed:
            blocks.append(f"{path}:\n{render_summaries_text(reports[path])}")
        out.write("\n\n".join(blocks) + "\n")
    return 0


def _stub_check_report(source: str, registry) -> dict:
    """Analyze one script's library calls against the stub registry."""
    from repro.analysis import split_script_cells
    from repro.analysis.flowrules import _toplevel_calls
    from repro.analysis.typetrack import StubContext, stub_call_mutates

    context = StubContext(registry=registry)
    cells = split_script_cells(source)
    stub_calls: List[dict] = []
    unknown_calls: List[dict] = []
    mismatches: List[dict] = []
    seen_modules: set = set()
    for index, cell_source in enumerate(cells):
        try:
            module = ast.parse(cell_source)
        except SyntaxError:
            context.observe_cell(cell_source)
            continue
        resolver = context.resolver(module)
        for call in _toplevel_calls(cell_source):
            resolved = resolver.resolve_call(call)
            if resolved is not None:
                stub_calls.append(
                    {
                        "cell": index,
                        "line": call.lineno,
                        "qualname": resolved.qualname,
                        "mutates": stub_call_mutates(resolved.stub, call)
                        or bool(resolved.stub.mutates_args)
                        or bool(resolved.stub.writes_globals),
                    }
                )
                continue
            unknown = resolver.unknown_library_call(call)
            if unknown is not None:
                unknown_calls.append(
                    {
                        "cell": index,
                        "line": call.lineno,
                        "qualname": unknown.qualname,
                        "stub_file": unknown.stub_file,
                    }
                )
        for statement in ast.walk(module):
            if isinstance(statement, ast.Import):
                names = [alias.name for alias in statement.names]
            elif isinstance(statement, ast.ImportFrom):
                names = [statement.module] if statement.module else []
            else:
                continue
            for name in names:
                if name in seen_modules:
                    continue
                seen_modules.add(name)
                mismatch = registry.version_mismatch(name)
                if mismatch is not None:
                    declared, imported = mismatch
                    mismatches.append(
                        {
                            "cell": index,
                            "module": name,
                            "declared": declared,
                            "imported": imported,
                        }
                    )
        context.observe_cell(cell_source)
    return {
        "cells": len(cells),
        "stub_calls": stub_calls,
        "unknown_calls": unknown_calls,
        "version_mismatches": mismatches,
    }


def render_stub_check_text(report: dict) -> str:
    """Human-readable rendering of one script's stub-check report."""
    lines = [
        f"{report['cells']} cell(s) — {len(report['stub_calls'])} stubbed "
        f"call(s), {len(report['unknown_calls'])} unstubbed library "
        f"call(s), {len(report['version_mismatches'])} version mismatch(es)"
    ]
    for entry in report["stub_calls"]:
        kind = "mutates" if entry["mutates"] else "pure"
        lines.append(
            f"  cell {entry['cell']} line {entry['line']}: "
            f"{entry['qualname']}() [{kind}]"
        )
    for entry in report["unknown_calls"]:
        fix = (
            f"extend {entry['stub_file']}"
            if entry["stub_file"]
            else "declare it in a stub file"
        )
        lines.append(
            f"  ! cell {entry['cell']} line {entry['line']}: no stub for "
            f"{entry['qualname']}() — {fix}"
        )
    for entry in report["version_mismatches"]:
        lines.append(
            f"  ! cell {entry['cell']}: stubs for {entry['module']!r} "
            f"declare {entry['declared']} but {entry['imported']} is "
            "imported"
        )
    return "\n".join(lines)


def stubs_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro stubs`` — library effect stubs (DESIGN.md §15).

    ``repro stubs list`` prints the registry: every stubbed module, its
    pinned version (if any), entry counts, and the file it came from.
    ``repro stubs check FILE|DIR`` resolves each script's library calls
    against the registry and reports stubbed calls, unstubbed
    library-shaped calls (with the stub file to extend), and version
    mismatches. Unparseable files are skipped with a note; the exit
    code is 2 only when nothing was analyzable. ``--stub FILE`` adds
    user stub files to the shipped set.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro stubs",
        description="Inspect and apply library effect stubs.",
    )
    parser.add_argument(
        "--stub",
        metavar="FILE",
        action="append",
        default=[],
        dest="stub_files",
        help="additional stub file(s) to load on top of the shipped set",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show every module in the stub registry")
    check_parser = sub.add_parser(
        "check", help="resolve a script's library calls against the registry"
    )
    check_parser.add_argument(
        "paths",
        metavar="FILE",
        nargs="+",
        help="python files (or directories of them) to check",
    )
    args = parser.parse_args(argv)

    import json as json_module

    from repro.analysis.stubs import StubError, default_registry

    try:
        registry = default_registry(extra_files=args.stub_files)
    except (StubError, OSError) as exc:
        err.write(f"repro stubs: {exc}\n")
        return 2

    if args.command == "list":
        modules = sorted(registry.modules(), key=lambda m: m.module)
        if args.format_ == "json":
            payload = [
                {
                    "module": stubs.module,
                    "version": stubs.version,
                    "stub_format": stubs.stub_format,
                    "functions": len(stubs.functions),
                    "types": len(stubs.types),
                    "default_effect": stubs.default_effect,
                    "source": stubs.source,
                }
                for stubs in modules
            ]
            out.write(
                json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        else:
            out.write(
                f"{len(modules)} stub module(s), registry fingerprint "
                f"{registry.fingerprint()}\n"
            )
            for stubs in modules:
                version = (
                    f" =={stubs.version}" if stubs.version is not None else ""
                )
                origin = f"  [{stubs.source}]" if stubs.source else ""
                out.write(
                    f"  {stubs.module}{version}  "
                    f"({len(stubs.functions)} functions, "
                    f"{len(stubs.types)} types){origin}\n"
                )
        return 0

    paths = _summaries_paths(args.paths, err, prog="repro stubs")
    reports = {}
    analyzed: List[str] = []
    for path in paths:
        source = _read_script(path, err, "repro stubs")
        if source is None:
            continue
        reports[path] = _stub_check_report(source, registry)
        analyzed.append(path)
    if not analyzed:
        err.write("repro stubs: nothing analyzable\n")
        return 2

    if args.format_ == "json":
        payload = (
            reports[analyzed[0]]
            if len(analyzed) == 1
            else {path: reports[path] for path in sorted(reports)}
        )
        out.write(json_module.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        blocks = []
        for path in analyzed:
            blocks.append(f"{path}:\n{render_stub_check_text(reports[path])}")
        out.write("\n\n".join(blocks) + "\n")
    return 0


def plan_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro plan`` — static replay planning over a script or a store.

    File mode splits the script into notebook-style cells (``# %%``
    separators, else one cell per top-level statement), builds the
    inter-cell dataflow graph, and prints the minimal ordered cell
    subset whose re-execution reconstructs the target variables. With
    ``--store`` the plan runs over a durable session's checkpoint chain
    instead, consulting stored payloads as shortcut versions and using
    measured cell durations as costs.

    Output is deterministic: ``--format json`` is byte-stable for a
    given input (sorted keys, sorted name lists, AST-size costs).
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro plan",
        description="Static replay planning over notebook-style scripts.",
    )
    parser.add_argument(
        "path",
        metavar="FILE",
        nargs="?",
        default=None,
        help="python script to plan over (split into cells)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="plan over a durable session's checkpoint chain instead",
    )
    parser.add_argument(
        "--targets",
        metavar="NAMES",
        default=None,
        help="comma-separated variables to reconstruct (default: all live)",
    )
    parser.add_argument(
        "--at",
        metavar="REF",
        default=None,
        help="cell index (file mode) or checkpoint ref (store mode)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the plan is incomplete or replay-unsafe",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        dest="trace_out",
        help="export the planning span tree as Chrome trace-event JSON",
    )
    args = parser.parse_args(argv)
    if (args.path is None) == (args.store is None):
        err.write(
            "repro plan: exactly one of FILE or --store is required "
            "(conflicting or missing input)\n"
        )
        return 2

    from repro.analysis.dataflow import (
        NotebookDataflowGraph,
        ReplayPlanner,
        is_builtin_name,
        split_script_cells,
    )

    from repro.obs import Observer

    observer = Observer() if args.trace_out else None
    if args.store is not None:
        from repro.core.graph import CheckpointGraph
        from repro.core.replay import ReplayEngine

        store = _open_store_strict(args.store, err, prog="repro plan")
        if store is None:
            return 2
        try:
            graph = CheckpointGraph.from_store(store)
            engine = ReplayEngine(graph, observer=observer)
            node_id = args.at if args.at is not None else graph.head_id
            if node_id not in graph:
                err.write(f"repro plan: no checkpoint {node_id!r} in store\n")
                return 2
            targets = (
                [name.strip() for name in args.targets.split(",") if name.strip()]
                if args.targets
                else sorted(graph.get(node_id).state.names())
            )
            plan, _ = engine.plan_for(targets, node_id)
        finally:
            store.close()
    else:
        try:
            with open(args.path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            err.write(f"repro plan: cannot read {args.path}: {exc}\n")
            return 2
        sources = split_script_cells(source)
        dataflow = NotebookDataflowGraph.from_sources(
            sources, labels=[f"{args.path}[{i}]" for i in range(len(sources))]
        )
        at_index = int(args.at) if args.at is not None else len(sources) - 1
        targets = (
            [name.strip() for name in args.targets.split(",") if name.strip()]
            if args.targets
            else [
                name
                for name in dataflow.live_names(at_index)
                if not is_builtin_name(name)
            ]
        )
        plan = ReplayPlanner(dataflow).plan(targets, at_index)

    if args.format_ == "json":
        import json

        out.write(json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        out.write(plan.format() + "\n")
    if observer is not None:
        observer.tracer.write_chrome_trace(args.trace_out)
    if args.strict and (not plan.is_complete or not plan.is_safe):
        return 1
    return 0


def stats_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro stats`` — deterministic storage accounting over a store.

    Reads a durable checkpoint database and prints the ``store.*``
    metrics registry computed from its contents (node count, payload
    byte histogram, tombstones, version-reuse dedup hits, and the
    incremental-vs-monolithic size comparison). Output is byte-stable
    for a given store — it is golden-tested — because the registry only
    holds quantities that are a pure function of what was written, never
    wall-clock measurements (DESIGN.md §11).
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Deterministic checkpoint-store metrics.",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        required=True,
        help="durable SQLite checkpoint database to account",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    args = parser.parse_args(argv)

    from repro.obs.report import (
        per_session_stats,
        registry_from_store,
        render_store_stats,
        stats_as_dict,
    )

    store = _open_store_strict(args.store, err, prog="repro stats")
    if store is None:
        return 2
    try:
        registry = registry_from_store(store)
        breakdown = per_session_stats(store)
        own_session = getattr(store, "session_id", None)
    finally:
        store.close()
    # The per-session section only appears on genuinely multi-session
    # stores — a single-session store renders exactly as before (the
    # golden-tested single-session output stays byte-identical).
    multi_session = any(sid != own_session for sid in breakdown)
    if args.format_ == "json":
        import json

        payload = stats_as_dict(registry)
        if multi_session:
            payload["store.sessions"] = breakdown
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        text = render_store_stats(registry)
        if multi_session:
            lines = [text, "per-session:"]
            for sid, row in breakdown.items():
                lines.append(
                    f"  {sid}  commits={row['commits']} "
                    f"payloads={row['payloads_stored']} "
                    f"tombstones={row['tombstones']} "
                    f"bytes={row['bytes_total']}"
                )
            text = "\n".join(lines)
        out.write(text + "\n")
    return 0


def fuzz_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro fuzz`` — adversarial fuzzing and concurrent soak runs.

    Default mode generates ``--iterations`` seeded programs (seeds
    ``--seed .. --seed+N-1``) from the chosen grammar profile and runs
    each through the checkout-equals-reexecution differential oracle.
    Stdout is deterministic for a given (seed, cells, profile,
    iterations): per-iteration verdict lines plus a summary, with no
    wall-clock content — ``repro fuzz --seed S`` is byte-reproducible
    across processes. Exit 0 when clean, 1 when any divergence was
    found, 2 on usage errors.

    ``--minimize`` shrinks every failing program with ddmin and writes a
    ready-to-commit pinned-seed pytest file per failure into
    ``--emit-dir`` (default ``tests/regressions``).

    ``--soak N`` switches to the concurrent soak driver: N seeded
    sessions in parallel threads against independent stores with fault
    plans active; the aggregate latency/growth report is written as JSON
    to ``--out`` (stdout with ``--format json`` otherwise).
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    from repro.fuzz import PROFILES

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Adversarial fuzzing against the checkout-equals-"
        "reexecution oracle, and concurrent-session soak runs.",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed (default 0)")
    parser.add_argument(
        "--iterations", type=int, default=1, help="consecutive seeds to run"
    )
    parser.add_argument(
        "--cells", type=int, default=20, help="cells per generated program"
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="grammar weight profile",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="time_budget",
        help="stop starting new iterations after this many seconds",
    )
    parser.add_argument(
        "--minimize",
        action="store_true",
        help="ddmin-shrink failing programs and emit pinned regression tests",
    )
    parser.add_argument(
        "--emit-dir",
        default="tests/regressions",
        dest="emit_dir",
        metavar="DIR",
        help="directory for emitted regression tests (with --minimize)",
    )
    parser.add_argument(
        "--print-program",
        action="store_true",
        dest="print_program",
        help="print each generated program's cell text",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    parser.add_argument(
        "--soak",
        type=int,
        default=None,
        metavar="N",
        help="run the concurrent soak driver with N sessions instead",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the soak report JSON here (soak mode)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        dest="store_dir",
        metavar="DIR",
        help="keep per-session soak stores here instead of a temp dir",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="soak the fleet through one shared store behind the "
        "session manager's write-ahead commit queue (soak mode)",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        dest="no_faults",
        help="disable fault injection (soak mode; a healthy baseline "
        "run for SLO gating)",
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="SLO spec to judge the soak against (default: shipped "
        "fleet spec; soak mode)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        dest="events_out",
        metavar="FILE",
        help="write the service soak's event log as JSONL here "
        "(replayable by `repro health --events`)",
    )
    args = parser.parse_args(argv)
    if args.soak is not None and args.minimize:
        err.write(
            "repro fuzz: --soak and --minimize are mutually exclusive "
            "(the soak driver has no single failing program to shrink)\n"
        )
        return 2
    if args.iterations < 1:
        err.write("repro fuzz: --iterations must be >= 1\n")
        return 2

    if args.soak is not None:
        import json

        from repro.fuzz import FuzzConfig, SoakConfig, run_soak

        try:
            soak_config = SoakConfig(
                sessions=args.soak,
                cells=args.cells,
                seed=args.seed,
                store_dir=args.store_dir,
                service=args.service,
                faults=not args.no_faults,
                slo=args.slo,
                events_out=args.events_out,
                grammar=FuzzConfig(cells=1, **PROFILES[args.profile]),
            )
        except ValueError as exc:
            err.write(f"repro fuzz: {exc}\n")
            return 2
        from repro.obs.health import SLOError

        try:
            result = run_soak(soak_config)
        except (SLOError, OSError) as exc:
            err.write(f"repro fuzz: {exc}\n")
            return 2
        rendered = json.dumps(result, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
        if args.format_ == "json" and not args.out:
            out.write(rendered + "\n")
        else:
            commit = result["commit_latency"]
            checkout = result["checkout_latency"]
            faults_fired = result["faults"]["fired"]
            if "service" in result:
                # Service mode counts faults at the shared store, not
                # per worker.
                faults_fired = result["service"]["faults_fired"]
            out.write(
                f"soak: {result['sessions']} session(s), "
                f"{result['commits']} commit(s), "
                f"commit p50/p95/p99 {commit['p50_ms']}/{commit['p95_ms']}/"
                f"{commit['p99_ms']} ms, "
                f"checkout p50/p95/p99 {checkout['p50_ms']}/{checkout['p95_ms']}/"
                f"{checkout['p99_ms']} ms, "
                f"{result['store_growth']['total_file_bytes']} store byte(s), "
                f"{faults_fired} fault(s), "
                f"{result['oracle']['failures']}/{result['oracle']['checks']} "
                f"oracle failure(s)\n"
            )
            if "health" in result:
                firing = result["health"]["firing"]
                out.write(
                    "soak: slo "
                    + (
                        f"FIRING: {', '.join(firing)}"
                        if firing
                        else f"ok ({result['health']['spec']})"
                    )
                    + "\n"
                )
            if args.out:
                out.write(f"soak: report written to {args.out}\n")
        failed = (
            result["oracle"]["failures"] > 0
            or result["worker_errors"]
        )
        return 1 if failed else 0

    import time as _time

    from repro.fuzz import (
        ProgramGenerator,
        profile as make_profile,
        run_program_oracle,
        shrink_program,
        emit_regression_test,
    )

    try:
        config = make_profile(args.profile, cells=args.cells)
    except ValueError as exc:
        err.write(f"repro fuzz: {exc}\n")
        return 2
    generator = ProgramGenerator(config)
    started = _time.monotonic()
    records = []
    ran = 0
    for seed in range(args.seed, args.seed + args.iterations):
        if (
            args.time_budget is not None
            and ran > 0
            and _time.monotonic() - started >= args.time_budget
        ):
            err.write(
                f"repro fuzz: time budget exhausted after {ran} iteration(s)\n"
            )
            break
        program = generator.generate(seed)
        report = run_program_oracle(program)
        ran += 1
        records.append((program, report))
        if args.format_ == "text":
            if args.print_program:
                out.write(f"# seed {seed}\n{program.text}\n# ===\n")
            verdict = "ok" if report.ok else (
                "DIVERGED: " + "; ".join(d.describe() for d in report.divergences)
            )
            out.write(
                f"seed {seed} cells {len(program.cells)} "
                f"fingerprint {program.fingerprint()[:12]} {verdict}\n"
            )

    failures = [(p, r) for p, r in records if not r.ok]
    emitted = []
    if args.minimize and failures:
        for program, report in failures:
            kinds = sorted({d.kind for d in report.divergences})
            minimized = shrink_program(program, kind=kinds[0] if kinds else None)
            path = os.path.join(
                args.emit_dir, f"test_fuzz_seed_{program.seed}.py"
            )
            emit_regression_test(
                minimized,
                seed=program.seed,
                path=path,
                original_cells=len(program.cells),
                config=program.config,
                origin=f"repro fuzz --profile {args.profile}",
            )
            emitted.append(path)
            out.write(
                f"minimized seed {program.seed}: {len(program.cells)} -> "
                f"{len(minimized)} cell(s), pinned at {path}\n"
            )

    if args.format_ == "json":
        import json

        payload = {
            "profile": args.profile,
            "cells": args.cells,
            "first_seed": args.seed,
            "iterations_requested": args.iterations,
            "iterations_run": ran,
            "divergence_count": sum(len(r.divergences) for _, r in records),
            "results": [
                {
                    "seed": p.seed,
                    "fingerprint": p.fingerprint(),
                    "ok": r.ok,
                    "divergences": [d.describe() for d in r.divergences],
                }
                for p, r in records
            ],
            "regressions_emitted": emitted,
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        out.write(
            f"fuzz: {ran} iteration(s), {len(failures)} failing program(s), "
            f"{sum(len(r.divergences) for _, r in records)} divergence(s)\n"
        )
    return 1 if failures else 0


def sessions_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro sessions`` — inspect and reattach to a multi-session store.

    One durable database can hold many sessions (DESIGN.md §13), each a
    row in the ``sessions`` registry with its own checkpoint namespace.
    ``list`` shows the registry (``--status`` filters, ``--json`` for
    machines); ``resume`` reattaches a REPL to one session's history —
    the blind reconnect: Friday's state, Monday's terminal; ``rename``
    migrates a session to a new notebook path without touching history.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro sessions",
        description="Multi-session checkpoint store registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="show the session registry")
    list_parser.add_argument(
        "--store", metavar="PATH", required=True,
        help="durable SQLite checkpoint database",
    )
    list_parser.add_argument(
        "--status", choices=("active", "detached"), default=None,
        help="only sessions in this registry state",
    )
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    resume_parser = sub.add_parser(
        "resume", help="reattach a REPL to one session's history"
    )
    resume_parser.add_argument(
        "--store", metavar="PATH", required=True,
        help="durable SQLite checkpoint database",
    )
    resume_parser.add_argument("session_id", help="session to resume")

    rename_parser = sub.add_parser(
        "rename", help="migrate a session to a new notebook path"
    )
    rename_parser.add_argument(
        "--store", metavar="PATH", required=True,
        help="durable SQLite checkpoint database",
    )
    rename_parser.add_argument("session_id", help="session to rename")
    rename_parser.add_argument("notebook_path", help="new notebook path")

    args = parser.parse_args(argv)

    store = _open_store_strict(args.store, err, prog="repro sessions")
    if store is None:
        return 2

    if args.command == "list":
        try:
            records = store.list_sessions()
        finally:
            store.close()
        # Opening a store handle registers its own session; hide that
        # freshly minted empty row so a read-only listing shows only
        # sessions that actually hold history or were named on purpose.
        records = [
            r
            for r in records
            if not (
                r.session_id == store.session_id
                and r.checkpoints == 0
                and r.notebook_path is None
            )
        ]
        if args.status is not None:
            records = [r for r in records if r.status == args.status]
        if args.json:
            import json

            out.write(
                json.dumps(
                    [
                        {
                            "session_id": r.session_id,
                            "notebook_path": r.notebook_path,
                            "status": r.status,
                            "checkpoints": r.checkpoints,
                        }
                        for r in records
                    ],
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        elif not records:
            out.write("no sessions\n")
        else:
            for r in records:
                path = r.notebook_path if r.notebook_path else "-"
                out.write(
                    f"{r.session_id}  {r.status:<8}  "
                    f"{r.checkpoints} checkpoint(s)  {path}\n"
                )
        return 0

    if args.command == "rename":
        try:
            if not store.has_session(args.session_id):
                err.write(
                    f"repro sessions: unknown session: {args.session_id}\n"
                )
                return 2
            store.rename_session(args.session_id, args.notebook_path)
        finally:
            store.close()
        out.write(f"renamed {args.session_id} -> {args.notebook_path}\n")
        return 0

    # resume: bind a REPL to the session's namespaced view. The view
    # shares the root handle's backend, so closing the root closes both.
    if not store.has_session(args.session_id):
        known = ", ".join(r.session_id for r in store.list_sessions()) or "none"
        err.write(
            f"repro sessions: unknown session: {args.session_id} "
            f"(known: {known})\n"
        )
        store.close()
        return 2
    view = store.for_session(args.session_id)
    try:
        repl = KishuRepl(stdout=out, store=view)
        store.set_session_status(args.session_id, "active")
        try:
            repl.run()
        finally:
            store.set_session_status(args.session_id, "detached")
    finally:
        store.close()
    return 0


def health_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro health`` — judge a fleet against a declarative SLO spec.

    Two evidence sources, combinable: ``--store`` accounts the durable
    multi-session store (totals plus per-session breakdown), and
    ``--events`` replays an exported service event log through the
    multi-window burn-rate evaluator — each event's ``seq`` is the
    logical clock, so the alert sequence is a pure function of (event
    stream, SLO spec) and therefore byte-stable (DESIGN.md §16).

    ``--strict`` is the CI gate: exit 1 if any alert *fired* at any
    point of the replay (a later resolve does not un-ring the bell),
    0 on a clean run, 2 on usage errors. ``--format prom`` renders the
    store registry in Prometheus text exposition format for scrapers.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro health",
        description="Fleet SLO evaluation over a store and/or event log.",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="durable SQLite checkpoint database to account",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="service event log (JSONL, from `repro fuzz --soak --service "
        "--events-out`) to replay through the burn-rate evaluator",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="SLO spec (JSON/TOML; default: the shipped fleet spec)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        dest="format_",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any alert fired (CI gate)",
    )
    args = parser.parse_args(argv)
    if args.store is None and args.events is None:
        err.write("repro health: need --store and/or --events\n")
        return 2

    from repro.obs.health import SLOError, SLOSpec, default_spec, replay_events

    try:
        spec = (
            SLOSpec.from_file(args.slo) if args.slo is not None else default_spec()
        )
    except (SLOError, OSError) as exc:
        err.write(f"repro health: {exc}\n")
        return 2

    report: Dict[str, object] = {
        "spec": spec.name,
        "fingerprint": spec.fingerprint(),
        "slo_source": spec.source,
    }

    registry = None
    if args.store is not None:
        from repro.obs.report import (
            per_session_stats,
            registry_from_store,
            stats_as_dict,
        )

        store = _open_store_strict(args.store, err, prog="repro health")
        if store is None:
            return 2
        try:
            registry = registry_from_store(store)
            breakdown = per_session_stats(store)
        finally:
            store.close()
        report["store"] = stats_as_dict(registry)
        report["store_sessions"] = breakdown

    fired_count = 0
    if args.events is not None:
        from repro.obs import EventLog

        try:
            records = EventLog.read_jsonl(args.events)
        except OSError as exc:
            err.write(f"repro health: {exc}\n")
            return 2
        replay = replay_events(spec, records)
        report["replay"] = replay
        fired_count = sum(
            1 for alert in replay["alerts"] if alert["type"] == "slo_alert_fired"
        )
    report["alerts_fired"] = fired_count
    report["ok"] = fired_count == 0

    if args.format_ == "prom":
        if registry is None:
            err.write("repro health: --format prom needs --store\n")
            return 2
        from repro.obs.promexport import render_prometheus

        out.write(render_prometheus(registry))
    elif args.format_ == "json":
        import json

        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(f"health: spec {spec.name} ({report['fingerprint']})\n")
        if "store" in report:
            store_stats = report["store"]
            out.write(
                f"store: {store_stats['store.nodes']} commit(s), "
                f"{store_stats['store.bytes_total']} byte(s), "
                f"{len(report['store_sessions'])} session(s) with history\n"  # type: ignore[arg-type]
            )
        if "replay" in report:
            replay = report["replay"]  # type: ignore[assignment]
            out.write(
                f"events: {replay['events']} replayed, "  # type: ignore[index]
                f"{fired_count} alert(s) fired\n"
            )
            for alert in replay["alerts"]:  # type: ignore[index]
                verb = (
                    "FIRED"
                    if alert["type"] == "slo_alert_fired"
                    else "resolved"
                )
                out.write(
                    f"  [t={alert['at']:g}] {verb} {alert['slo']} "
                    f"({alert['severity']}): {alert['reason']}\n"
                )
            firing_now = replay["firing"]  # type: ignore[index]
            if firing_now:
                out.write(f"still firing: {', '.join(firing_now)}\n")
        out.write("health: " + ("OK" if report["ok"] else "ALERTS FIRED") + "\n")
    if args.strict and not report["ok"]:
        return 1
    return 0


def _top_snapshot(path: str) -> Dict[str, object]:
    """One lock-free frame of a (possibly live) multi-session store.

    Uses a read-only SQLite URI connection on purpose: the service
    process holds the advisory ``.lock`` sidecar, so the strict-open
    path would refuse with ``StoreBusyError`` — a monitor must observe
    without ever contending for the write lock.
    """
    import sqlite3

    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=0.5)
    try:
        sessions = conn.execute(
            "SELECT session_id, notebook_path, status FROM sessions"
            " ORDER BY session_id"
        ).fetchall()
        commits = dict(
            conn.execute(
                "SELECT session_id, COUNT(*) FROM nodes"
                " WHERE committed = 1 GROUP BY session_id"
            ).fetchall()
        )
        payload_bytes = dict(
            conn.execute(
                "SELECT session_id, COALESCE(SUM(LENGTH(data)), 0)"
                " FROM payloads WHERE data IS NOT NULL GROUP BY session_id"
            ).fetchall()
        )
        tombstones = dict(
            conn.execute(
                "SELECT session_id, COUNT(*) FROM payloads"
                " WHERE data IS NULL GROUP BY session_id"
            ).fetchall()
        )
    finally:
        conn.close()
    rows = [
        {
            "session_id": session_id,
            "notebook_path": notebook_path,
            "status": status,
            "commits": commits.get(session_id, 0),
            "payload_bytes": payload_bytes.get(session_id, 0),
            "tombstones": tombstones.get(session_id, 0),
        }
        for session_id, notebook_path, status in sessions
    ]
    return {
        "rows": rows,
        "total_commits": sum(row["commits"] for row in rows),
        "total_bytes": sum(row["payload_bytes"] for row in rows),
    }


def top_main(
    argv: List[str],
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """``repro top`` — a live terminal view over a running service store.

    Polls the store read-only (never taking the cross-process write
    lock, so it works *while* the service is writing) and renders one
    frame per ``--interval`` seconds: per-session commit counts, payload
    bytes, tombstones, and registry status. ``--iterations N`` renders N
    frames and exits (the scriptable/CI form); without it, runs until
    interrupted.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live per-session view over a (running) service store.",
    )
    parser.add_argument(
        "--store", metavar="PATH", required=True,
        help="durable SQLite checkpoint database (may be in active use)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between frames (default 2)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="render N frames then exit (default: until interrupted)",
    )
    args = parser.parse_args(argv)
    if not os.path.exists(args.store):
        err.write(f"repro top: no such store: {args.store}\n")
        return 2
    if args.interval <= 0:
        err.write("repro top: --interval must be > 0\n")
        return 2

    import sqlite3
    import time as _time

    frame = 0
    try:
        while args.iterations is None or frame < args.iterations:
            if frame:
                _time.sleep(args.interval)
            frame += 1
            try:
                snapshot = _top_snapshot(args.store)
            except sqlite3.Error as exc:
                err.write(f"repro top: {exc}\n")
                return 2
            if out.isatty():  # pragma: no cover - interactive only
                out.write("\x1b[2J\x1b[H")
            out.write(
                f"repro top — {args.store}  frame {frame}  "
                f"{snapshot['total_commits']} commit(s)  "
                f"{snapshot['total_bytes']} payload byte(s)\n"
            )
            out.write(
                f"{'SESSION':<12} {'STATUS':<9} {'COMMITS':>7} "
                f"{'BYTES':>12} {'TOMBS':>5}  NOTEBOOK\n"
            )
            for row in snapshot["rows"]:  # type: ignore[union-attr]
                notebook = row["notebook_path"] or "-"
                out.write(
                    f"{row['session_id']:<12} {row['status']:<9} "
                    f"{row['commits']:>7} {row['payload_bytes']:>12} "
                    f"{row['tombstones']:>5}  {notebook}\n"
                )
            out.flush()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        out.write("\n")
    return 0


def main(argv: Optional[List[str]] = None) -> Optional[int]:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        return lint_main(arguments[1:])
    if arguments and arguments[0] == "summaries":
        return summaries_main(arguments[1:])
    if arguments and arguments[0] == "stubs":
        return stubs_main(arguments[1:])
    if arguments and arguments[0] == "plan":
        return plan_main(arguments[1:])
    if arguments and arguments[0] == "stats":
        return stats_main(arguments[1:])
    if arguments and arguments[0] == "fuzz":
        return fuzz_main(arguments[1:])
    if arguments and arguments[0] == "sessions":
        return sessions_main(arguments[1:])
    if arguments and arguments[0] == "health":
        return health_main(arguments[1:])
    if arguments and arguments[0] == "top":
        return top_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Interactive Kishu notebook session.",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="durable SQLite checkpoint database (resumed if it has history)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        dest="trace_out",
        help="on exit, export the session's lifecycle spans as Chrome "
        "trace-event JSON",
    )
    args = parser.parse_args(arguments)
    try:
        store = SQLiteCheckpointStore(args.store) if args.store else None
    except StoreBusyError as exc:
        sys.stderr.write(f"python -m repro.cli: {exc}\n")
        return 2
    repl = None
    try:
        repl = KishuRepl(store=store)
        repl.run()
    finally:
        if (
            args.trace_out
            and repl is not None
            and repl.session.observer.enabled
        ):
            repl.session.observer.tracer.write_chrome_trace(args.trace_out)
        if store is not None:
            store.close()
    return None


if __name__ == "__main__":
    sys.exit(main() or 0)
