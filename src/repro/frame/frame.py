"""A minimal columnar dataframe — the pandas ``DataFrame`` stand-in.

Columns are numpy arrays held by reference: ``frame["a"]`` returns a
:class:`~repro.frame.series.Series` aliasing the column, so a frame and a
series extracted from it form one co-variable until the column is replaced
— the exact sharing structure Kishu's Fig 3 illustrates.

The operation surface covers what the evaluation notebooks do: column
drop/assign (including the motivating un-droppable column), row filtering,
sorting, group-by aggregation, train/test splitting, and in-place updates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.frame.series import Series


class DataFrame:
    """Ordered mapping of column name to numpy array, equal lengths."""

    def __init__(self, columns: Optional[Dict[str, Union[np.ndarray, Sequence[Any]]]] = None) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        if columns:
            for name, values in columns.items():
                self[name] = values

    # -- shape ---------------------------------------------------------------------

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self), len(self._columns))

    @property
    def nbytes(self) -> int:
        return int(sum(column.nbytes for column in self._columns.values()))

    # -- column access -----------------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, str):
            return Series(self._columns[key], name=key)
        if isinstance(key, list):
            return DataFrame({name: self._columns[name] for name in key})
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return DataFrame(
                {name: column[key] for name, column in self._columns.items()}
            )
        raise KeyError(f"unsupported frame key: {key!r}")

    def __setitem__(self, name: str, values) -> None:
        if isinstance(values, Series):
            values = values.values
        array = values if isinstance(values, np.ndarray) else np.asarray(values)
        if self._columns and len(array) != len(self):
            raise ValueError(
                f"column {name!r} has length {len(array)}, frame has {len(self)} rows"
            )
        self._columns[name] = array

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self.columns != other.columns:
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in self._columns
        )

    def __repr__(self) -> str:
        return f"DataFrame({len(self)} rows x {len(self._columns)} cols)"

    # -- structural ops ---------------------------------------------------------------------

    def drop(self, column: str) -> "DataFrame":
        """Return a frame without ``column`` — the paper's motivating
        irreversible operation (remaining columns stay shared)."""
        if column not in self._columns:
            raise KeyError(f"no column {column!r}")
        return DataFrame(
            {name: values for name, values in self._columns.items() if name != column}
        )

    def drop_inplace(self, column: str) -> None:
        """Remove a column from this frame (a co-variable modification)."""
        if column not in self._columns:
            raise KeyError(f"no column {column!r}")
        del self._columns[column]

    def assign(self, **new_columns) -> "DataFrame":
        """Return a frame with additional/replaced columns; untouched
        columns remain shared with the original."""
        merged = dict(self._columns)
        for name, values in new_columns.items():
            if isinstance(values, Series):
                values = values.values
            merged[name] = values if isinstance(values, np.ndarray) else np.asarray(values)
        return DataFrame(merged)

    def copy(self) -> "DataFrame":
        return DataFrame({name: values.copy() for name, values in self._columns.items()})

    def head(self, n: int = 5) -> "DataFrame":
        return DataFrame({name: values[:n] for name, values in self._columns.items()})

    def sort_values(self, by: str, *, descending: bool = False) -> "DataFrame":
        order = np.argsort(self._columns[by], kind="stable")
        if descending:
            order = order[::-1]
        return DataFrame({name: values[order] for name, values in self._columns.items()})

    # -- computation -------------------------------------------------------------------------

    def apply_inplace(self, column: str, func: Callable[[np.ndarray], np.ndarray]) -> None:
        """Replace a column's contents via a vectorised function."""
        self._columns[column] = np.asarray(func(self._columns[column]))

    def groupby_agg(
        self, by: str, target: str, aggregate: str = "mean"
    ) -> "DataFrame":
        """Group rows by a key column and aggregate a target column."""
        keys = self._columns[by]
        values = self._columns[target]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(len(unique_keys), dtype=float)
        counts = np.zeros(len(unique_keys), dtype=int)
        np.add.at(sums, inverse, values.astype(float))
        np.add.at(counts, inverse, 1)
        if aggregate == "mean":
            aggregated = sums / np.maximum(counts, 1)
        elif aggregate == "sum":
            aggregated = sums
        elif aggregate == "count":
            aggregated = counts.astype(float)
        else:
            raise ValueError(f"unknown aggregate {aggregate!r}")
        return DataFrame({by: unique_keys, target: aggregated})

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Per-numeric-column summary statistics."""
        summary: Dict[str, Dict[str, float]] = {}
        for name, values in self._columns.items():
            if not np.issubdtype(values.dtype, np.number):
                continue
            summary[name] = {
                "mean": float(values.mean()),
                "std": float(values.std()),
                "min": float(values.min()),
                "max": float(values.max()),
            }
        return summary

    def train_test_split(
        self, test_fraction: float = 0.25, *, seed: int = 0
    ) -> Tuple["DataFrame", "DataFrame"]:
        """Random row split — the paper's canonical non-deterministic-if-
        unseeded step that makes rerun-based restoration incorrect."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(len(self) * (1.0 - test_fraction))
        train_rows, test_rows = order[:cut], order[cut:]
        train = DataFrame({n: v[train_rows] for n, v in self._columns.items()})
        test = DataFrame({n: v[test_rows] for n, v in self._columns.items()})
        return train, test

    # -- constructors -------------------------------------------------------------------------------

    @staticmethod
    def from_random(
        n_rows: int, n_cols: int, *, seed: int = 0, prefix: str = "c"
    ) -> "DataFrame":
        """Uniform random numeric frame, the workload generators' staple."""
        rng = np.random.default_rng(seed)
        return DataFrame(
            {f"{prefix}{i}": rng.random(n_rows) for i in range(n_cols)}
        )

    def column_array(self, name: str) -> np.ndarray:
        """The underlying array by reference (for alias-construction)."""
        return self._columns[name]
