"""A minimal labelled 1-D array — the pandas ``Series`` stand-in.

The evaluation notebooks manipulate dataframes and series (drops, assigns,
in-place updates); this substrate provides those operations over numpy so
workloads exercise realistic object graphs (arrays shared between frames
and series form co-variables) without requiring pandas.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np


class Series:
    """A named numpy array with an optional index.

    Supports the small op surface the workloads need: elementwise
    arithmetic, comparison masks, ``map``, in-place ``__setitem__``, and
    summary statistics. Values are held by reference, so two series built
    from the same array alias it — exactly the shared-reference structure
    co-variables must preserve.
    """

    def __init__(
        self,
        values: Union[np.ndarray, Sequence[Any]],
        name: Optional[str] = None,
        index: Optional[np.ndarray] = None,
    ) -> None:
        self.values = values if isinstance(values, np.ndarray) else np.asarray(values)
        self.name = name
        self.index = index if index is not None else np.arange(len(self.values))

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, key):
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return Series(self.values[key], name=self.name, index=self.index[key])
        return self.values[key]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, Series):
            key = key.values
        self.values[key] = value

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other):
        if isinstance(other, Series):
            return np.array_equal(self.values, other.values) and self.name == other.name
        return Series(self.values == other, name=self.name, index=self.index)

    def __repr__(self) -> str:
        return f"Series(name={self.name!r}, n={len(self)}, dtype={self.values.dtype})"

    # -- arithmetic ----------------------------------------------------------------

    def _binary(self, other, op) -> "Series":
        rhs = other.values if isinstance(other, Series) else other
        return Series(op(self.values, rhs), name=self.name, index=self.index)

    def __add__(self, other):
        return self._binary(other, np.add)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __gt__(self, other):
        return self._binary(other, np.greater)

    def __lt__(self, other):
        return self._binary(other, np.less)

    def __ge__(self, other):
        return self._binary(other, np.greater_equal)

    def __le__(self, other):
        return self._binary(other, np.less_equal)

    # -- transforms -------------------------------------------------------------------

    def map(self, func) -> "Series":
        """Elementwise transform into a new series."""
        mapped = np.asarray([func(value) for value in self.values])
        return Series(mapped, name=self.name, index=self.index)

    def fillna(self, value) -> "Series":
        filled = np.where(np.isnan(self.values.astype(float)), value, self.values)
        return Series(filled, name=self.name, index=self.index)

    def replace_inplace(self, old, new) -> None:
        """In-place value replacement (a Definition-2 node modification)."""
        self.values[self.values == old] = new

    def copy(self) -> "Series":
        return Series(self.values.copy(), name=self.name, index=self.index.copy())

    # -- reductions -----------------------------------------------------------------------

    def sum(self):
        return self.values.sum()

    def mean(self):
        return self.values.mean()

    def std(self):
        return self.values.std()

    def min(self):
        return self.values.min()

    def max(self):
        return self.values.max()

    def unique(self) -> np.ndarray:
        return np.unique(self.values)

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes) + int(self.index.nbytes)
