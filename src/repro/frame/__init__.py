"""Minimal columnar dataframe substrate (pandas stand-in for workloads)."""

from repro.frame.frame import DataFrame
from repro.frame.series import Series

__all__ = ["DataFrame", "Series"]
