"""Exception hierarchy for the Kishu reproduction.

Every error raised by this package derives from :class:`KishuError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class KishuError(Exception):
    """Base class for all errors raised by this package."""


class SerializationError(KishuError):
    """A co-variable could not be serialized by any configured pickler."""

    def __init__(self, covariable_names, cause=None):
        names = ", ".join(sorted(covariable_names))
        super().__init__(f"cannot serialize co-variable {{{names}}}: {cause!r}")
        self.covariable_names = frozenset(covariable_names)
        self.cause = cause


class DeserializationError(KishuError):
    """A stored co-variable payload failed to load back."""


class CheckpointNotFoundError(KishuError):
    """The requested checkpoint id does not exist in the checkpoint graph."""


class CheckoutError(KishuError):
    """Checkout could not complete, even after fallback recomputation."""


class RestorationError(CheckoutError):
    """Fallback recomputation failed to reconstruct a required co-variable."""


class KernelError(KishuError):
    """The simulated kernel could not execute a cell."""

    def __init__(self, message, cell_source=None, cause=None):
        super().__init__(message)
        self.cell_source = cell_source
        self.cause = cause


class StorageError(KishuError):
    """The checkpoint store rejected or lost a payload."""


class TransientStorageError(StorageError):
    """A storage operation failed in a way that may succeed on retry
    (lock contention, momentary I/O hiccup). The session retries these
    with exponential backoff before giving up."""


class PermanentStorageError(StorageError):
    """A storage operation failed in a way retrying cannot fix (disk
    full, corrupted page). The session degrades gracefully: a payload
    that cannot be written is recorded as a tombstone so checkout falls
    back to recomputation (§5.3)."""


class StoreBusyError(StorageError):
    """The on-disk checkpoint database is open in another process.

    Raised at store-open time when the sidecar advisory lock
    (``<database>.lock``) is held elsewhere. Two kernels writing one
    SQLite history interleave node sequences and corrupt the
    parent-pointer chain, so opens fail fast instead. In-process
    double-opens (the multi-session service, a reader handle next to the
    writer) share the lock through a refcounted registry and never
    raise."""


class SimulatedCrash(BaseException):
    """Process death injected at a kill-point by the fault layer.

    Deliberately *not* a :class:`KishuError` — not even an
    ``Exception`` — so no recovery or rollback code path can catch it:
    a crashed process runs nothing further, and crash-consistency tests
    must observe the store exactly as the crash left it.
    """

    def __init__(self, kill_point: str):
        super().__init__(f"simulated crash at {kill_point}")
        self.kill_point = kill_point


class SnapshotError(KishuError):
    """An OS-level (simulated) snapshot could not be taken or restored."""


class TrackingError(KishuError):
    """A state tracker failed while analysing a cell execution."""
