"""Pre/post cell-execution hook registry.

This mirrors IPython's events API (``pre_run_cell`` / ``post_run_cell``),
which is the only integration surface Kishu needs from the notebook
application (§6.1 of the paper). Hooks registered here receive an
:class:`ExecutionInfo` before the cell body runs and the finished
:class:`~repro.kernel.cells.CellResult` after it runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.kernel.cells import Cell, CellResult

PRE_RUN_CELL = "pre_run_cell"
POST_RUN_CELL = "post_run_cell"

_VALID_EVENTS = (PRE_RUN_CELL, POST_RUN_CELL)


@dataclass(frozen=True)
class ExecutionInfo:
    """Payload passed to ``pre_run_cell`` hooks, mirroring IPython's.

    Attributes:
        analysis: Result of the kernel's pre-execution cell analyzer
            (a :class:`repro.analysis.CellEffects` when Kishu installed
            its static analyzer), or ``None`` when no analyzer is set.
            Computed once per execution, before any hook fires, so every
            hook sees the same analysis of the cell about to run.
    """

    cell: Cell
    execution_count: int
    analysis: Optional[Any] = None


class HookRegistry:
    """Ordered registry of kernel event callbacks.

    Callbacks run in registration order. A callback that raises propagates
    to the caller of :meth:`trigger`: hooks are part of the system under
    test (Kishu's correctness depends on them firing), so failures must be
    loud rather than swallowed.
    """

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Callable[..., None]]] = {
            name: [] for name in _VALID_EVENTS
        }

    def register(self, event: str, callback: Callable[..., None]) -> None:
        self._check_event(event)
        self._hooks[event].append(callback)

    def unregister(self, event: str, callback: Callable[..., None]) -> None:
        self._check_event(event)
        self._hooks[event].remove(callback)

    def trigger(self, event: str, payload: Any) -> None:
        self._check_event(event)
        for callback in list(self._hooks[event]):
            callback(payload)

    def callbacks(self, event: str) -> List[Callable[..., None]]:
        self._check_event(event)
        return list(self._hooks[event])

    @staticmethod
    def _check_event(event: str) -> None:
        if event not in _VALID_EVENTS:
            raise ValueError(
                f"unknown kernel event {event!r}; expected one of {_VALID_EVENTS}"
            )
