"""Cell and cell-result datatypes for the simulated notebook kernel.

A *cell* is a unit of user code, mirroring Jupyter's cell model. A
:class:`CellResult` captures everything the kernel observed about one
execution: the execution count, wall-clock duration, captured stdout, the
value of a trailing expression (Jupyter's ``Out[n]``), and any raised error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Cell:
    """A unit of notebook code.

    Attributes:
        source: The Python source of the cell.
        cell_id: Stable identifier of the cell within its notebook. Jupyter
            assigns these per cell (not per execution); re-running a cell
            reuses its id with a new execution count.
        tags: Free-form labels. The Det-replay baseline looks for the
            ``"deterministic"`` tag (mirroring the paper's manual
            annotation), and workload specs use tags to mark cells of
            interest (e.g. ``"undo-target"``).
    """

    source: str
    cell_id: Optional[str] = None
    tags: frozenset = frozenset()

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    @staticmethod
    def make(source: str, cell_id: Optional[str] = None, *tags: str) -> "Cell":
        return Cell(source=source, cell_id=cell_id, tags=frozenset(tags))


@dataclass
class CellResult:
    """Outcome of executing one cell.

    Attributes:
        cell: The cell that was executed.
        execution_count: Kernel-global monotonically increasing counter,
            Jupyter's ``In[n]`` number.
        duration: Wall-clock seconds spent executing the cell body (excludes
            hook time, so trackers can report overhead as a fraction of it).
        stdout: Text printed by the cell.
        value: Value of the final expression statement, if any (``Out[n]``).
        error: Exception raised by the cell body, or None on success.
    """

    cell: Cell
    execution_count: int
    duration: float = 0.0
    stdout: str = ""
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_if_failed(self) -> None:
        if self.error is not None:
            raise self.error
