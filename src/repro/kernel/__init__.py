"""Simulated Jupyter kernel substrate.

Provides the three integration surfaces Kishu needs from a notebook
application: cell execution with hooks, an access-tracked user namespace,
and execution counts.
"""

from repro.kernel.cells import Cell, CellResult
from repro.kernel.events import (
    POST_RUN_CELL,
    PRE_RUN_CELL,
    ExecutionInfo,
    HookRegistry,
)
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import (
    AccessRecord,
    PatchedNamespace,
    filter_user_names,
    is_user_variable,
)

__all__ = [
    "Cell",
    "CellResult",
    "ExecutionInfo",
    "HookRegistry",
    "NotebookKernel",
    "AccessRecord",
    "PatchedNamespace",
    "filter_user_names",
    "is_user_variable",
    "PRE_RUN_CELL",
    "POST_RUN_CELL",
]
