"""In-process notebook kernel simulator.

This is the substrate standing in for the Jupyter/IPython kernel. It
reproduces the three surfaces Kishu integrates with (§6.1 of the paper):

* ``pre_run_cell`` / ``post_run_cell`` event hooks,
* the user namespace (``user_ns``), here a
  :class:`~repro.kernel.namespace.PatchedNamespace`,
* sequential cell execution with Jupyter-style execution counts and
  ``Out[n]`` values.

Cells execute via ``exec`` against the patched namespace, so all of Kishu's
access tracking, checkpointing, and in-place checkout exercise exactly the
code paths they would against a real kernel.
"""

from __future__ import annotations

import ast
import io
import time
from contextlib import redirect_stdout
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import KernelError
from repro.kernel.cells import Cell, CellResult
from repro.kernel.events import (
    POST_RUN_CELL,
    PRE_RUN_CELL,
    ExecutionInfo,
    HookRegistry,
)
from repro.kernel.namespace import PatchedNamespace
from repro.obs import NO_OBSERVER, Observer


class NotebookKernel:
    """A stateful, single-threaded notebook kernel.

    Example:
        >>> kernel = NotebookKernel()
        >>> kernel.run_cell("x = 1 + 1").ok
        True
        >>> kernel.run_cell("x").value
        2
    """

    def __init__(self, seed_namespace: Optional[Dict[str, Any]] = None) -> None:
        self.user_ns = PatchedNamespace(seed_namespace)
        self.user_ns.plant("__name__", "__main__")
        self.user_ns.plant("__builtins__", __builtins__)
        self.events = HookRegistry()
        self.execution_count = 0
        self.history: List[CellResult] = []
        #: Pre-execution cell analyzer (the static-analysis hook). When
        #: set, :meth:`run_cell` calls it with the cell source *before*
        #: ``pre_run_cell`` fires and ships the result to hooks via
        #: :attr:`~repro.kernel.events.ExecutionInfo.analysis`. Kishu
        #: installs :func:`repro.analysis.analyze_cell` here on attach.
        self.cell_analyzer: Optional[Callable[[str], Any]] = None
        #: Observability sink (DESIGN.md §11). The attached session
        #: rebinds this to its live observer; the disabled default keeps
        #: un-observed kernels overhead-free. The ``cell`` span opened in
        #: :meth:`run_cell` is the root under which the session's whole
        #: commit span tree nests (hooks fire inside it).
        self.observer: Observer = NO_OBSERVER

    # -- execution ----------------------------------------------------------

    def run_cell(self, cell: Union[str, Cell], *, raise_on_error: bool = True) -> CellResult:
        """Execute one cell and return its result.

        The last statement of the cell, if an expression, is evaluated and
        returned as ``result.value`` (Jupyter's ``Out[n]`` behaviour). Hooks
        fire around the body; their time is not billed to ``duration``.
        """
        if isinstance(cell, str):
            cell = Cell(source=cell)
        self.execution_count += 1
        with self.observer.span(
            "cell", execution_count=self.execution_count
        ) as cell_span:
            analysis: Optional[Any] = None
            if self.cell_analyzer is not None:
                with self.observer.span("cell.analyze"):
                    try:
                        analysis = self.cell_analyzer(cell.source)
                    except Exception:
                        analysis = None  # analysis must never break execution
            info = ExecutionInfo(
                cell=cell, execution_count=self.execution_count, analysis=analysis
            )
            self.events.trigger(PRE_RUN_CELL, info)

            with self.observer.span("cell.exec"):
                result = self._execute_body(cell)
            cell_span.set("ok", result.error is None)
            self.history.append(result)

            self.events.trigger(POST_RUN_CELL, result)
        if raise_on_error and result.error is not None:
            raise KernelError(
                f"cell execution {result.execution_count} failed: {result.error!r}",
                cell_source=cell.source,
                cause=result.error,
            ) from result.error
        return result

    def run_cells(self, cells, *, raise_on_error: bool = True) -> List[CellResult]:
        """Execute a sequence of cells in order."""
        return [self.run_cell(cell, raise_on_error=raise_on_error) for cell in cells]

    def _execute_body(self, cell: Cell) -> CellResult:
        result = CellResult(cell=cell, execution_count=self.execution_count)
        try:
            module = ast.parse(cell.source)
        except SyntaxError as exc:
            result.error = exc
            return result

        # Split a trailing expression so its value can be captured, like
        # IPython's interactivity="last_expr".
        trailing_expr = None
        body = module.body
        if body and isinstance(body[-1], ast.Expr):
            trailing_expr = ast.Expression(body[-1].value)
            ast.fix_missing_locations(trailing_expr)
            body = body[:-1]
        exec_module = ast.Module(body=body, type_ignores=[])
        ast.fix_missing_locations(exec_module)

        stdout = io.StringIO()
        started = time.perf_counter()
        try:
            with redirect_stdout(stdout):
                exec(compile(exec_module, "<cell>", "exec"), self.user_ns)
                if trailing_expr is not None:
                    result.value = eval(  # noqa: S307 - cell code is the workload
                        compile(trailing_expr, "<cell>", "eval"), self.user_ns
                    )
        except BaseException as exc:  # cell code may raise anything
            result.error = exc
        finally:
            result.duration = time.perf_counter() - started
            result.stdout = stdout.getvalue()
        return result

    # -- convenience --------------------------------------------------------

    def get(self, name: str, default: Any = None) -> Any:
        """Read a user variable without recording an access."""
        return self.user_ns.peek(name, default)

    def user_variables(self) -> Dict[str, Any]:
        return self.user_ns.user_items()

    @property
    def total_runtime(self) -> float:
        """Sum of cell body durations over the session."""
        return sum(result.duration for result in self.history)
