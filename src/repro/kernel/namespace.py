"""The patched user namespace (§4.3 of the paper).

Kishu patches the accessor, setter, and deletion methods of the kernel's
global namespace (Jupyter's ``user_ns``) to record which variable names each
cell execution touches. By Lemma 1 of the paper, a co-variable can only have
been updated by a cell if at least one of its member names was accessed, so
this access set is what lets the delta detector skip most of the state.

CPython executes module-level code (and ``LOAD_GLOBAL`` inside functions
defined in the cell) through the mapping protocol when the globals object is
a dict *subclass*, so overriding ``__getitem__`` / ``__setitem__`` /
``__delitem__`` here captures every name access made by cell code, including
from within user-defined functions — the property the paper's Remark in §4.3
relies on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Set

#: Names the kernel itself plants in the namespace; never reported as user
#: variables and never tracked as accesses.
KERNEL_INTERNAL_NAMES = frozenset(
    {"__builtins__", "__name__", "__doc__", "__loader__", "__spec__", "__package__"}
)


def is_user_variable(name: str) -> bool:
    """True for names that belong to the user's session state.

    Dunder names and kernel-internal names are infrastructure; single
    leading-underscore names are kept (users do create ``_tmp`` variables).
    """
    if name in KERNEL_INTERNAL_NAMES:
        return False
    return not (name.startswith("__") and name.endswith("__"))


class AccessRecord:
    """Accesses observed during one recording window (one cell execution)."""

    __slots__ = ("gets", "sets", "deletes")

    def __init__(self) -> None:
        self.gets: Set[str] = set()
        self.sets: Set[str] = set()
        self.deletes: Set[str] = set()

    @property
    def accessed(self) -> Set[str]:
        """All names touched in any way (Definition 3 of the paper)."""
        return self.gets | self.sets | self.deletes

    def merge(self, other: "AccessRecord") -> None:
        self.gets |= other.gets
        self.sets |= other.sets
        self.deletes |= other.deletes


class PatchedNamespace(dict):
    """A ``dict`` recording every get/set/delete of user variable names.

    Recording is windowed: the kernel calls :meth:`begin_recording` in its
    ``pre_run_cell`` phase and :meth:`end_recording` in ``post_run_cell``.
    Outside a window the namespace behaves as a plain dict (no overhead is
    billed to user code, matching Kishu's think-time design).
    """

    def __init__(self, initial: Dict[str, Any] = None) -> None:
        super().__init__(initial or {})
        self._record: AccessRecord = None
        self._recording = False

    # -- recording windows -------------------------------------------------

    def begin_recording(self) -> None:
        if self._recording:
            raise RuntimeError("recording window already open")
        self._record = AccessRecord()
        self._recording = True

    def end_recording(self) -> AccessRecord:
        if not self._recording:
            raise RuntimeError("no recording window open")
        record, self._record = self._record, None
        self._recording = False
        return record

    @property
    def recording(self) -> bool:
        return self._recording

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, name):
        if self._recording and isinstance(name, str) and is_user_variable(name):
            self._record.gets.add(name)
        return super().__getitem__(name)

    def __setitem__(self, name, value) -> None:
        if self._recording and isinstance(name, str) and is_user_variable(name):
            self._record.sets.add(name)
        super().__setitem__(name, value)

    def __delitem__(self, name) -> None:
        if self._recording and isinstance(name, str) and is_user_variable(name):
            self._record.deletes.add(name)
        super().__delitem__(name)

    # ``dict.get`` does not route through ``__getitem__``; cell code rarely
    # calls it on globals, but Kishu itself must not perturb recording, so we
    # provide untracked internal accessors below instead of overriding it.

    # -- untracked access for the checkpointing system ------------------------

    def peek(self, name: str, default: Any = None) -> Any:
        """Read a variable without recording an access (Kishu-internal)."""
        return dict.get(self, name, default)

    def plant(self, name: str, value: Any) -> None:
        """Write a variable without recording an access (checkout path)."""
        dict.__setitem__(self, name, value)

    def uproot(self, name: str) -> None:
        """Delete a variable without recording an access (checkout path)."""
        if dict.__contains__(self, name):
            dict.__delitem__(self, name)

    def user_names(self) -> Set[str]:
        """Names of all user variables currently in the namespace."""
        return {name for name in dict.keys(self)
                if isinstance(name, str) and is_user_variable(name)}

    def user_items(self) -> Dict[str, Any]:
        """Snapshot mapping of user variable names to their objects."""
        return {name: dict.__getitem__(self, name) for name in self.user_names()}

    def replace_user_state(self, variables: Dict[str, Any]) -> None:
        """Replace all user variables with ``variables`` (full restore)."""
        for name in list(self.user_names()):
            dict.__delitem__(self, name)
        for name, value in variables.items():
            dict.__setitem__(self, name, value)


def filter_user_names(names: Iterable[str]) -> Set[str]:
    """Drop kernel-internal and dunder names from an access set."""
    return {name for name in names if is_user_variable(name)}
