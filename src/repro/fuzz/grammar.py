"""Seeded cell-program generator: the adversarial workload grammar.

The fuzzer's programs are composed from a *weighted grammar* of the hard
constructs the analysis stack claims to handle (DESIGN.md §12):

* **create** — scalars, strings, lists, nested dicts, int sets, tuples
  wrapping mutables (the co-variable building blocks);
* **mutate** — in-place mutation of a live structure, type-dispatched
  inside the cell so any target is valid (list append/extend/reverse/
  sort, dict insert, nested append, set add);
* **alias** — aliasing chains (``b = a``) and bundles (``c = [a, b]``,
  ``d = {'ref': a}``) that merge co-variables;
* **del_rebind** — ``del x`` with the name parked for later rebinding
  by a creator cell (the delete-kill / write-revival axis of the
  dataflow graph);
* **conditional** — writes guarded by runtime-deterministic but
  statically-conditional predicates (the DEFINITE vs CONDITIONAL
  strength lattice);
* **closure** — function definitions capturing live names by reference,
  immediately called (by-value fallback serialization, replay through
  lazy function bodies);
* **generator** — generator expressions (unserializable: forces the
  tombstone / fallback-recomputation path) and a separate *consume*
  construct that drains a live generator cells later (the §5.3 lazy
  generator hazard);
* **escape** — ``globals()['..'] = ..`` and ``exec(..)`` writes that
  defeat access tracking and must escalate detection (DESIGN.md §8);
* **libsim** — simulated library handles (:mod:`repro.libsim`) with
  realistic pickle personalities, created and transformed via methods;
* **helper** — cross-cell helper functions (DESIGN.md §14): defs that
  write globals from inside the body (hidden stores the summary layer
  defers to call sites), mutate parameters, or return argument aliases;
  calls cells later (including as ``sorted`` key callbacks); and
  rebind-after-call, which invalidates the summary.

Everything is derived from ``random.Random(seed)`` plus an immutable
:class:`FuzzConfig`; no dict/set iteration order, wall clock, or
``hash()`` feeds any decision, so ``(seed, config)`` fully determines
the program text in any process under any ``PYTHONHASHSEED`` — the same
reproducibility contract as the workload fingerprints of DESIGN.md §7.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CONSTRUCTS",
    "FuzzConfig",
    "FuzzProgram",
    "ProgramGenerator",
    "PROFILES",
    "profile",
]

#: Construct families, in the fixed order weights are consumed. Order is
#: part of the reproducibility contract — never reorder entries.
CONSTRUCTS = (
    "create",
    "mutate",
    "alias",
    "del_rebind",
    "conditional",
    "closure",
    "generator",
    "consume",
    "escape",
    "libsim",
    "helper",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Immutable generator configuration; part of every program's identity.

    ``w_*`` are relative (not normalized) weights of the construct
    families. A weight of 0 removes the family from the grammar.
    """

    cells: int = 20
    #: Extra cells pre-generated for checkout-and-continue rounds.
    branch_cells: int = 6
    max_live: int = 24

    w_create: float = 10.0
    w_mutate: float = 10.0
    w_alias: float = 7.0
    w_del_rebind: float = 4.0
    w_conditional: float = 5.0
    w_closure: float = 4.0
    w_generator: float = 3.0
    w_consume: float = 3.0
    w_escape: float = 3.0
    w_libsim: float = 3.0
    w_helper: float = 4.0

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.branch_cells < 0:
            raise ValueError("branch_cells must be >= 0")
        if self.max_live < 2:
            raise ValueError("max_live must be >= 2")
        for name, weight in self.weights():
            if weight < 0:
                raise ValueError(f"{name} must be >= 0, got {weight}")
        if sum(weight for _, weight in self.weights()) <= 0:
            raise ValueError("at least one construct weight must be positive")

    def weights(self) -> List[Tuple[str, float]]:
        """(construct, weight) pairs in the canonical CONSTRUCTS order."""
        return [(name, getattr(self, f"w_{name}")) for name in CONSTRUCTS]

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe canonical form (sorted field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Named grammar profiles for the CLI (``repro fuzz --profile``).
PROFILES: Dict[str, Dict[str, float]] = {
    "default": {},
    # Escape-hatch heavy: stress escalation and the check-all fallback.
    "escape-heavy": {"w_escape": 12.0, "w_closure": 6.0, "w_consume": 4.0},
    # Pure-data programs: no escapes, no libsim — the PR 2/PR 4 core.
    "plain-data": {"w_escape": 0.0, "w_libsim": 0.0, "w_closure": 0.0,
                   "w_generator": 0.0, "w_consume": 0.0, "w_helper": 0.0},
    # Handle-heavy: pickle personalities and method-call dataflow.
    "libsim-heavy": {"w_libsim": 10.0, "w_mutate": 6.0},
    # Helper-function heavy: cross-cell defs/calls/rebinds exercising the
    # interprocedural summary layer (DESIGN.md §14) end to end.
    "func-heavy": {"w_helper": 14.0, "w_closure": 6.0, "w_mutate": 6.0,
                   "w_escape": 2.0, "w_generator": 1.0, "w_consume": 1.0,
                   "w_libsim": 1.0},
}


def profile(name: str, **overrides) -> FuzzConfig:
    """Build a :class:`FuzzConfig` from a named profile plus overrides."""
    if name not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fuzz profile {name!r} (known: {known})")
    merged = dict(PROFILES[name])
    merged.update(overrides)
    return FuzzConfig(**merged)


@dataclass(frozen=True)
class FuzzProgram:
    """One generated notebook program, reproducible from (seed, config)."""

    seed: int
    config: FuzzConfig
    cells: Tuple[str, ...]
    #: Pre-generated continuation cells for checkout-and-branch rounds.
    branch_cells: Tuple[str, ...] = ()
    #: Construct family of each main cell, aligned with :attr:`cells`.
    kinds: Tuple[str, ...] = ()

    @property
    def text(self) -> str:
        """The full program as one string (cells joined by separators)."""
        return "\n# ---\n".join(self.cells)

    def fingerprint(self) -> str:
        """Process-stable identity of the program text."""
        digest = hashlib.sha256()
        for cell in self.cells + ("<branch>",) + self.branch_cells:
            digest.update(cell.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()


class _Namespace:
    """Deterministic bookkeeping of live names during generation.

    Everything is a list scanned in insertion order — sets or dicts keyed
    by name would put iteration order (and thus the emitted program) at
    the mercy of string hashing.
    """

    def __init__(self) -> None:
        self.data: List[str] = []  # plain values / structures
        self.generators: List[str] = []  # un-consumed generator objects
        self.handles: List[str] = []  # libsim handles
        self.dead: List[str] = []  # deleted, available for rebind
        #: Live helper functions: (name, behavior, written-global) where
        #: behavior is "global" | "mutate" | "alias".
        self.helpers: List[Tuple[str, str, str]] = []
        self._counter = 0

    def fresh(self, prefix: str, rng: random.Random) -> str:
        """A new name — reusing a dead one half the time (del + rebind)."""
        if self.dead and rng.random() < 0.5:
            name = self.dead.pop(0)
            return name
        self._counter += 1
        return f"{prefix}{self._counter}"

    @property
    def live(self) -> List[str]:
        return self.data + self.generators + self.handles

    def forget(self, name: str) -> None:
        for bucket in (self.data, self.generators, self.handles):
            if name in bucket:
                bucket.remove(name)


class ProgramGenerator:
    """Composes random notebook programs from the weighted grammar."""

    def __init__(self, config: Optional[FuzzConfig] = None) -> None:
        self.config = config if config is not None else FuzzConfig()

    def generate(self, seed: int) -> FuzzProgram:
        rng = random.Random(seed)
        ns = _Namespace()
        cells: List[str] = []
        kinds: List[str] = []
        for index in range(self.config.cells):
            kind, cell = self._next_cell(rng, ns, index)
            cells.append(cell)
            kinds.append(kind)
        branch: List[str] = []
        for index in range(self.config.branch_cells):
            _, cell = self._next_cell(rng, ns, self.config.cells + index)
            branch.append(cell)
        return FuzzProgram(
            seed=seed,
            config=self.config,
            cells=tuple(cells),
            branch_cells=tuple(branch),
            kinds=tuple(kinds),
        )

    # -- construct selection ---------------------------------------------------

    def _next_cell(
        self, rng: random.Random, ns: _Namespace, n: int
    ) -> Tuple[str, str]:
        names, weights = zip(*self.config.weights())
        kind = rng.choices(names, weights=weights, k=1)[0]
        # Re-route infeasible picks deterministically rather than skipping
        # the cell: every program has exactly config.cells cells.
        if kind in ("mutate", "alias", "del_rebind", "conditional", "closure") and not ns.data:
            kind = "create"
        if kind == "consume" and not ns.generators:
            kind = "generator"
        if kind == "del_rebind" and len(ns.live) <= 2:
            kind = "create"
        if kind != "create" and len(ns.live) >= self.config.max_live:
            # Bound namespace growth: prefer mutation over creation.
            if kind in ("alias", "generator", "libsim", "escape") and ns.data:
                kind = "mutate"
        builder = getattr(self, f"_gen_{kind}")
        return kind, builder(rng, ns, n)

    # -- construct builders ----------------------------------------------------
    # Each returns one cell's source. {n} is the cell ordinal — the only
    # numeric entropy inside cell text, so text is trivially reproducible.

    def _gen_create(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        name = ns.fresh("v", rng)
        templates = (
            "{a} = [{n}, {n} + 1, {n} + 2]",
            "{a} = {{'k{n}': {n}, 'nested': [{n}, [{n} + 1]]}}",
            "{a} = list(range({n} % 7 + 1))",
            "{a} = {n} * 3 + 1",
            "{a} = 'text-{n}-' * ({n} % 3 + 1)",
            "{a} = ({n}, 'tag-{n}', [{n}, {n} + 1])",
            "{a} = {{{n} % 5, {n} % 3 + 7, {n} + 11}}",
        )
        cell = rng.choice(templates).format(a=name, n=n)
        ns.data.append(name)
        return cell

    def _gen_mutate(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.data)
        list_ops = (
            "{a}.append({n})",
            "{a}.extend([{n}, {n} + 1])",
            "{a}.insert(0, {n})",
            "{a}.reverse()",
            "{a}.sort(key=repr)",
        )
        dict_ops = (
            "{a}['k{n}'] = {n}",
            "{a}.setdefault('nested', []).append({n})",
        )
        list_op = rng.choice(list_ops).format(a=target, n=n)
        dict_op = rng.choice(dict_ops).format(a=target, n=n)
        return (
            f"if isinstance({target}, list):\n"
            f"    {list_op}\n"
            f"elif isinstance({target}, dict):\n"
            f"    {dict_op}\n"
            f"elif isinstance({target}, set):\n"
            f"    {target}.add({n} % 13)\n"
            f"else:\n"
            f"    {target} = {n}"
        )

    def _gen_alias(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.data)
        fresh = ns.fresh("v", rng)
        roll = rng.random()
        if roll < 0.4:
            # Direct alias: the purest co-variable merge.
            cell = f"{fresh} = {target}"
        elif roll < 0.7:
            other = rng.choice(ns.data)
            cell = (
                f"if isinstance({target}, (list, dict, set)):\n"
                f"    {fresh} = [{target}, {other}]\n"
                f"else:\n"
                f"    {fresh} = [{target}, {n}]"
            )
        else:
            cell = f"{fresh} = {{'ref': {target}, 'tag': {n}}}"
        ns.data.append(fresh)
        return cell

    def _gen_del_rebind(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.data)
        ns.forget(target)
        ns.dead.append(target)
        return f"del {target}"

    def _gen_conditional(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.data)
        fresh = ns.fresh("v", rng)
        ns.data.append(fresh)
        if rng.random() < 0.5:
            # Conditional *creation*: the write is CONDITIONAL statically
            # but both arms bind, so the name is always live at runtime.
            return (
                f"if len(repr({target})) % 2 == 0:\n"
                f"    {fresh} = [{n}, len(repr({target}))]\n"
                f"else:\n"
                f"    {fresh} = [{n} + 1]"
            )
        # Conditional in-place mutation through a guard.
        return (
            f"{fresh} = [{n}]\n"
            f"if isinstance({target}, list) and len({target}) % 2 == 1:\n"
            f"    {fresh}.append(len({target}))"
        )

    def _gen_closure(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.data)
        func = f"f{n}"
        fresh = ns.fresh("v", rng)
        ns.data.append(fresh)
        if rng.random() < 0.5:
            # Read-capture: the body reads a global at call time.
            return (
                f"def {func}(x={n}):\n"
                f"    return (x, repr({target}))\n"
                f"{fresh} = [{func}()[0], len({func}()[1])]"
            )
        # Mutate-capture: the body mutates a live structure when called.
        return (
            f"def {func}():\n"
            f"    if isinstance({target}, list):\n"
            f"        {target}.append({n})\n"
            f"    return len(repr({target}))\n"
            f"{fresh} = [{func}(), {n}]"
        )

    def _gen_generator(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        name = ns.fresh("g", rng)
        ns.generators.append(name)
        return f"{name} = (i * {n % 5 + 2} for i in range({n} % 4 + 2))"

    def _gen_consume(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        target = rng.choice(ns.generators)
        ns.generators.remove(target)
        ns.dead.append(target)
        fresh = ns.fresh("v", rng)
        ns.data.append(fresh)
        # Drain the lazy generator cells after its creation, then drop it:
        # a consumed generator is useless *and* unserializable, and keeping
        # it live would make cold-prefix states depend on consumption
        # history in ways the §5.3 recompute path is allowed to decline.
        return f"{fresh} = list({target})\ndel {target}"

    def _gen_escape(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        name = ns.fresh("e", rng)
        ns.data.append(name)
        roll = rng.random()
        if roll < 0.4:
            return f"globals()['{name}'] = [{n}, {n} + 1]"
        if roll < 0.8:
            return f"exec(\"{name} = [{n} * 2]\")"
        # Escape *mutation* of an existing structure via globals().
        target = rng.choice(ns.data)
        return (
            f"{name} = [{n}]\n"
            f"if isinstance(globals()['{target}'], list):\n"
            f"    globals()['{target}'].append({n})"
        )

    def _gen_helper(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        roll = rng.random()
        if ns.helpers and roll < 0.40 and ns.data:
            return self._helper_call(rng, ns, n)
        if ns.helpers and roll < 0.55:
            # Rebind-after-call: the summary is invalidated and every
            # later call falls back to the conservative analysis.
            func, _, _ = ns.helpers.pop(rng.randrange(len(ns.helpers)))
            ns.data.append(func)
            return f"{func} = [{n}, 'rebound']"
        return self._helper_define(rng, ns, n)

    def _helper_define(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        # "uf" prefix: never collides with the counter-based v*/g*/h*/e*
        # names (f* is taken by the closure construct's cell-local defs).
        func = f"uf{n}"
        roll = rng.random()
        if roll < 0.35:
            # Hidden global store: STORE_GLOBAL from the body is invisible
            # to tracking; the summary layer defers the escape to the call
            # sites instead of escalating this def cell.
            target = ns.fresh("w", rng)
            ns.helpers.append((func, "global", target))
            return (
                f"def {func}(n):\n"
                f"    global {target}\n"
                f"    {target} = [n, n + 1]\n"
                f"    return n % 7"
            )
        if roll < 0.7:
            ns.helpers.append((func, "mutate", ""))
            return (
                f"def {func}(xs, n):\n"
                f"    if isinstance(xs, list):\n"
                f"        xs.append(n)\n"
                f"    elif isinstance(xs, dict):\n"
                f"        xs['h{n}'] = n\n"
                f"    return len(repr(xs))"
            )
        ns.helpers.append((func, "alias", ""))
        return (
            f"def {func}(xs):\n"
            f"    return xs"
        )

    def _helper_call(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        func, behavior, written = ns.helpers[rng.randrange(len(ns.helpers))]
        fresh = ns.fresh("v", rng)
        if behavior == "global":
            cell = f"{fresh} = [{func}({n}), {n}]"
            ns.data.append(fresh)
            if written not in ns.data:
                # The hidden store just created (or rebound) this global.
                ns.data.append(written)
                if written in ns.dead:
                    ns.dead.remove(written)
            return cell
        if behavior == "mutate":
            target = rng.choice(ns.data)
            ns.data.append(fresh)
            return f"{fresh} = [{func}({target}, {n}), {n}]"
        # Alias-returning helper: direct call merges co-variables; the
        # callback form loads the helper outside a call position.
        if rng.random() < 0.35:
            ns.data.append(fresh)
            return f"{fresh} = sorted([{n} % 5, {n} % 3 + 1], key={func})"
        target = rng.choice(ns.data)
        ns.data.append(fresh)
        return f"{fresh} = {func}({target})"

    def _gen_libsim(self, rng: random.Random, ns: _Namespace, n: int) -> str:
        roll = rng.random()
        if not ns.handles or roll < 0.5:
            name = ns.fresh("h", rng)
            ns.handles.append(name)
            seed = n % 17
            if roll < 0.25:
                return (
                    "import repro.libsim.data_analysis as _simda\n"
                    f"{name} = _simda.SimDataFrame(n_rows=6, n_cols=3, seed={seed})"
                )
            return (
                "import repro.libsim.data_analysis as _simda\n"
                f"{name} = _simda.SimSeries(n=8, seed={seed})"
            )
        target = rng.choice(ns.handles)
        if roll < 0.68:
            # Stub-covered pure read: with stubs on, this cell must NOT
            # mark the handle as a mutator (the PR 9 de-escalation win).
            fresh = ns.fresh("v", rng)
            ns.data.append(fresh)
            return (
                f"if hasattr({target}, 'mean_of'):\n"
                f"    {fresh} = [round({target}.mean_of('c0'), 9), {n}]\n"
                f"else:\n"
                f"    {fresh} = [round(float({target}.series.values.sum()), 9), {n}]"
            )
        if roll < 0.84:
            # Stub-covered in-place mutator (SimSeries.standardize is
            # stubbed "mutates"): the oracle checks the mutation is
            # attributed to this cell's delta under stubs too. The
            # SimDataFrame arm mutates the underlying frame directly so
            # both handle kinds change state deterministically.
            return (
                f"if hasattr({target}, 'standardize'):\n"
                f"    {target}.standardize()\n"
                f"else:\n"
                f"    {target}.frame.apply_inplace('c0', lambda _v: _v + {n % 7})"
            )
        # Stub-covered pure clone (SimDataFrame.drop_column returns a
        # fresh SimDataFrame and must not be attributed to the receiver).
        fresh = ns.fresh("h", rng)
        ns.handles.append(fresh)
        return (
            f"if hasattr({target}, 'drop_column'):\n"
            f"    {fresh} = {target}.drop_column('c1')\n"
            f"else:\n"
            f"    {fresh} = {target}"
        )
