"""Adversarial workload fuzzer and concurrent-session soak harness.

``repro.fuzz`` turns the checkout-equals-reexecution guarantee into a
property checked against programs nobody hand-wrote (DESIGN.md §12):

* :mod:`repro.fuzz.grammar` — seeded cell-program generator over a
  weighted grammar of hard constructs (aliasing, in-place mutation,
  del+rebind, conditional writes, closures, generators, escapes,
  libsim handles); ``(seed, config)`` fully determines the program.
* :mod:`repro.fuzz.oracle` — differential oracle: replay through a
  session, check out every commit, compare canonical state against a
  cold re-execution; cross-check the PR 5 telemetry invariants.
* :mod:`repro.fuzz.shrink` — ddmin minimizer and the regression-test
  emitter that turns any divergence into a pinned-seed test file.
* :mod:`repro.fuzz.soak` — N concurrent seeded sessions over
  independent stores with fault plans active; p50/p95/p99 commit and
  checkout latency plus store growth (``BENCH_pr6_soak.json``).

CLI: ``repro fuzz --seed S --cells N --iterations K [--minimize]``.
"""

from repro.fuzz.grammar import (
    CONSTRUCTS,
    PROFILES,
    FuzzConfig,
    FuzzProgram,
    ProgramGenerator,
    profile,
)
from repro.fuzz.oracle import (
    Divergence,
    OracleReport,
    canonical_state,
    run_cells_oracle,
    run_fuzz_iteration,
    run_program_oracle,
)
from repro.fuzz.shrink import emit_regression_test, shrink_cells, shrink_program
from repro.fuzz.soak import SoakConfig, SoakSessionResult, percentile, run_soak

__all__ = [
    "CONSTRUCTS",
    "PROFILES",
    "FuzzConfig",
    "FuzzProgram",
    "ProgramGenerator",
    "profile",
    "Divergence",
    "OracleReport",
    "canonical_state",
    "run_cells_oracle",
    "run_fuzz_iteration",
    "run_program_oracle",
    "emit_regression_test",
    "shrink_cells",
    "shrink_program",
    "SoakConfig",
    "SoakSessionResult",
    "percentile",
    "run_soak",
]
