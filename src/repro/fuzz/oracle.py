"""Differential oracle: checkout must equal a cold re-execution.

The Kishu guarantee under test (§5.3 of the paper): checking out any
commit reproduces exactly the state a cold re-execution of that commit's
cell history would produce — values, dict order, element types, *and*
the sharing structure of mutable objects.

The oracle runs one generated program three ways and cross-checks:

1. **Tracked run** — through a :class:`KishuSession` with auto
   checkpointing, recording the canonical state after every commit
   (the *ground truth* of what the session actually saw);
2. **Cold run** — the same cells in a fresh kernel with no session
   attached, recording the canonical state after every cell (what
   re-execution from scratch produces);
3. **Checkouts** — every commit is checked out (in a seed-shuffled
   order, so the incremental walks of §5.2 cross history arbitrarily)
   and the restored canonical state is compared against the cold run's
   state at that point.

Divergence anywhere is collected, never raised — the fuzzer's driver
decides whether to shrink, report, or fail. On top of state equality the
oracle cross-checks the PR 5 telemetry invariants: every cross-validator
escalation must carry reasons, every replay-planner decline must carry a
reason, and replayed cells must report zero Lemma-1 validation
mismatches.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.graph import ROOT_ID
from repro.core.session import KishuSession
from repro.frame import DataFrame, Series
from repro.kernel.kernel import NotebookKernel
from repro.obs import EventType

from repro.fuzz.grammar import FuzzConfig, FuzzProgram, ProgramGenerator

__all__ = [
    "Divergence",
    "OracleReport",
    "canonical_state",
    "run_cells_oracle",
    "run_program_oracle",
    "run_fuzz_iteration",
]

#: CPython reprs of address-identified objects (functions, generators,
#: object()) embed ``0x7f..``; restoration legitimately changes the
#: address, so canonicalization masks it.
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _masked_repr(obj: Any) -> str:
    try:
        text = repr(obj)
    except Exception as exc:  # a repr that raises is itself state
        text = f"<unreprable {type(obj).__qualname__}: {type(exc).__name__}>"
    return _ADDRESS.sub("0xX", text)


def canonical_state(kernel: NotebookKernel) -> bytes:
    """Order-normalized encoding of the full user state.

    Captures every value (including dict insertion order and element
    types) and the *sharing structure of mutable objects*: shared
    mutables (lists, dicts, sets, numpy arrays, sim objects) are
    labelled by first visit, so ``a is b`` differences surface even when
    ``a == b``. Incidental identity of immutables (CPython string/int
    interning) and memory addresses inside reprs are deliberately
    ignored: restoration cannot and need not preserve them — which is
    why the encoding is ``repr`` of the canonical tuple, not a pickle:
    the pickle memo keys on object identity and would leak interning
    differences into the bytes.
    """
    items = kernel.user_variables()
    labels: Dict[int, int] = {}

    def walk(obj: Any) -> Any:
        if isinstance(obj, (list, dict, set, np.ndarray)) or _is_sim(obj):
            if id(obj) in labels:
                return ("ref", labels[id(obj)])
            labels[id(obj)] = len(labels)
            label = labels[id(obj)]
            if isinstance(obj, list):
                return ("list", label, tuple(walk(v) for v in obj))
            if isinstance(obj, set):
                return ("set", label, tuple(sorted(_masked_repr(v) for v in obj)))
            if isinstance(obj, dict):
                # repr() the keys: raw key strings would leak CPython
                # interning identity into the pickle memo and reintroduce
                # the immutable-sharing false positive.
                return (
                    "dict",
                    label,
                    tuple((repr(k), walk(v)) for k, v in obj.items()),
                )
            if isinstance(obj, np.ndarray):
                return (
                    "ndarray",
                    label,
                    obj.shape,
                    obj.dtype.str,
                    hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest(),
                )
            # Sim object: canonicalize its equality-relevant state, in
            # sorted attribute order (its __repr__ hides all state).
            state = obj._state_for_eq()
            return (
                "sim",
                type(obj).__qualname__,
                label,
                tuple((name, walk(state[name])) for name in sorted(state)),
            )
        if isinstance(obj, tuple):
            # Immutable shell, possibly wrapping mutables: walk through.
            return ("tuple", tuple(walk(v) for v in obj))
        if isinstance(obj, Series):
            return ("series", obj.name, walk(obj.values))
        if isinstance(obj, DataFrame):
            return (
                "frame",
                tuple((name, walk(obj.column_array(name))) for name in obj.columns),
            )
        return ("val", type(obj).__qualname__, _masked_repr(obj))

    canonical = tuple((name, walk(items[name])) for name in sorted(items))
    return repr(canonical).encode("utf-8")


def _is_sim(obj: Any) -> bool:
    from repro.libsim.base import SimObject

    return isinstance(obj, SimObject)


@dataclass(frozen=True)
class Divergence:
    """One oracle violation, with enough context to reproduce it."""

    kind: str  # "checkout", "nondeterminism", "telemetry", "branch"
    node_id: str
    cell_index: int
    detail: str
    seed: Optional[int] = None

    def describe(self) -> str:
        where = f"node {self.node_id} (cell {self.cell_index})"
        tag = f" seed={self.seed}" if self.seed is not None else ""
        return f"[{self.kind}]{tag} {where}: {self.detail}"


@dataclass
class OracleReport:
    """Outcome of one differential-oracle run."""

    seed: Optional[int]
    n_cells: int
    commits_checked: int = 0
    checkouts: int = 0
    branch_rounds: int = 0
    escalations: int = 0
    declines: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.ok:
            return (
                f"ok: {self.commits_checked} commits, {self.checkouts} "
                f"checkouts, {self.branch_rounds} branch rounds, "
                f"{self.escalations} escalation(s), {self.declines} decline(s)"
            )
        lines = [f"{len(self.divergences)} divergence(s):"]
        lines.extend("  " + d.describe() for d in self.divergences)
        return "\n".join(lines)


def run_cells_oracle(
    cells: List[str],
    *,
    seed: int = 0,
    branch_cells: Tuple[str, ...] = (),
    session_kwargs: Optional[Dict[str, Any]] = None,
    max_divergences: int = 10,
) -> OracleReport:
    """Run the differential oracle over an explicit cell list.

    This is the entry point pinned regression tests call: the program is
    the cells themselves, ``seed`` only drives the checkout order
    shuffle. Execution errors inside cells are tolerated (both the
    tracked and the cold run see the identical error), so shrunken
    programs with dangling references remain comparable.
    """
    report = OracleReport(seed=seed, n_cells=len(cells))
    rng = random.Random(seed)

    # 1. Tracked run: one commit per cell, ground truth after each.
    kernel = NotebookKernel()
    session = KishuSession.init(kernel, **(session_kwargs or {}))
    node_of_cell: List[Tuple[str, int]] = []  # (node_id, cell_index)
    truth: Dict[str, bytes] = {}
    for index, cell in enumerate(cells):
        kernel.run_cell(cell, raise_on_error=False)
        node_id = session.head_id
        node_of_cell.append((node_id, index))
        truth[node_id] = canonical_state(kernel)

    # 2. Cold run: same cells, fresh kernel, no session attached.
    cold_kernel = NotebookKernel()
    cold: Dict[str, bytes] = {}
    for (node_id, index), cell in zip(node_of_cell, cells):
        cold_kernel.run_cell(cell, raise_on_error=False)
        cold[node_id] = canonical_state(cold_kernel)
        if cold[node_id] != truth[node_id] and len(report.divergences) < max_divergences:
            report.divergences.append(
                Divergence(
                    kind="nondeterminism",
                    node_id=node_id,
                    cell_index=index,
                    detail="tracked and cold executions of the same prefix "
                    "disagree — the program (or tracking itself) perturbs "
                    "execution",
                    seed=seed,
                )
            )

    # 3. Check out every commit in a shuffled order; each restored state
    #    must equal the cold re-execution of that commit's prefix.
    order = list(node_of_cell)
    rng.shuffle(order)
    for node_id, index in order:
        report.checkouts += 1
        try:
            session.checkout(node_id)
        except Exception as exc:
            report.divergences.append(
                Divergence(
                    kind="checkout",
                    node_id=node_id,
                    cell_index=index,
                    detail=f"checkout raised {type(exc).__name__}: {exc}",
                    seed=seed,
                )
            )
            continue
        restored = canonical_state(kernel)
        report.commits_checked += 1
        if restored != cold[node_id] and len(report.divergences) < max_divergences:
            report.divergences.append(
                Divergence(
                    kind="checkout",
                    node_id=node_id,
                    cell_index=index,
                    detail="restored state differs from cold re-execution "
                    "of the same prefix",
                    seed=seed,
                )
            )

    # 4. Branch rounds: check out mid-history, continue with new cells,
    #    and verify the branched commit against a cold replay of its
    #    root-to-node path.
    for branch_cell in branch_cells:
        target_id, target_index = rng.choice(node_of_cell)
        try:
            session.checkout(target_id)
        except Exception as exc:
            report.divergences.append(
                Divergence(
                    kind="branch",
                    node_id=target_id,
                    cell_index=target_index,
                    detail=f"branch checkout raised {type(exc).__name__}: {exc}",
                    seed=seed,
                )
            )
            continue
        kernel.run_cell(branch_cell, raise_on_error=False)
        new_id = session.head_id
        report.branch_rounds += 1
        path_sources = _path_sources(session, new_id)
        branch_kernel = NotebookKernel()
        for source in path_sources:
            branch_kernel.run_cell(source, raise_on_error=False)
        if canonical_state(kernel) != canonical_state(branch_kernel):
            if len(report.divergences) < max_divergences:
                report.divergences.append(
                    Divergence(
                        kind="branch",
                        node_id=new_id,
                        cell_index=target_index,
                        detail="state after checkout-and-continue differs "
                        "from cold replay of the branch's cell path",
                        seed=seed,
                    )
                )

    _check_telemetry(session, report, seed)
    return report


def _path_sources(session: KishuSession, node_id: str) -> List[str]:
    """Cell sources along the graph path root → ``node_id``."""
    sources: List[str] = []
    current = node_id
    while current != ROOT_ID:
        node = session.graph.get(current)
        sources.append(node.cell_source)
        if node.parent_id is None:
            break
        current = node.parent_id
    sources.reverse()
    return sources


def _check_telemetry(
    session: KishuSession, report: OracleReport, seed: Optional[int]
) -> None:
    """PR 5 invariants: every decision must carry its reason."""
    observer = session.observer
    if not observer.enabled:
        return
    for event in observer.events.of_type(EventType.CROSSVAL_ESCALATION):
        report.escalations += 1
        if not event.fields.get("reasons"):
            report.divergences.append(
                Divergence(
                    kind="telemetry",
                    node_id="-",
                    cell_index=int(event.fields.get("execution_count", -1)),
                    detail="cross-validator escalation without reasons "
                    f"(event #{event.seq})",
                    seed=seed,
                )
            )
    for event in observer.events.of_type(EventType.REPLAY_PLAN_DECLINED):
        report.declines += 1
        if not event.fields.get("reason"):
            report.divergences.append(
                Divergence(
                    kind="telemetry",
                    node_id=str(event.fields.get("node", "-")),
                    cell_index=-1,
                    detail=f"replay-plan decline without a reason (event #{event.seq})",
                    seed=seed,
                )
            )
    mismatches = session.plan_stats.validation_mismatches
    if mismatches:
        report.divergences.append(
            Divergence(
                kind="telemetry",
                node_id="-",
                cell_index=-1,
                detail=f"replay executed with {mismatches} Lemma-1 validation "
                "mismatch(es)",
                seed=seed,
            )
        )


def run_program_oracle(
    program: FuzzProgram, **kwargs: Any
) -> OracleReport:
    """Run the differential oracle over a generated program."""
    return run_cells_oracle(
        list(program.cells),
        seed=program.seed,
        branch_cells=program.branch_cells,
        **kwargs,
    )


def run_fuzz_iteration(
    seed: int, config: Optional[FuzzConfig] = None, **kwargs: Any
) -> Tuple[FuzzProgram, OracleReport]:
    """Generate the program for ``seed`` and run the oracle on it."""
    generator = ProgramGenerator(config)
    program = generator.generate(seed)
    return program, run_program_oracle(program, **kwargs)
