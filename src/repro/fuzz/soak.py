"""Concurrent-session soak driver: fleet-style stress with fault plans.

Runs N seeded sessions in parallel threads, each against its *own*
independent checkpoint store wrapped in a
:class:`~repro.faults.injector.FaultInjectingStore` driving a
seed-deterministic :class:`~repro.faults.plan.FaultPlan` (transient
faults the retry layer must absorb, permanent faults the
tombstone/carryover machinery must degrade around, serialization faults
forcing fallback recomputation at checkout). Every session interleaves
commits with mid-history checkouts — verified against recorded ground
truth — so branch switching happens under load.

The report aggregates p50/p95/p99 commit and checkout latency across
the fleet, per-store byte growth, fault/retry counts, and the sampled
oracle verdicts; :func:`run_soak` returns it as a JSON-safe dict — the
``BENCH_pr6_soak.json`` artifact (ISSUE 6 / ROADMAP "heavy-traffic soak
harness").

With ``service=True`` the fleet shares *one* store behind a
:class:`~repro.service.SessionManager`: every worker commits through
the write-ahead queue into its own session namespace, and the fault
wrapper sits at the shared root so injected failures land in the
background writer (poisoning that session's lane) as well as on reads.
The report gains a ``service`` section with queue statistics and the
final session registry.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.core.session import KishuSession
from repro.core.storage import InMemoryCheckpointStore, SQLiteCheckpointStore
from repro.errors import KishuError, StorageError
from repro.faults.injector import FaultInjectingStore
from repro.faults.plan import FaultPlan
from repro.fuzz.grammar import FuzzConfig, ProgramGenerator
from repro.fuzz.oracle import canonical_state
from repro.kernel.kernel import NotebookKernel

__all__ = ["SoakConfig", "SoakSessionResult", "run_soak", "percentile"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's shape; seed-deterministic end to end."""

    sessions: int = 16
    cells: int = 30
    seed: int = 0
    #: Attempt a mid-history checkout every this many cells.
    checkout_every: int = 5
    #: "sqlite" (per-session temp database files, real fsync costs and
    #: on-disk growth) or "memory".
    store: str = "sqlite"
    store_dir: Optional[str] = None
    #: Inject a seed-deterministic fault plan into every session's store.
    faults: bool = True
    #: Run the fleet through one shared store behind a
    #: :class:`~repro.service.SessionManager` (write-ahead commit queue,
    #: per-session namespacing) instead of per-session private stores.
    service: bool = False
    #: SLO spec file to judge the run against (``None`` = the shipped
    #: fleet defaults). The report gains a ``health`` section whenever
    #: the run is a service run or a spec was named explicitly.
    slo: Optional[str] = None
    #: Write the service observer's event log (JSONL) here after the
    #: run — the input ``repro health --events`` replays.
    events_out: Optional[str] = None
    #: Grammar the per-session programs are drawn from.
    grammar: FuzzConfig = field(default_factory=lambda: FuzzConfig(cells=1))

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.checkout_every < 1:
            raise ValueError("checkout_every must be >= 1")
        if self.store not in ("sqlite", "memory"):
            raise ValueError(f"store must be 'sqlite' or 'memory', got {self.store!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.to_dict() if f.name == "grammar" else value
        return out


@dataclass
class SoakSessionResult:
    """What one fleet member measured."""

    index: int
    seed: int
    commits: int = 0
    commit_seconds: List[float] = field(default_factory=list)
    checkout_seconds: List[float] = field(default_factory=list)
    payload_bytes: int = 0
    store_file_bytes: int = 0
    faults_fired: int = 0
    storage_errors: int = 0
    oracle_checks: int = 0
    oracle_failures: int = 0
    error: Optional[str] = None


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _session_worker(
    config: SoakConfig,
    index: int,
    result: SoakSessionResult,
    manager: Optional[Any] = None,
) -> None:
    rng = random.Random(result.seed)
    grammar = FuzzConfig(
        **{
            **config.grammar.to_dict(),
            "cells": config.cells,
            "branch_cells": 0,
        }
    )
    program = ProgramGenerator(grammar).generate(result.seed)

    store_path: Optional[str] = None
    inner: Optional[Any] = None
    store: Optional[FaultInjectingStore] = None
    kernel = NotebookKernel()
    truth: Dict[str, bytes] = {}
    committed: List[str] = []
    session = None
    session_id = f"s{index + 1:03d}"

    try:
        if manager is not None:
            # Service mode: the manager hands out a write-ahead view of
            # the one shared store; faults (and their poisoned-lane
            # fallout) arrive through the shared root wrapper.
            session = manager.create(
                session_id,
                notebook_path=f"notebook-{index:03d}.ipynb",
                kernel=kernel,
            )
        else:
            if config.store == "sqlite":
                assert config.store_dir is not None
                store_path = os.path.join(
                    config.store_dir, f"session-{index:03d}.db"
                )
                inner = SQLiteCheckpointStore(store_path)
            else:
                inner = InMemoryCheckpointStore()
            plan = (
                FaultPlan.random(
                    result.seed ^ 0x5A5A,
                    max_rules=3,
                    horizon=config.cells * 3,
                    kinds=("transient", "transient", "transient", "serialization", "permanent"),
                )
                if config.faults
                else FaultPlan.none()
            )
            store = FaultInjectingStore(inner, plan)
            session = KishuSession.init(kernel, store=store)

        for cell_index, cell in enumerate(program.cells):
            before = len(session.metrics)
            try:
                kernel.run_cell(cell, raise_on_error=False)
            except (StorageError, KishuError):
                # A permanent store fault aborted this commit; the delta
                # is carried over and folded into the next one.
                result.storage_errors += 1
            for metric in session.metrics[before:]:
                result.commits += 1
                result.commit_seconds.append(metric.checkpoint_seconds)
                truth[metric.node_id] = canonical_state(kernel)
                committed.append(metric.node_id)

            if committed and (cell_index + 1) % config.checkout_every == 0:
                target = rng.choice(committed)
                try:
                    report = session.checkout(target)
                except (StorageError, KishuError):
                    result.storage_errors += 1
                else:
                    result.checkout_seconds.append(report.seconds)
                    result.oracle_checks += 1
                    if canonical_state(kernel) != truth[target]:
                        result.oracle_failures += 1
    except Exception as exc:  # surface crashes as data, not thread death
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        if manager is not None:
            # Fleet-level fault counts live in the shared root wrapper
            # (reported once in the service section, not per worker).
            if session is not None:
                try:
                    result.payload_bytes = session.store.total_payload_bytes()
                except Exception:
                    pass
                try:
                    manager.detach(session_id)
                except Exception:
                    pass
            result.store_file_bytes = result.payload_bytes
            return
        if store is not None:
            result.faults_fired = len(store.script.fired)
        if inner is not None:
            try:
                result.payload_bytes = inner.total_payload_bytes()
            except Exception:
                pass
            try:
                inner.close()
            except Exception:
                pass
        if store_path is not None and os.path.exists(store_path):
            result.store_file_bytes = os.path.getsize(store_path)
        else:
            result.store_file_bytes = result.payload_bytes


def run_soak(config: SoakConfig) -> Dict[str, Any]:
    """Run the fleet and aggregate the report (JSON-safe dict)."""
    import tempfile

    owns_dir = config.store == "sqlite" and config.store_dir is None
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if owns_dir:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-soak-")
        config = SoakConfig(**{**config.to_dict(), "grammar": config.grammar, "store_dir": tmpdir.name})
    elif config.store == "sqlite" and config.store_dir is not None:
        os.makedirs(config.store_dir, exist_ok=True)

    manager: Optional[Any] = None
    root_store: Optional[FaultInjectingStore] = None
    shared_path: Optional[str] = None
    if config.service:
        from repro.service import SessionManager

        if config.store == "sqlite":
            assert config.store_dir is not None
            shared_path = os.path.join(config.store_dir, "shared.db")
            base: Any = SQLiteCheckpointStore(shared_path)
        else:
            base = InMemoryCheckpointStore()
        plan = (
            FaultPlan.random(
                config.seed ^ 0xA5A5,
                max_rules=3,
                horizon=config.sessions * config.cells * 3,
                kinds=("transient", "transient", "transient", "serialization", "permanent"),
            )
            if config.faults
            else FaultPlan.none()
        )
        root_store = FaultInjectingStore(base, plan)
        manager = SessionManager(root_store)

    results = [
        SoakSessionResult(index=i, seed=config.seed * 7919 + i)
        for i in range(config.sessions)
    ]
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=_session_worker,
            args=(config, i, results[i], manager),
            name=f"soak-{i}",
            daemon=True,
        )
        for i in range(config.sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    service_report: Optional[Dict[str, Any]] = None
    event_counts: Dict[str, int] = {}
    if manager is not None:
        assert root_store is not None
        queue_stats = manager.queue.stats() if manager.queue is not None else {}
        registry = [
            {
                "session_id": record.session_id,
                "status": record.status,
                "checkpoints": record.checkpoints,
            }
            for record in manager.list()
        ]
        event_counts = manager.observer.events.counts()
        if config.events_out is not None:
            manager.observer.events.write_jsonl(config.events_out)
        manager.close()
        service_report = {
            "queue": queue_stats,
            "registry": registry,
            "faults_fired": len(root_store.script.fired),
            "shared_file_bytes": (
                os.path.getsize(shared_path)
                if shared_path is not None and os.path.exists(shared_path)
                else sum(r.payload_bytes for r in results)
            ),
        }
    if tmpdir is not None:
        tmpdir.cleanup()

    commit_ms = [s * 1e3 for r in results for s in r.commit_seconds]
    checkout_ms = [s * 1e3 for r in results for s in r.checkout_seconds]

    def stats(samples: List[float]) -> Dict[str, float]:
        return {
            "count": len(samples),
            "p50_ms": round(percentile(samples, 50), 4),
            "p95_ms": round(percentile(samples, 95), 4),
            "p99_ms": round(percentile(samples, 99), 4),
            "max_ms": round(max(samples), 4) if samples else 0.0,
        }

    report: Dict[str, Any] = {
        "config": config.to_dict(),
        "sessions": config.sessions,
        "wall_seconds": round(wall, 3),
        "commit_latency": stats(commit_ms),
        "checkout_latency": stats(checkout_ms),
        "store_growth": {
            "per_session_payload_bytes": [r.payload_bytes for r in results],
            "per_session_file_bytes": [r.store_file_bytes for r in results],
            "total_payload_bytes": sum(r.payload_bytes for r in results),
            "total_file_bytes": sum(r.store_file_bytes for r in results),
        },
        "faults": {
            "fired": sum(r.faults_fired for r in results),
            "storage_errors": sum(r.storage_errors for r in results),
        },
        "oracle": {
            "checks": sum(r.oracle_checks for r in results),
            "failures": sum(r.oracle_failures for r in results),
        },
        "commits": sum(r.commits for r in results),
        "worker_errors": [r.error for r in results if r.error],
    }
    if service_report is not None:
        report["service"] = service_report
    if config.service or config.slo is not None:
        # Judge the whole run against the SLO spec (ISSUE 10): latency
        # samples come from the workers, event rates from the shared
        # observer. ``evaluate_static`` treats the run as one window.
        from repro.obs.health import SLOSpec, default_spec, evaluate_static

        spec = (
            SLOSpec.from_file(config.slo)
            if config.slo is not None
            else default_spec()
        )
        indicators: Dict[str, Any] = {
            "commit.latency_seconds": {
                "samples": [s for r in results for s in r.commit_seconds]
            },
            "checkout.latency_seconds": {
                "samples": [s for r in results for s in r.checkout_seconds]
            },
        }
        for event_type, count in event_counts.items():
            indicators[f"events.{event_type}"] = {"count": count}
        report["health"] = evaluate_static(spec, indicators)
    return report
