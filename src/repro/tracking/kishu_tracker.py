"""Kishu's tracker and its check-all ablation, under the §7.6 interface.

* :class:`KishuTracker` — live object comparison *between* cell
  executions, pruned to co-variables with an accessed member (§4.3).
* :class:`AblatedKishuTracker` — the paper's "AblatedKishu (Check all)":
  identical machinery with pruning disabled, re-checking every co-variable
  in the state after every cell. Its overhead grows with total state size
  (the paper's Sklearn 4936× cell); the pruned tracker's does not.
"""

from __future__ import annotations

from typing import Optional

from repro.core.covariable import CoVariablePool
from repro.core.delta import DeltaDetector
from repro.core.vargraph import VarGraphBuilder
from repro.kernel.cells import CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord
from repro.tracking.base import Tracker, TrackingCost


class KishuTracker(Tracker):
    """Access-pruned co-variable delta detection (Kishu, §4.3).

    ``incremental`` toggles the subtree walk cache (DESIGN.md §7); with it
    off every detection re-walks candidate graphs cold, which is the
    baseline the ``test_ablation_incremental_walk`` microbenchmark compares
    against.
    """

    name = "Kishu"
    _check_all = False

    def __init__(self, kernel: NotebookKernel, *, incremental: bool = True) -> None:
        super().__init__(kernel)
        self.pool = CoVariablePool(VarGraphBuilder(incremental=incremental))
        self.detector = DeltaDetector(self.pool, check_all=self._check_all)

    def after_cell(self, result: CellResult, record: Optional[AccessRecord]) -> None:
        delta = self.detector.detect(record, self.kernel.user_variables())
        self.costs.append(
            TrackingCost(
                cell_index=len(self.costs),
                seconds=delta.detection_seconds,
                cell_duration=result.duration,
                walk=delta.walk,
            )
        )


class AblatedKishuTracker(KishuTracker):
    """AblatedKishu (Check all): no access pruning."""

    name = "AblatedKishu (Check all)"
    _check_all = True
