"""IPyFlow-style hybrid static/live tracker simulator (§7.1, §7.6).

IPyFlow combines AST analysis with live symbol resolution to obtain
sub-variable granularity lineage for reactive execution. The cost shape
the paper measures — and this simulator reproduces — is that resolution
happens *during* cell runtime, per executed statement: loops re-resolve
their symbols on every iteration (the paper's §2.4 "repeated resolutions
in looping control flows"), so tracking overhead scales with dynamic
statement count, not with state size.

Mechanics: before each cell the source is parsed and a line-number →
symbol-names table is built (the static half); a ``sys.settrace`` line
tracer then resolves each executed line's symbols against the namespace
(the live half). Tracer time is accumulated as the tracking overhead.
Cells exceeding ``max_events_per_cell`` trace events are declared failed,
modelling the paper's "IPyFlow hangs indefinitely on StoreSales cell 27".
"""

from __future__ import annotations

import ast
import sys
import time
from typing import Dict, List, Optional, Set

from repro.kernel.cells import Cell, CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord
from repro.tracking.base import Tracker, TrackingCost

_dispatch_overhead_cache: List[float] = []


def _calibrate_dispatch_overhead(iterations: int = 200_000) -> float:
    """Per-line-event cost of interpreter trace dispatch, measured once.

    ``sys.settrace`` makes the interpreter call into the tracer for every
    executed line; that trampoline is the dominant cost of live
    instrumentation and must be attributed to the tracker even though it
    happens outside the handler body. Calibrated by timing a tight loop
    with and without a no-op local tracer.
    """
    if _dispatch_overhead_cache:
        return _dispatch_overhead_cache[0]

    def workload() -> int:
        total = 0
        for i in range(iterations):
            total += i
        return total

    started = time.perf_counter()
    workload()
    bare = time.perf_counter() - started

    def noop_tracer(frame, event, arg):
        return noop_tracer

    previous = sys.gettrace()
    sys.settrace(noop_tracer)
    try:
        started = time.perf_counter()
        workload()
        traced = time.perf_counter() - started
    finally:
        sys.settrace(previous)

    # ~2 line events per loop iteration.
    per_event = max((traced - bare) / (2 * iterations), 1e-8)
    _dispatch_overhead_cache.append(per_event)
    return per_event


class _SymbolCollector(ast.NodeVisitor):
    """Collects, per line, the names and attribute/subscript symbols used."""

    def __init__(self) -> None:
        self.symbols_by_line: Dict[int, Set[str]] = {}

    def _add(self, lineno: int, symbol: str) -> None:
        self.symbols_by_line.setdefault(lineno, set()).add(symbol)

    def visit_Name(self, node: ast.Name) -> None:
        self._add(node.lineno, node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            # Sub-variable symbol like ``obj.attr`` — IPyFlow's granularity.
            self._add(node.lineno, f"{base.id}.{node.attr}")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            self._add(node.lineno, f"{base.id}[]")
        self.generic_visit(node)


class IPyFlowTracker(Tracker):
    """Hybrid static/live symbol-resolution tracker."""

    name = "IPyFlow"

    def __init__(
        self, kernel: NotebookKernel, *, max_events_per_cell: int = 200_000
    ) -> None:
        super().__init__(kernel)
        self.max_events_per_cell = max_events_per_cell
        self._symbols_by_line: Dict[int, Set[str]] = {}
        self._tracer_seconds = 0.0
        self._static_seconds = 0.0
        self._event_count = 0
        self._total_events = 0
        self._cell_failed = False
        self._resolved_symbols: Set[str] = set()
        self._previous_trace = None
        self._dispatch_overhead = _calibrate_dispatch_overhead()

    # -- lifecycle ----------------------------------------------------------

    def before_cell(self, cell: Cell) -> None:
        started = time.perf_counter()
        self._symbols_by_line = {}
        self._event_count = 0
        self._total_events = 0
        self._tracer_seconds = 0.0
        self._cell_failed = False
        self._resolved_symbols = set()
        try:
            collector = _SymbolCollector()
            collector.visit(ast.parse(cell.source))
            self._symbols_by_line = collector.symbols_by_line
        except SyntaxError:
            pass
        self._static_seconds = time.perf_counter() - started
        self._previous_trace = sys.gettrace()
        sys.settrace(self._trace)

    def after_cell(self, result: CellResult, record: Optional[AccessRecord]) -> None:
        sys.settrace(self._previous_trace)
        failed = self._cell_failed
        if failed:
            self.failed = True
            self.failure_reason = (
                f"cell {len(self.costs) + 1}: live resolution exceeded "
                f"{self.max_events_per_cell} events (complex control flow)"
            )
        # Total tracking cost: static analysis + handler work + the
        # interpreter's per-event trace dispatch (calibrated).
        dispatch_seconds = self._total_events * self._dispatch_overhead
        self.costs.append(
            TrackingCost(
                cell_index=len(self.costs),
                seconds=self._static_seconds + self._tracer_seconds + dispatch_seconds,
                cell_duration=result.duration,
                failed=failed,
                failure_reason=self.failure_reason if failed else "",
            )
        )

    # -- the live half ---------------------------------------------------------

    def _trace(self, frame, event, arg):
        # Instrumentation applies interpreter-wide during the cell: every
        # Python frame executed — including library internals driven by a
        # model fit — is observed. Symbol *resolution* only happens for
        # cell-source lines, but the observation cost is paid everywhere;
        # this is why hybrid tracking overhead scales with a cell's dynamic
        # statement count (§2.4, Fig 17).
        return self._trace_line

    def _trace_line(self, frame, event, arg):
        if event != "line":
            return self._trace_line
        started = time.perf_counter()
        self._total_events += 1
        if frame.f_code.co_filename == "<cell>":
            # Cell-source statements: live symbol resolution, and the
            # complexity bound that models IPyFlow hanging on cells with
            # pathological control flow (StoreSales cell 27).
            self._event_count += 1
            if self._event_count > self.max_events_per_cell:
                self._cell_failed = True
            symbols = self._symbols_by_line.get(frame.f_lineno)
            if symbols:
                namespace = self.kernel.user_ns
                for symbol in symbols:
                    # Resolve the symbol's base object right now — the
                    # "live" resolution that distinguishes hybrid tracking
                    # from static analysis, repeated per execution.
                    base = symbol.split(".", 1)[0].split("[", 1)[0]
                    value = namespace.peek(base)
                    if value is not None:
                        self._resolved_symbols.add(symbol)
        self._tracer_seconds += time.perf_counter() - started
        return self._trace_line
