"""State-delta trackers compared in §7.6 of the paper."""

from repro.tracking.base import Tracker, TrackingCost
from repro.tracking.ipyflow import IPyFlowTracker
from repro.tracking.kishu_tracker import AblatedKishuTracker, KishuTracker

__all__ = [
    "Tracker",
    "TrackingCost",
    "IPyFlowTracker",
    "KishuTracker",
    "AblatedKishuTracker",
]
