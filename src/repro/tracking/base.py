"""Common interface for state-delta trackers (§7.6 of the paper).

A tracker observes cell executions and determines what changed in the
session state. The benchmark harness measures each tracker's *overhead*:
time spent tracking, per cell and cumulatively, reported as seconds and as
a fraction of cell/notebook runtime (Table 6, Fig 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.kernel.cells import Cell, CellResult
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord
from repro.telemetry import WalkStats


@dataclass
class TrackingCost:
    """Tracking overhead attributable to one cell execution."""

    cell_index: int
    seconds: float
    cell_duration: float
    failed: bool = False
    failure_reason: str = ""
    #: Walk-telemetry counters of this cell's detection, for trackers that
    #: build VarGraphs (None for trackers that do not walk object graphs).
    walk: Optional[WalkStats] = None

    @property
    def overhead_ratio(self) -> float:
        """Tracker time as a multiple of the cell's own runtime (Fig 17)."""
        if self.cell_duration <= 0:
            return float("inf") if self.seconds > 0 else 0.0
        return self.seconds / self.cell_duration


class Tracker:
    """Interface implemented by the three §7.6 trackers."""

    name = "abstract"

    def __init__(self, kernel: NotebookKernel) -> None:
        self.kernel = kernel
        self.costs: List[TrackingCost] = []
        self.failed = False
        self.failure_reason = ""

    def before_cell(self, cell: Cell) -> None:
        """Called immediately before the cell body runs."""

    def after_cell(self, result: CellResult, record: Optional[AccessRecord]) -> None:
        """Called after the cell body; must append one TrackingCost."""
        raise NotImplementedError

    def total_tracking_seconds(self) -> float:
        return sum(cost.seconds for cost in self.costs)

    def overhead_fraction_of(self, notebook_runtime: float) -> float:
        if notebook_runtime <= 0:
            return 0.0
        return self.total_tracking_seconds() / notebook_runtime
