"""Simulated off-process stores: GPU memory and a remote cluster.

The paper's hardest compatibility cases are objects whose data lives
*outside* the notebook process — on-GPU tensors, Ray/Spark distributed
datasets, pipeline workers (Table 4). An OS-level page snapshot of the
process cannot capture that data; an application-level reduction can,
because the object knows how to fetch and re-put its own payload.

These stores model that: a handle object keeps only a key; the payload
lives in a module-level store standing in for device/cluster memory. The
handle's ``__reduce__`` round-trips the payload through the store — the
"storage instructions" Kishu relies on (§2.3) — while
:func:`contains_offprocess` is what the simulated CRIU uses to discover it
cannot capture the state.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Set

import numpy as np

_handle_counter = itertools.count(1)


class DeviceStore:
    """Key-value payload store living 'outside' the notebook process."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._payloads: Dict[str, Any] = {}

    def put(self, payload: Any, key: Optional[str] = None) -> str:
        if key is None:
            key = f"{self.name}-{next(_handle_counter)}"
        self._payloads[key] = payload
        return key

    def get(self, key: str) -> Any:
        return self._payloads[key]

    def delete(self, key: str) -> None:
        self._payloads.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def clear(self) -> None:
        self._payloads.clear()


#: Simulated GPU memory (tensors moved off-CPU).
GPU_STORE = DeviceStore("gpu")
#: Simulated remote cluster object store (Ray/Spark-style).
REMOTE_STORE = DeviceStore("remote")

_STORES = {"gpu": GPU_STORE, "remote": REMOTE_STORE}


def store_by_name(name: str) -> DeviceStore:
    return _STORES[name]


def reset_stores() -> None:
    """Test hook: wipe simulated device memory."""
    for store in _STORES.values():
        store.clear()


class OffProcessHandle:
    """A reference into a device store; the in-process half of an
    off-process object.

    ``_offprocess`` marks the handle for the CRIU simulation. The reduce
    round-trips the payload by value, so any pickle-protocol checkpointer
    (Kishu, DumpSession) captures the data the page image would miss.
    """

    _offprocess = True

    def __init__(self, store_name: str, payload: Any = None, key: Optional[str] = None) -> None:
        self._store_name = store_name
        if key is None:
            key = store_by_name(store_name).put(payload)
        self._key = key

    @property
    def key(self) -> str:
        return self._key

    @property
    def store_name(self) -> str:
        return self._store_name

    def fetch(self) -> Any:
        """Bring the payload into the process (e.g. ``tensor.cpu()``)."""
        return store_by_name(self._store_name).get(self._key)

    def update(self, payload: Any) -> None:
        store_by_name(self._store_name).put(payload, key=self._key)

    def free(self) -> None:
        store_by_name(self._store_name).delete(self._key)

    def __reduce__(self):
        # Serialize by value: pull the payload off the device so the
        # checkpoint is self-contained, and re-put it on load.
        return (_rebuild_handle, (self._store_name, self.fetch()))

    def __eq__(self, other) -> bool:
        if not isinstance(other, OffProcessHandle):
            return NotImplemented
        mine, theirs = self.fetch(), other.fetch()
        if isinstance(mine, np.ndarray) and isinstance(theirs, np.ndarray):
            return bool(np.array_equal(mine, theirs))
        return bool(mine == theirs)

    def __repr__(self) -> str:
        return f"OffProcessHandle({self._store_name}:{self._key})"


def _rebuild_handle(store_name: str, payload: Any) -> OffProcessHandle:
    return OffProcessHandle(store_name, payload)


def contains_offprocess(obj: Any, *, max_depth: int = 6) -> bool:
    """True if any object reachable from ``obj`` holds off-process state.

    Bounded-depth scan over containers and instance attributes; the CRIU
    simulation calls this to decide whether a page image can capture the
    session (it cannot when this returns True).
    """
    seen: Set[int] = set()

    import types

    def scan(value: Any, depth: int) -> bool:
        if depth > max_depth or id(value) in seen:
            return False
        if isinstance(value, (types.ModuleType, type)):
            # Modules and classes are code, fully present in the process
            # image; never a reason for a page snapshot to fail.
            return False
        seen.add(id(value))
        if getattr(value, "_offprocess", False) is True:
            return True
        if isinstance(value, dict):
            return any(scan(v, depth + 1) for v in value.values())
        if isinstance(value, (list, tuple, set, frozenset)):
            return any(scan(v, depth + 1) for v in value)
        instance_dict = getattr(value, "__dict__", None)
        if isinstance(instance_dict, dict):
            return any(scan(v, depth + 1) for v in instance_dict.values())
        return False

    return scan(obj, 0)
