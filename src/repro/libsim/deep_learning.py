"""Simulated deep-learning classes (torch / tensorflow / keras analogues).

Eighteen classes. The two GPU tensor classes hold their data in the
simulated device store — the page-snapshot baselines cannot capture them
(the paper's Table 4 CRIU failures for on-device data), while Kishu's
reduction-based checkpointing round-trips them transparently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
)
from repro.libsim.devices import OffProcessHandle

_CATEGORY = "deep-learning"


class SimTensor(SimObject):
    """CPU tensor: shaped numpy data with autograd-ish metadata."""

    category = _CATEGORY

    def __init__(self, shape: Tuple[int, ...] = (8, 8), seed: int = 30) -> None:
        rng = np.random.default_rng(seed)
        self.data = rng.standard_normal(shape).astype(np.float32)
        self.requires_grad = False

    def add_(self, value: float) -> "SimTensor":
        self.data += value
        return self

    def matmul(self, other: "SimTensor") -> "SimTensor":
        result = SimTensor.__new__(SimTensor)
        result.data = self.data @ other.data
        result.requires_grad = self.requires_grad or other.requires_grad
        return result

    def sum(self) -> float:
        return float(self.data.sum())


class SimTorchTensorGPU(SimObject):
    """torch.Tensor on CUDA: payload lives in simulated device memory.

    An OS page snapshot of the notebook process misses the payload
    entirely; the handle's reduction fetches it, so pickle-protocol
    checkpointing works (the paper's §7.2 asymmetry).
    """

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, shape: Tuple[int, ...] = (16, 16), seed: int = 31) -> None:
        rng = np.random.default_rng(seed)
        self.device = "cuda:0"
        self.handle = OffProcessHandle("gpu", rng.standard_normal(shape).astype(np.float32))

    def cpu(self) -> SimTensor:
        tensor = SimTensor.__new__(SimTensor)
        tensor.data = self.handle.fetch()
        tensor.requires_grad = False
        return tensor

    def scale_(self, factor: float) -> None:
        self.handle.update(self.handle.fetch() * factor)


class SimTFTensorDevice(SimObject):
    """tf.Tensor placed on an accelerator device."""

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, shape: Tuple[int, ...] = (4, 32), seed: int = 32) -> None:
        rng = np.random.default_rng(seed)
        self.device = "/GPU:0"
        self.handle = OffProcessHandle("gpu", rng.random(shape).astype(np.float32))

    def numpy(self) -> np.ndarray:
        return self.handle.fetch()


class SimLinearLayer(SimObject):
    """Dense layer with weight and bias parameters."""

    category = _CATEGORY

    def __init__(self, in_features: int = 16, out_features: int = 8, seed: int = 33) -> None:
        rng = np.random.default_rng(seed)
        self.weight = rng.standard_normal((out_features, in_features)) * 0.1
        self.bias = np.zeros(out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.T + self.bias


class SimConvLayer(SimObject):
    """1-D convolution layer."""

    category = _CATEGORY

    def __init__(self, kernel_size: int = 3, seed: int = 34) -> None:
        rng = np.random.default_rng(seed)
        self.kernel = rng.standard_normal(kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.convolve(x, self.kernel, mode="valid")


class SimSequentialModel(SimObject):
    """Layer stack with a forward pass and parameter count."""

    category = _CATEGORY

    def __init__(self, widths: Sequence[int] = (16, 8, 4), seed: int = 35) -> None:
        self.layers = [
            SimLinearLayer(widths[i], widths[i + 1], seed=seed + i)
            for i in range(len(widths) - 1)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = np.maximum(layer.forward(x), 0.0)
        return x

    def parameter_count(self) -> int:
        return sum(layer.weight.size + layer.bias.size for layer in self.layers)


class SimOptimizerState(SimObject):
    """Per-parameter momentum buffers (SGD-with-momentum analogue)."""

    category = _CATEGORY

    def __init__(self, n_params: int = 64, learning_rate: float = 0.01) -> None:
        self.learning_rate = learning_rate
        self.momentum = np.zeros(n_params)
        self.step_count = 0

    def step(self, gradients: np.ndarray) -> None:
        self.momentum = 0.9 * self.momentum + gradients
        self.step_count += 1


class SimLRScheduler(SimObject):
    """Step-decay learning-rate schedule."""

    category = _CATEGORY

    def __init__(self, base_lr: float = 0.1, gamma: float = 0.5, step_size: int = 10) -> None:
        self.base_lr = base_lr
        self.gamma = gamma
        self.step_size = step_size
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class SimEmbedding(SimObject):
    """Token-id to vector lookup table."""

    category = _CATEGORY

    def __init__(self, vocab_size: int = 100, dim: int = 16, seed: int = 36) -> None:
        rng = np.random.default_rng(seed)
        self.table = rng.standard_normal((vocab_size, dim)) * 0.05

    def lookup(self, token_ids: np.ndarray) -> np.ndarray:
        return self.table[token_ids]


class SimBatchNorm(SimObject):
    """Running-statistics batch normalization."""

    category = _CATEGORY

    def __init__(self, features: int = 8) -> None:
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)
        self.momentum = 0.1

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            mean, var = x.mean(axis=0), x.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        return (x - self.running_mean) / np.sqrt(self.running_var + 1e-5)


class SimCheckpointDict(SimObject):
    """state_dict-style nested parameter mapping."""

    category = _CATEGORY

    def __init__(self, seed: int = 37) -> None:
        rng = np.random.default_rng(seed)
        self.tensors = {
            "layer1.weight": rng.standard_normal((8, 16)),
            "layer1.bias": np.zeros(8),
            "layer2.weight": rng.standard_normal((4, 8)),
        }
        self.metadata = {"epoch": 3, "loss": 0.42}


class SimAutogradTape(SilentErrorMixin, SimObject):
    """Gradient tape whose recorded graph pickles incompletely."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.watched = ["w1", "w2"]
        self.fitted_state = {"ops": ["matmul", "relu", "sum"]}
        self._install_nondet_marker()


class SimGraphTracer(SilentErrorMixin, SimObject):
    """JIT tracer whose captured graph is dropped by serialization."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.mode = "trace"
        self.fitted_state = {"nodes": 17, "fused": True}
        self._install_nondet_marker()


class SimDataLoader(DynamicAttrsMixin, SimObject):
    """Batched loader regenerating its worker pool view on access."""

    category = _CATEGORY

    def __init__(self, n_samples: int = 256, batch_size: int = 32) -> None:
        self.n_samples = n_samples
        self.batch_size = batch_size

    def n_batches(self) -> int:
        return (self.n_samples + self.batch_size - 1) // self.batch_size


class SimModelSummary(DynamicAttrsMixin, SimObject):
    """Model summary view rebuilt on every access (FP source)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.rows = [("dense", 136), ("dense_1", 36)]


class SimLossHistory(SimObject):
    """Per-epoch loss curve."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.losses: List[float] = []

    def record(self, loss: float) -> None:
        self.losses.append(float(loss))

    def best(self) -> float:
        if not self.losses:
            raise ValueError("no losses recorded")
        return min(self.losses)


class SimMixedPrecisionScaler(RequiresFallbackMixin, SimObject):
    """AMP grad scaler whose backend hooks need the fallback pickler."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.scale = 65536.0
        self.growth_interval = 2000

    def update(self, found_inf: bool) -> None:
        self.scale = self.scale / 2 if found_inf else self.scale * 1.001


class SimDistributedSampler(SimObject):
    """Rank-sharded index sampler."""

    category = _CATEGORY

    def __init__(self, n_samples: int = 100, world_size: int = 4, rank: int = 0) -> None:
        self.world_size = world_size
        self.rank = rank
        self.indices = np.arange(rank, n_samples, world_size)


ALL_CLASSES = [
    SimTensor,
    SimTorchTensorGPU,
    SimTFTensorDevice,
    SimLinearLayer,
    SimConvLayer,
    SimSequentialModel,
    SimOptimizerState,
    SimLRScheduler,
    SimEmbedding,
    SimBatchNorm,
    SimCheckpointDict,
    SimAutogradTape,
    SimGraphTracer,
    SimDataLoader,
    SimModelSummary,
    SimLossHistory,
    SimMixedPrecisionScaler,
    SimDistributedSampler,
]
