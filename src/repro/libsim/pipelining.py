"""Simulated data-pipelining classes (huggingface / transformers
analogues).

Eighteen classes. ``SimPipeline`` and ``SimBertTokenizer`` hold worker
state off-process — the paper's Table 4 Data Pipelining classes that CRIU
fails on (pipelines spawn worker processes; tokenizers bind native Rust
state) while reduction-based checkpointing succeeds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)
from repro.libsim.devices import OffProcessHandle

_CATEGORY = "data-pipelining"

_DEFAULT_VOCAB = ["[PAD]", "[CLS]", "[SEP]", "the", "cat", "sat", "dog", "ran"]


class SimPipeline(SimObject):
    """Inference pipeline whose model worker runs out-of-process."""

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, task: str = "sentiment-analysis", seed: int = 70) -> None:
        rng = np.random.default_rng(seed)
        self.task = task
        self.worker = OffProcessHandle("remote", rng.random(32))

    def __call__(self, text: str) -> Dict[str, Any]:
        weights = self.worker.fetch()
        score = float(weights[len(text) % len(weights)])
        return {"label": "POSITIVE" if score > 0.5 else "NEGATIVE", "score": score}


class SimBertTokenizer(SimObject):
    """Fast tokenizer whose compiled vocab tables live off-process."""

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, vocab: Optional[Sequence[str]] = None) -> None:
        vocab = list(vocab) if vocab is not None else list(_DEFAULT_VOCAB)
        self.vocab_table = OffProcessHandle("remote", {t: i for i, t in enumerate(vocab)})

    def encode(self, text: str) -> List[int]:
        table = self.vocab_table.fetch()
        return [table.get(token, 0) for token in text.lower().split()]


class SimDatasetDict(SimObject):
    """Named split mapping (datasets.DatasetDict analogue)."""

    category = _CATEGORY

    def __init__(self, n_train: int = 80, n_test: int = 20, seed: int = 71) -> None:
        rng = np.random.default_rng(seed)
        self.splits = {
            "train": rng.random(n_train),
            "test": rng.random(n_test),
        }

    def num_rows(self) -> Dict[str, int]:
        return {name: len(data) for name, data in self.splits.items()}


class SimFeatureSpec(SimObject):
    """Typed feature schema."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.features = {"text": "string", "label": "int64"}

    def validate(self, row: Dict[str, Any]) -> bool:
        return set(row) == set(self.features)


class SimBatchEncoder(SimObject):
    """Pads token-id lists into rectangular batches."""

    category = _CATEGORY

    def __init__(self, max_length: int = 16, pad_id: int = 0) -> None:
        self.max_length = max_length
        self.pad_id = pad_id

    def encode_batch(self, sequences: Sequence[Sequence[int]]) -> np.ndarray:
        batch = np.full((len(sequences), self.max_length), self.pad_id)
        for row, sequence in enumerate(sequences):
            trimmed = list(sequence)[: self.max_length]
            batch[row, : len(trimmed)] = trimmed
        return batch


class SimCollator(SimObject):
    """Stacks samples into a training batch dict."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.return_tensors = "np"

    def collate(self, samples: Sequence[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
        keys = samples[0].keys()
        return {key: np.stack([s[key] for s in samples]) for key in keys}


class SimPreprocessor(SimObject):
    """Column-wise preprocessing recipe."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.steps = [("lowercase", "text"), ("scale", "score")]
        self.fitted = False

    def fit(self) -> None:
        self.fitted = True


class SimAugmenter(SimObject):
    """Text augmentation by token dropout."""

    category = _CATEGORY

    def __init__(self, drop_probability: float = 0.1, seed: int = 72) -> None:
        self.drop_probability = drop_probability
        self.seed = seed

    def augment(self, tokens: Sequence[str]) -> List[str]:
        rng = np.random.default_rng(self.seed)
        return [t for t in tokens if rng.random() > self.drop_probability]


class SimIteratorPipeline(UnserializableMixin, SimObject):
    """Lazy map/filter chain holding live iterators: unserializable."""

    category = _CATEGORY

    def __init__(self, n_stages: int = 3) -> None:
        self.stage_names = [f"stage_{i}" for i in range(n_stages)]
        self.items_emitted = 0

    def pull(self) -> int:
        self.items_emitted += 1
        return self.items_emitted


class SimStreamingLoader(SilentErrorMixin, SimObject):
    """Shard-streaming loader whose connection state pickles away."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.shards = ["shard-00", "shard-01"]
        self.fitted_state = {"open_connections": 2}
        self._install_nondet_marker()


class SimTokenizerFast(SimObject):
    """In-process fast tokenizer (vocab held locally)."""

    category = _CATEGORY

    def __init__(self, vocab: Optional[Sequence[str]] = None) -> None:
        vocab = list(vocab) if vocab is not None else list(_DEFAULT_VOCAB)
        self.vocab = {token: i for i, token in enumerate(vocab)}

    def encode(self, text: str) -> List[int]:
        return [self.vocab.get(token, 0) for token in text.lower().split()]


class SimDataCollatorLM(SimObject):
    """Masked-LM collator: randomly masks token positions."""

    category = _CATEGORY

    def __init__(self, mask_probability: float = 0.15, mask_id: int = 103, seed: int = 73) -> None:
        self.mask_probability = mask_probability
        self.mask_id = mask_id
        self.seed = seed

    def mask(self, batch: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        masked = batch.copy()
        masked[rng.random(batch.shape) < self.mask_probability] = self.mask_id
        return masked


class SimShardSpec(SimObject):
    """Dataset sharding layout."""

    category = _CATEGORY

    def __init__(self, n_shards: int = 8, rows_per_shard: int = 1000) -> None:
        self.n_shards = n_shards
        self.rows_per_shard = rows_per_shard

    def total_rows(self) -> int:
        return self.n_shards * self.rows_per_shard


class SimCacheManifest(SimObject):
    """Fingerprint-keyed cache manifest (datasets cache analogue)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.entries: Dict[str, str] = {"map-lowercase": "abc123"}

    def record(self, operation: str, fingerprint: str) -> None:
        self.entries[operation] = fingerprint


class SimThroughputMeter(SimObject):
    """Sliding-window rows/second meter."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, rows_per_second: float) -> None:
        self.samples.append(rows_per_second)
        if len(self.samples) > 32:
            self.samples.pop(0)

    def average(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0


class SimRecordBatchQueue(SimObject):
    """Bounded producer/consumer batch queue (state only, no threads)."""

    category = _CATEGORY

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self.queue: List[np.ndarray] = []

    def put(self, batch: np.ndarray) -> bool:
        if len(self.queue) >= self.capacity:
            return False
        self.queue.append(batch)
        return True

    def get(self) -> Optional[np.ndarray]:
        return self.queue.pop(0) if self.queue else None


class SimSchemaValidator(RequiresFallbackMixin, SimObject):
    """Schema validator whose rule lambdas need by-value pickling."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.required = ["id", "text"]
        self.violations = 0

    def validate(self, row: Dict[str, Any]) -> bool:
        ok = all(key in row for key in self.required)
        if not ok:
            self.violations += 1
        return ok


class SimExportJob(SimObject):
    """Materialization job spec with progress."""

    category = _CATEGORY

    def __init__(self, fmt: str = "parquet") -> None:
        if fmt not in ("parquet", "csv", "arrow"):
            raise ValueError(f"unsupported export format {fmt!r}")
        self.format = fmt
        self.rows_written = 0

    def advance(self, rows: int) -> None:
        self.rows_written += rows


ALL_CLASSES = [
    SimPipeline,
    SimBertTokenizer,
    SimDatasetDict,
    SimFeatureSpec,
    SimBatchEncoder,
    SimCollator,
    SimPreprocessor,
    SimAugmenter,
    SimIteratorPipeline,
    SimStreamingLoader,
    SimTokenizerFast,
    SimDataCollatorLM,
    SimShardSpec,
    SimCacheManifest,
    SimThroughputMeter,
    SimRecordBatchQueue,
    SimSchemaValidator,
    SimExportJob,
]
