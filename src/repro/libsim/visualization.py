"""Simulated data-visualization classes (matplotlib / plotly / seaborn /
bokeh analogues).

Nineteen classes. The noteworthy personalities: ``SimBokehFigure`` pickles
but fails to load (the paper's Table 4 DumpSession failure), four classes
regenerate renderer caches on access (false-positive sources — the paper
notes plots are modified ~7 times on average, so visualization objects are
heavily accessed), and ``SimRenderContext`` cannot be deterministically
stored.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    LoadFailsMixin,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
)

_CATEGORY = "data-visualization"


class SimFigure(SimObject):
    """Top-level figure holding axes (plt.Figure analogue)."""

    category = _CATEGORY

    def __init__(self, width: float = 6.4, height: float = 4.8) -> None:
        self.size = (width, height)
        self.axes: List["SimAxes"] = []
        self.title: Optional[str] = None

    def add_axes(self) -> "SimAxes":
        axes = SimAxes()
        self.axes.append(axes)
        return axes

    def suptitle(self, title: str) -> None:
        self.title = title


class SimAxes(SimObject):
    """A single plotting surface with artists."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.artists: List[Dict[str, Any]] = []
        self.xlabel = ""
        self.ylabel = ""

    def plot(self, xs: np.ndarray, ys: np.ndarray, label: str = "") -> None:
        self.artists.append({"kind": "line", "x": xs, "y": ys, "label": label})

    def set_labels(self, xlabel: str, ylabel: str) -> None:
        self.xlabel = xlabel
        self.ylabel = ylabel


class SimLinePlot(SimObject):
    """A rendered line chart."""

    category = _CATEGORY

    def __init__(self, n: int = 50, seed: int = 10) -> None:
        rng = np.random.default_rng(seed)
        self.x = np.arange(n, dtype=float)
        self.y = np.cumsum(rng.normal(size=n))
        self.style = {"color": "#4269d0", "linewidth": 1.5}

    def restyle(self, **style) -> None:
        self.style.update(style)


class SimScatterPlot(SimObject):
    """A rendered scatter chart with per-point sizes."""

    category = _CATEGORY

    def __init__(self, n: int = 80, seed: int = 11) -> None:
        rng = np.random.default_rng(seed)
        self.points = rng.random((n, 2))
        self.sizes = rng.integers(4, 24, size=n)

    def jitter(self, scale: float = 0.01) -> None:
        self.points += np.random.default_rng(0).normal(0, scale, self.points.shape)


class SimBarChart(SimObject):
    """Categorical bar chart."""

    category = _CATEGORY

    def __init__(self, categories: Sequence[str] = ("a", "b", "c", "d")) -> None:
        self.categories = list(categories)
        self.heights = np.arange(1, len(self.categories) + 1, dtype=float)

    def normalize(self) -> None:
        total = self.heights.sum()
        if total > 0:
            self.heights /= total


class SimHeatmap(SimObject):
    """2-D intensity grid with a colormap reference."""

    category = _CATEGORY

    def __init__(self, shape: Tuple[int, int] = (16, 16), seed: int = 12) -> None:
        rng = np.random.default_rng(seed)
        self.grid = rng.random(shape)
        self.cmap = "viridis"

    def clip(self, low: float, high: float) -> None:
        np.clip(self.grid, low, high, out=self.grid)


class SimColormap(SimObject):
    """Discrete color lookup table."""

    category = _CATEGORY

    def __init__(self, n_colors: int = 8) -> None:
        ramp = np.linspace(0, 255, n_colors, dtype=int)
        self.table = [(int(r), int(255 - r), 128) for r in ramp]

    def lookup(self, value: float) -> Tuple[int, int, int]:
        index = min(int(value * len(self.table)), len(self.table) - 1)
        return self.table[index]


class SimLegend(SimObject):
    """Legend entries attached to a figure."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.entries: List[Tuple[str, str]] = []

    def add(self, label: str, color: str) -> None:
        self.entries.append((label, color))


class SimSubplotGrid(SimObject):
    """Grid of axes (plt.subplots analogue)."""

    category = _CATEGORY

    def __init__(self, rows: int = 2, cols: int = 2) -> None:
        self.shape = (rows, cols)
        self.axes = [[SimAxes() for _ in range(cols)] for _ in range(rows)]

    def axis_at(self, row: int, col: int) -> SimAxes:
        return self.axes[row][col]


class SimBokehFigure(LoadFailsMixin, SimObject):
    """Interactive figure that serializes but cannot deserialize —
    the paper's bokeh.figure failure case (Table 4)."""

    category = _CATEGORY

    def __init__(self, n: int = 30, seed: int = 13) -> None:
        rng = np.random.default_rng(seed)
        self.renderers = [{"glyph": "circle", "data": rng.random(n)}]
        self.tools = ["pan", "wheel_zoom"]

    def add_tool(self, tool: str) -> None:
        self.tools.append(tool)


class SimCanvasAgg(DynamicAttrsMixin, SimObject):
    """Rasterizing canvas that rebuilds its buffer on access (FP source)."""

    category = _CATEGORY

    def __init__(self, width: int = 320, height: int = 240) -> None:
        self.size = (width, height)
        self.draw_calls = 0


class SimInteractivePlot(DynamicAttrsMixin, SimObject):
    """Widget-backed plot regenerating its event handlers on access."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.traces = [{"name": "t0", "visible": True}]
        self.layout = {"showlegend": True}


class SimPlotlyWidget(DynamicAttrsMixin, SimObject):
    """Plotly-style figure widget with a volatile view model."""

    category = _CATEGORY

    def __init__(self, n: int = 40, seed: int = 14) -> None:
        rng = np.random.default_rng(seed)
        self.data = rng.random(n)
        self.config = {"responsive": True}


class SimSeabornGrid(DynamicAttrsMixin, SimObject):
    """Faceted grid that lazily materializes facet artists on access."""

    category = _CATEGORY

    def __init__(self, rows: int = 2, cols: int = 3) -> None:
        self.facets = [f"facet_{r}_{c}" for r in range(rows) for c in range(cols)]
        self.palette = "deep"


class SimRenderContext(SilentErrorMixin, SimObject):
    """GPU-ish render context: driver handles silently dropped by pickle."""

    category = _CATEGORY
    _silently_dropped = ("driver_state",)

    def __init__(self) -> None:
        self.backend = "agg"
        self.driver_state = {"context_id": 7, "vsync": True}
        self._install_nondet_marker()


class SimAnimation(RequiresFallbackMixin, SimObject):
    """Frame-callback animation: the callback needs by-value pickling."""

    category = _CATEGORY

    def __init__(self, n_frames: int = 24) -> None:
        self.n_frames = n_frames
        self.interval_ms = 50

    def duration_seconds(self) -> float:
        return self.n_frames * self.interval_ms / 1000.0


class SimAnnotation(SimObject):
    """Text annotation anchored to data coordinates."""

    category = _CATEGORY

    def __init__(self, text: str = "peak", xy: Tuple[float, float] = (0.5, 0.5)) -> None:
        self.text = text
        self.xy = xy
        self.style = {"fontsize": 10}


class SimThemeSpec(SimObject):
    """Global style sheet (rcParams analogue)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.params = {"font.size": 10.0, "figure.dpi": 96, "axes.grid": True}

    def update(self, **params) -> None:
        self.params.update(params)


class SimHistogram(SimObject):
    """Binned distribution summary."""

    category = _CATEGORY

    def __init__(self, n: int = 500, bins: int = 20, seed: int = 15) -> None:
        rng = np.random.default_rng(seed)
        sample = rng.normal(size=n)
        self.counts, self.edges = np.histogram(sample, bins=bins)

    def mode_bin(self) -> int:
        return int(np.argmax(self.counts))


ALL_CLASSES = [
    SimFigure,
    SimAxes,
    SimLinePlot,
    SimScatterPlot,
    SimBarChart,
    SimHeatmap,
    SimColormap,
    SimLegend,
    SimSubplotGrid,
    SimBokehFigure,
    SimCanvasAgg,
    SimInteractivePlot,
    SimPlotlyWidget,
    SimSeabornGrid,
    SimRenderContext,
    SimAnimation,
    SimAnnotation,
    SimThemeSpec,
    SimHistogram,
]
