"""Registry of the 146 simulated library classes (Table 3 of the paper).

Each entry records the class, its category, its serialization personality,
and the behaviour the paper's evaluation expects of it:

* ``expected_detection`` — its Table 5 bucket: "success" (update detected,
  no-op not flagged), "false_positive" (flagged on access even when
  unchanged, dynamic reachable objects), or "pickle_error" (cannot be
  deterministically stored; flagged on access).
* ``criu_compatible`` — False for the 6 multiprocessing / off-CPU classes
  page snapshots cannot capture (Fig 12, Table 4).
* ``dumpsession_compatible`` — False for the 7 classes whose payloads
  cannot round-trip through a bulk session pickle (Fig 12, Table 4).

The paper's headline counts, which `benchmarks/` verify against measured
behaviour: 146 classes, 120/14/12 detection buckets, 6 CRIU failures,
7 DumpSession failures, 0 Kishu failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.libsim import (
    computer_vision,
    data_analysis,
    deep_learning,
    distributed,
    machine_learning,
    nlp,
    pipelining,
    visualization,
)
from repro.libsim.base import SimObject

#: Display names matching the paper's Table 3 rows.
CATEGORY_TITLES = {
    "data-analysis": "Data Analysis",
    "data-visualization": "Data Visualization",
    "machine-learning": "Machine Learning",
    "deep-learning": "Deep Learning",
    "nlp": "NLP",
    "computer-vision": "Computer Vision",
    "distributed-computing": "Dist. Computing",
    "data-pipelining": "Data Pipelining",
}

_PERSONALITY_TO_DETECTION = {
    "plain": "success",
    "custom-reduce": "success",
    "requires-fallback": "success",
    "unserializable": "success",
    "load-fails": "success",
    "offprocess": "success",
    "dynamic-attrs": "false_positive",
    "silent-error": "pickle_error",
}

#: Personalities whose payloads a bulk session pickle cannot round-trip.
_DUMPSESSION_INCOMPATIBLE = {"unserializable", "load-fails"}


@dataclass(frozen=True)
class ClassSpec:
    """One registry row."""

    cls: Type[SimObject]
    category: str
    personality: str
    expected_detection: str
    criu_compatible: bool
    dumpsession_compatible: bool

    @property
    def name(self) -> str:
        return self.cls.__qualname__

    def make(self) -> SimObject:
        """Instantiate with defaults (every class is default-constructible)."""
        return self.cls()


def _build_registry() -> List[ClassSpec]:
    specs: List[ClassSpec] = []
    modules = (
        data_analysis,
        visualization,
        machine_learning,
        deep_learning,
        nlp,
        computer_vision,
        distributed,
        pipelining,
    )
    for module in modules:
        for cls in module.ALL_CLASSES:
            personality = cls.personality
            specs.append(
                ClassSpec(
                    cls=cls,
                    category=cls.category,
                    personality=personality,
                    expected_detection=_PERSONALITY_TO_DETECTION[personality],
                    criu_compatible=not getattr(cls, "_offprocess", False),
                    dumpsession_compatible=personality not in _DUMPSESSION_INCOMPATIBLE,
                )
            )
    return specs


REGISTRY: List[ClassSpec] = _build_registry()


def all_specs() -> List[ClassSpec]:
    return list(REGISTRY)


def spec_by_name(name: str) -> ClassSpec:
    for spec in REGISTRY:
        if spec.name == name:
            return spec
    raise KeyError(f"no simulated class named {name!r}")


def specs_by_category() -> Dict[str, List[ClassSpec]]:
    grouped: Dict[str, List[ClassSpec]] = {}
    for spec in REGISTRY:
        grouped.setdefault(spec.category, []).append(spec)
    return grouped


def specs_by_personality(personality: str) -> List[ClassSpec]:
    return [spec for spec in REGISTRY if spec.personality == personality]


def expected_counts() -> Dict[str, int]:
    """The paper's Table 5 / Fig 12 headline counts, derived from the
    registry (tests assert these equal the paper's numbers)."""
    return {
        "total": len(REGISTRY),
        "detection_success": sum(
            1 for s in REGISTRY if s.expected_detection == "success"
        ),
        "detection_false_positive": sum(
            1 for s in REGISTRY if s.expected_detection == "false_positive"
        ),
        "detection_pickle_error": sum(
            1 for s in REGISTRY if s.expected_detection == "pickle_error"
        ),
        "criu_failures": sum(1 for s in REGISTRY if not s.criu_compatible),
        "dumpsession_failures": sum(
            1 for s in REGISTRY if not s.dumpsession_compatible
        ),
    }
