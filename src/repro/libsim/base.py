"""Serialization personalities for the simulated library classes.

The 146-class compatibility study (§7.2, Tables 3–5, Fig 12) measures how
checkpointing mechanisms interact with the *pickle-protocol behaviours* of
real data-science classes. Each behaviour observed in the wild is modelled
here as a mixin; the category modules compose them with realistic state.

Personalities and their real-world exemplars:

* plain                — pandas.DataFrame: standard pickling.
* custom-reduce        — objects defining ``__reduce__`` (e.g. handles).
* requires-fallback    — "CloudPickle fails, Dill succeeds" classes; the
                          primary pickler declines them (§6.1 chain).
* unserializable       — polars.LazyFrame, generators: pickling raises.
* load-fails           — bokeh.figure: pickles, but raises on load.
* silent-error         — classes that cannot be deterministically stored:
                          reductions drop state without raising and differ
                          between dumps (§6.2); Kishu reports them updated
                          on access (Table 5 "Pickle Error"); blocklist
                          material.
* dynamic-attrs        — classes regenerating reachable objects on every
                          access: Kishu's false-positive sources (Table 5).
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

_nondet_counter = itertools.count(1)


class SimObject:
    """Base for all simulated library classes.

    Equality compares instance state (ignoring private cache fields that
    personalities regenerate), which is what the correctness benches use
    to verify restore-exactness.
    """

    #: Overridden by category modules ("data-analysis", "nlp", ...).
    category = "uncategorized"
    #: Personality label, for the registry and reports.
    personality = "plain"

    def _state_for_eq(self) -> dict:
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith(("_cache", "_nondet"))
        }

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return _state_equal(self._state_for_eq(), other._state_for_eq())

    def __repr__(self) -> str:
        return f"{type(self).__qualname__}()"


def _state_equal(a: Any, b: Any) -> bool:
    """Structural equality that treats numpy arrays elementwise."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_state_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_state_equal(x, y) for x, y in zip(a, b))
    try:
        return bool(a == b)
    except Exception:
        return a is b


class RequiresFallbackMixin:
    """Primary pickler refuses these; the fallback pickler handles them."""

    personality = "requires-fallback"
    _requires_fallback_pickler = True


class UnserializableMixin:
    """Pickling raises — the polars.LazyFrame / generator behaviour.

    State stays in ``__dict__`` so VarGraph traversal (and thus update
    detection) still works; only *serialization* fails, which is exactly
    the asymmetry that forces Kishu's fallback recomputation.
    """

    personality = "unserializable"

    def __reduce_ex__(self, protocol):
        raise TypeError(f"cannot pickle {type(self).__qualname__!r} object")

    def __reduce__(self):
        raise TypeError(f"cannot pickle {type(self).__qualname__!r} object")


def _fail_on_load(class_name: str):
    raise ValueError(
        f"{class_name} payload cannot be deserialized in this session "
        "(simulated bokeh.figure behaviour)"
    )


class LoadFailsMixin:
    """Pickles fine; deserialization raises — bokeh.figure behaviour."""

    personality = "load-fails"

    def __reduce__(self):
        return (_fail_on_load, (type(self).__qualname__,))


class SilentErrorMixin:
    """Cannot be deterministically stored: silent pickling errors (§6.2).

    Two linked behaviours, matching the paper's 12 "Pickle Error" classes
    (Table 5 and §7.2.1):

    * attributes named in ``_silently_dropped`` vanish across a pickle
      round-trip without any exception, so ``x != loads(dumps(x))`` — the
      silent corruption the blocklist exists for;
    * the instance holds a :class:`NondetToken`, whose reduction mints a
      fresh value on every traversal, so Kishu's VarGraph differs on every
      construction and the object is reported updated on access — never
      a false negative.

    Classes with this mixin must call ``_install_nondet_marker()`` in
    their ``__init__``.
    """

    personality = "silent-error"
    _silently_dropped = ("fitted_state",)

    def _install_nondet_marker(self) -> None:
        self._nondet_component = NondetToken()

    def __getstate__(self):
        state = dict(self.__dict__)
        for key in self._silently_dropped:
            state.pop(key, None)
        return state


class DynamicAttrsMixin:
    """Regenerates a reachable object on *every* attribute access.

    Models plot/model classes that rebuild internal caches when touched,
    giving the rebuilt object a different memory address each VarGraph
    construction — the paper's false-positive source (Table 5): Kishu
    conservatively reports an update whenever such an object is accessed.
    """

    personality = "dynamic-attrs"

    def __getattribute__(self, name):
        if name == "__dict__":
            d = object.__getattribute__(self, "__dict__")
            # Fresh object (new address) on every traversal.
            d["_cache_render"] = [object()]
            return d
        return object.__getattribute__(self, name)

    def __getstate__(self):
        state = dict(object.__getattribute__(self, "__dict__"))
        state.pop("_cache_render", None)
        return state


class NondetToken:
    """A component that cannot be deterministically stored.

    No ``__dict__``; traversal and pickling both go through ``__reduce__``,
    which mints a fresh token each call — so the VarGraph differs on every
    construction and the pickle bytes differ on every dump. Kishu
    classifies co-variables containing one as updated on access
    (Table 5 "Pickle Error").
    """

    __slots__ = ()

    def __reduce__(self):
        return (NondetToken._rebuild, (next(_nondet_counter),))

    @staticmethod
    def _rebuild(_token: int) -> "NondetToken":
        return NondetToken()

    def __eq__(self, other) -> bool:
        return isinstance(other, NondetToken)

    def __hash__(self) -> int:
        return hash(NondetToken)


