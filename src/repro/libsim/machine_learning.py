"""Simulated machine-learning classes (sklearn / xgboost / scipy analogues).

Twenty-one classes with working fit/predict behaviour over numpy. Models
are the heart of the paper's workloads (a model fit is the canonical
expensive-to-rerun cell), so most are plain-pickling; three regenerate
validation caches on access (false positives), two cannot be
deterministically stored, and the streaming cross-validator holds a live
iterator (unserializable).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)

_CATEGORY = "machine-learning"


class SimGaussianMixture(SimObject):
    """Diagonal-covariance GMM fit with a few EM-lite iterations —
    the paper's running example class (sklearn GaussianMixture)."""

    category = _CATEGORY

    def __init__(self, k: int = 3, seed: int = 20) -> None:
        self.k = k
        self.seed = seed
        self.means: Optional[np.ndarray] = None
        self.weights: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray, iterations: int = 5) -> "SimGaussianMixture":
        rng = np.random.default_rng(self.seed)
        indices = rng.choice(len(data), size=self.k, replace=False)
        means = data[indices].astype(float)
        for _ in range(iterations):
            distances = np.abs(data[:, None] - means[None, :])
            assignment = np.argmin(distances, axis=1)
            for j in range(self.k):
                members = data[assignment == j]
                if len(members):
                    means[j] = members.mean()
        self.means = np.sort(means)
        counts = np.bincount(assignment, minlength=self.k)
        self.weights = counts / counts.sum()
        return self

    def result(self) -> Dict[str, np.ndarray]:
        if self.means is None:
            raise RuntimeError("model not fitted")
        return {"means": self.means, "weights": self.weights}


class SimLinearRegression(SimObject):
    """Ordinary least squares via the normal equations."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.coef: Optional[np.ndarray] = None
        self.intercept: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SimLinearRegression":
        design = np.column_stack([np.ones(len(X)), X])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept = float(solution[0])
        self.coef = solution[1:]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef is None:
            raise RuntimeError("model not fitted")
        return X @ self.coef + self.intercept


class SimLogisticRegression(SimObject):
    """Binary logistic regression via gradient descent."""

    category = _CATEGORY

    def __init__(self, learning_rate: float = 0.1, iterations: int = 50) -> None:
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.weights: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SimLogisticRegression":
        weights = np.zeros(X.shape[1])
        for _ in range(self.iterations):
            preds = 1.0 / (1.0 + np.exp(-(X @ weights)))
            gradient = X.T @ (preds - y) / len(y)
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model not fitted")
        return 1.0 / (1.0 + np.exp(-(X @ self.weights)))


class SimDecisionTree(SimObject):
    """Depth-1..n threshold tree on a single feature (stump stack)."""

    category = _CATEGORY

    def __init__(self, max_depth: int = 3) -> None:
        self.max_depth = max_depth
        self.thresholds: List[Tuple[int, float]] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SimDecisionTree":
        self.thresholds = []
        for depth in range(self.max_depth):
            feature = depth % X.shape[1]
            self.thresholds.append((feature, float(np.median(X[:, feature]))))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        votes = np.zeros(len(X))
        for feature, threshold in self.thresholds:
            votes += (X[:, feature] > threshold).astype(float)
        return (votes > len(self.thresholds) / 2).astype(int)


class SimRandomForest(SimObject):
    """Bagged ensemble of threshold trees."""

    category = _CATEGORY

    def __init__(self, n_trees: int = 10, seed: int = 21) -> None:
        self.n_trees = n_trees
        self.seed = seed
        self.trees: List[SimDecisionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SimRandomForest":
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for _ in range(self.n_trees):
            sample = rng.integers(0, len(X), size=len(X))
            tree = SimDecisionTree(max_depth=3).fit(X[sample], y[sample])
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        votes = np.mean([tree.predict(X) for tree in self.trees], axis=0)
        return (votes > 0.5).astype(int)


class SimKMeans(SimObject):
    """Lloyd's algorithm over 2-D points."""

    category = _CATEGORY

    def __init__(self, k: int = 4, seed: int = 22) -> None:
        self.k = k
        self.seed = seed
        self.centers: Optional[np.ndarray] = None
        self.inertia: float = float("inf")

    def fit(self, points: np.ndarray, iterations: int = 10) -> "SimKMeans":
        rng = np.random.default_rng(self.seed)
        centers = points[rng.choice(len(points), self.k, replace=False)].astype(float)
        for _ in range(iterations):
            distances = np.linalg.norm(points[:, None] - centers[None, :], axis=2)
            labels = np.argmin(distances, axis=1)
            for j in range(self.k):
                members = points[labels == j]
                if len(members):
                    centers[j] = members.mean(axis=0)
        self.centers = centers
        self.inertia = float(np.min(distances, axis=1).sum())
        return self


class SimPCA(SimObject):
    """Principal components via SVD."""

    category = _CATEGORY

    def __init__(self, n_components: int = 2) -> None:
        self.n_components = n_components
        self.components: Optional[np.ndarray] = None
        self.mean: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "SimPCA":
        self.mean = X.mean(axis=0)
        centered = X - self.mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        self.components = vt[: self.n_components]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components is None:
            raise RuntimeError("not fitted")
        return (X - self.mean) @ self.components.T


class SimStandardScaler(SimObject):
    """Zero-mean unit-variance scaler."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.scale: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "SimStandardScaler":
        self.mean = X.mean(axis=0)
        self.scale = np.where(X.std(axis=0) == 0, 1.0, X.std(axis=0))
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("not fitted")
        return (X - self.mean) / self.scale


class SimPowerTransformer(SimObject):
    """Signed square-root power transform (PowerTransformer analogue,
    used by the Cluster notebook's preprocessing cell)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.fitted_on_rows: int = 0

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        self.fitted_on_rows = len(X)
        return np.sign(X) * np.sqrt(np.abs(X))


class SimGridSearch(SimObject):
    """Exhaustive hyperparameter sweep retaining per-config scores."""

    category = _CATEGORY

    def __init__(self, param_grid: Optional[Dict[str, Sequence[Any]]] = None) -> None:
        self.param_grid = param_grid or {"k": [2, 3, 4]}
        self.results: List[Tuple[Dict[str, Any], float]] = []
        self.best_params: Optional[Dict[str, Any]] = None

    def fit(self, data: np.ndarray) -> "SimGridSearch":
        self.results = []
        for k in self.param_grid.get("k", [2]):
            model = SimKMeans(k=k, seed=0).fit(data.reshape(len(data), -1))
            self.results.append(({"k": k}, -model.inertia))
        self.best_params = max(self.results, key=lambda item: item[1])[0]
        return self


def _rebuild_xgb(booster_blob: bytes, params: Dict[str, Any]) -> "SimXGBoostModel":
    model = SimXGBoostModel.__new__(SimXGBoostModel)
    model.params = params
    model.booster_blob = booster_blob
    return model


class SimXGBoostModel(SimObject):
    """Gradient-boosting model serialized via a native-format blob,
    like xgboost's ``__reduce__`` through ``save_raw``."""

    category = _CATEGORY
    personality = "custom-reduce"

    def __init__(self, n_rounds: int = 20) -> None:
        self.params = {"eta": 0.3, "max_depth": 6, "rounds": n_rounds}
        self.booster_blob = bytes(range(64)) * n_rounds

    def __reduce__(self):
        return (_rebuild_xgb, (self.booster_blob, self.params))


class SimSVM(SimObject):
    """Margin classifier retaining support vectors."""

    category = _CATEGORY

    def __init__(self, c: float = 1.0) -> None:
        self.c = c
        self.support_vectors: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SimSVM":
        margin = np.abs(X @ np.ones(X.shape[1]))
        keep = margin < np.percentile(margin, 25)
        self.support_vectors = X[keep]
        return self


class SimCrossValidator(SilentErrorMixin, SimObject):
    """K-fold validator whose RNG state is silently dropped by pickle."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self, n_folds: int = 5) -> None:
        self.n_folds = n_folds
        self.fitted_state = {"rng_state": 12345, "fold_scores": [0.8, 0.81]}
        self._install_nondet_marker()


class SimEnsembleStack(SilentErrorMixin, SimObject):
    """Stacked ensemble whose base-model bindings pickle incompletely."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self, n_base: int = 3) -> None:
        self.n_base = n_base
        self.fitted_state = {"base_weights": list(np.linspace(0.1, 1.0, n_base))}
        self._install_nondet_marker()


class SimFeatureUnion(SimObject):
    """Horizontal concatenation of transformer outputs."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.transformers = [SimStandardScaler(), SimPCA(n_components=1)]

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        parts = []
        for transformer in self.transformers:
            transformer.fit(X)
            parts.append(transformer.transform(X))
        return np.column_stack(parts)


class SimCalibratedModel(DynamicAttrsMixin, SimObject):
    """Probability-calibrated wrapper regenerating its calibration curve
    cache on access (FP source)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.base_model = "logistic"
        self.calibration_bins = 10


class SimHyperoptTrials(DynamicAttrsMixin, SimObject):
    """Trial store whose summary view is rebuilt on access (FP source)."""

    category = _CATEGORY

    def __init__(self, n_trials: int = 12, seed: int = 23) -> None:
        rng = np.random.default_rng(seed)
        self.scores = list(rng.random(n_trials))


class SimAutoMLSearch(DynamicAttrsMixin, SimObject):
    """AutoML leaderboard regenerating ranking objects on access."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.candidates = ["rf", "xgb", "linear"]
        self.budget_minutes = 10


class SimStreamingCV(UnserializableMixin, SimObject):
    """Cross-validator over a live data stream: holds an open iterator."""

    category = _CATEGORY

    def __init__(self, n_folds: int = 3) -> None:
        self.n_folds = n_folds
        self.consumed = 0

    def advance(self) -> int:
        self.consumed += 1
        return self.consumed


class SimLabelEncoder(SimObject):
    """String-label to integer-code mapping."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.classes: List[str] = []

    def fit(self, labels: Sequence[str]) -> "SimLabelEncoder":
        self.classes = sorted(set(labels))
        return self

    def transform(self, labels: Sequence[str]) -> np.ndarray:
        index = {label: i for i, label in enumerate(self.classes)}
        return np.asarray([index[label] for label in labels])


class SimOneHotEncoder(SimObject):
    """Dense one-hot expansion of integer codes."""

    category = _CATEGORY

    def __init__(self, n_categories: int = 4) -> None:
        self.n_categories = n_categories

    def transform(self, codes: np.ndarray) -> np.ndarray:
        matrix = np.zeros((len(codes), self.n_categories))
        matrix[np.arange(len(codes)), codes] = 1.0
        return matrix


ALL_CLASSES = [
    SimGaussianMixture,
    SimLinearRegression,
    SimLogisticRegression,
    SimDecisionTree,
    SimRandomForest,
    SimKMeans,
    SimPCA,
    SimStandardScaler,
    SimPowerTransformer,
    SimGridSearch,
    SimXGBoostModel,
    SimSVM,
    SimCrossValidator,
    SimEnsembleStack,
    SimFeatureUnion,
    SimCalibratedModel,
    SimHyperoptTrials,
    SimAutoMLSearch,
    SimStreamingCV,
    SimLabelEncoder,
    SimOneHotEncoder,
]
