"""Simulated NLP classes (nltk / textblob / wordcloud analogues).

Seventeen classes with working text-processing behaviour: tokenization,
vocabulary building, tf-idf, n-gram language modelling, sentiment scoring.
The corpus stream holds a live generator (unserializable); two classes
pickle non-deterministically; the embedding index regenerates its ANN
structures on access.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)

_CATEGORY = "nlp"

_DEFAULT_CORPUS = [
    "the cat sat on the mat",
    "the dog chased the cat",
    "data science notebooks are stateful",
    "checkpoints make time travel possible",
    "the quick brown fox jumps over the lazy dog",
]


class SimTokenizer(SimObject):
    """Regex word tokenizer with a token count cacheless API."""

    category = _CATEGORY

    def __init__(self, pattern: str = r"[a-z']+") -> None:
        self.pattern = pattern

    def tokenize(self, text: str) -> List[str]:
        return re.findall(self.pattern, text.lower())


class SimVocabulary(SimObject):
    """Token-to-id mapping built from a corpus."""

    category = _CATEGORY

    def __init__(self, corpus: Optional[Sequence[str]] = None) -> None:
        corpus = corpus if corpus is not None else _DEFAULT_CORPUS
        tokenizer = SimTokenizer()
        tokens = sorted({t for text in corpus for t in tokenizer.tokenize(text)})
        self.token_to_id = {token: i for i, token in enumerate(tokens)}

    def encode(self, tokens: Sequence[str]) -> List[int]:
        return [self.token_to_id[t] for t in tokens if t in self.token_to_id]

    def __len__(self) -> int:
        return len(self.token_to_id)


class SimTfIdfVectorizer(SimObject):
    """Term-frequency / inverse-document-frequency matrix builder."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.vocabulary: Optional[SimVocabulary] = None
        self.idf: Optional[np.ndarray] = None

    def fit_transform(self, corpus: Optional[Sequence[str]] = None) -> np.ndarray:
        corpus = corpus if corpus is not None else _DEFAULT_CORPUS
        self.vocabulary = SimVocabulary(corpus)
        tokenizer = SimTokenizer()
        matrix = np.zeros((len(corpus), len(self.vocabulary)))
        for row, text in enumerate(corpus):
            for token_id in self.vocabulary.encode(tokenizer.tokenize(text)):
                matrix[row, token_id] += 1.0
        document_freq = (matrix > 0).sum(axis=0)
        self.idf = np.log((1 + len(corpus)) / (1 + document_freq)) + 1.0
        return matrix * self.idf


class SimCountVectorizer(SimObject):
    """Bag-of-words count matrix builder."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.vocabulary: Optional[SimVocabulary] = None

    def fit_transform(self, corpus: Optional[Sequence[str]] = None) -> np.ndarray:
        corpus = corpus if corpus is not None else _DEFAULT_CORPUS
        self.vocabulary = SimVocabulary(corpus)
        tokenizer = SimTokenizer()
        matrix = np.zeros((len(corpus), len(self.vocabulary)), dtype=int)
        for row, text in enumerate(corpus):
            for token_id in self.vocabulary.encode(tokenizer.tokenize(text)):
                matrix[row, token_id] += 1
        return matrix


class SimTextBlob(SimObject):
    """Wrapped text with lazy-ish derived views (TextBlob analogue)."""

    category = _CATEGORY

    def __init__(self, text: str = "notebooks are wonderful and fast") -> None:
        self.text = text
        self.words = SimTokenizer().tokenize(text)

    def word_counts(self) -> Dict[str, int]:
        return dict(Counter(self.words))


class SimSentimentModel(SimObject):
    """Lexicon-based polarity scorer."""

    category = _CATEGORY

    _LEXICON = {"wonderful": 1.0, "fast": 0.5, "slow": -0.5, "terrible": -1.0}

    def __init__(self) -> None:
        self.lexicon = dict(self._LEXICON)

    def polarity(self, text: str) -> float:
        tokens = SimTokenizer().tokenize(text)
        scores = [self.lexicon.get(t, 0.0) for t in tokens]
        return float(np.mean(scores)) if scores else 0.0


class SimNGramModel(SimObject):
    """Bigram frequency language model."""

    category = _CATEGORY

    def __init__(self, corpus: Optional[Sequence[str]] = None) -> None:
        corpus = corpus if corpus is not None else _DEFAULT_CORPUS
        tokenizer = SimTokenizer()
        self.bigrams: Counter = Counter()
        for text in corpus:
            tokens = tokenizer.tokenize(text)
            self.bigrams.update(zip(tokens, tokens[1:]))

    def most_common(self, n: int = 3) -> List[Tuple[Tuple[str, str], int]]:
        return self.bigrams.most_common(n)


class SimWordCloud(SimObject):
    """Word frequency to layout-weight mapping (wordcloud analogue)."""

    category = _CATEGORY

    def __init__(self, corpus: Optional[Sequence[str]] = None) -> None:
        corpus = corpus if corpus is not None else _DEFAULT_CORPUS
        tokenizer = SimTokenizer()
        counts = Counter(t for text in corpus for t in tokenizer.tokenize(text))
        top = max(counts.values())
        self.weights = {word: count / top for word, count in counts.items()}


class SimStemmer(SimObject):
    """Suffix-stripping stemmer."""

    category = _CATEGORY

    _SUFFIXES = ("ingly", "edly", "ing", "ed", "ly", "s")

    def __init__(self) -> None:
        self.suffixes = list(self._SUFFIXES)

    def stem(self, word: str) -> str:
        for suffix in self.suffixes:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return word[: -len(suffix)]
        return word


class SimStopwordFilter(SimObject):
    """Stop-word removal."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.stopwords = {"the", "a", "an", "on", "are", "over"}

    def filter(self, tokens: Sequence[str]) -> List[str]:
        return [t for t in tokens if t not in self.stopwords]


class SimCorpusStream(UnserializableMixin, SimObject):
    """Streaming corpus reader holding a live generator position."""

    category = _CATEGORY

    def __init__(self, corpus: Optional[Sequence[str]] = None) -> None:
        self.corpus = list(corpus) if corpus is not None else list(_DEFAULT_CORPUS)
        self.cursor = 0

    def next_document(self) -> str:
        document = self.corpus[self.cursor % len(self.corpus)]
        self.cursor += 1
        return document


class SimLanguageDetector(SilentErrorMixin, SimObject):
    """Detector whose compiled model tables pickle incompletely."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.languages = ["en", "fr", "de"]
        self.fitted_state = {"char_profiles": {"en": [0.12, 0.09]}}
        self._install_nondet_marker()


class SimTopicModel(SilentErrorMixin, SimObject):
    """LDA-style topic model with non-deterministic serialization."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self, n_topics: int = 4) -> None:
        self.n_topics = n_topics
        self.fitted_state = {"topic_word": [[0.2, 0.8]] * n_topics}
        self._install_nondet_marker()


class SimEmbeddingIndex(DynamicAttrsMixin, SimObject):
    """ANN index regenerating its search structures on access (FP)."""

    category = _CATEGORY

    def __init__(self, n_vectors: int = 64, dim: int = 8, seed: int = 40) -> None:
        rng = np.random.default_rng(seed)
        self.vectors = rng.standard_normal((n_vectors, dim))


class SimRegexPipeline(RequiresFallbackMixin, SimObject):
    """Chained regex substitutions; the chain closure defeats pickle."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.rules = [(r"\s+", " "), (r"[^a-z ]", "")]

    def apply(self, text: str) -> str:
        result = text.lower()
        for pattern, replacement in self.rules:
            result = re.sub(pattern, replacement, result)
        return result.strip()


class SimCharFilter(SimObject):
    """Character-class filter."""

    category = _CATEGORY

    def __init__(self, allowed: str = "abcdefghijklmnopqrstuvwxyz ") -> None:
        self.allowed = set(allowed)

    def apply(self, text: str) -> str:
        return "".join(c for c in text.lower() if c in self.allowed)


class SimDocTermMatrix(SimObject):
    """Materialized document-term matrix with row lookups."""

    category = _CATEGORY

    def __init__(self, corpus: Optional[Sequence[str]] = None) -> None:
        self.matrix = SimCountVectorizer().fit_transform(corpus)

    def document_vector(self, row: int) -> np.ndarray:
        return self.matrix[row]


ALL_CLASSES = [
    SimTokenizer,
    SimVocabulary,
    SimTfIdfVectorizer,
    SimCountVectorizer,
    SimTextBlob,
    SimSentimentModel,
    SimNGramModel,
    SimWordCloud,
    SimStemmer,
    SimStopwordFilter,
    SimCorpusStream,
    SimLanguageDetector,
    SimTopicModel,
    SimEmbeddingIndex,
    SimRegexPipeline,
    SimCharFilter,
    SimDocTermMatrix,
]
