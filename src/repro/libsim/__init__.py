"""146 simulated data-science library classes across the paper's 8
categories (Table 3), with faithful serialization personalities."""

from repro.libsim.base import (
    DynamicAttrsMixin,
    LoadFailsMixin,
    NondetToken,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)
from repro.libsim.devices import (
    GPU_STORE,
    REMOTE_STORE,
    DeviceStore,
    OffProcessHandle,
    contains_offprocess,
    reset_stores,
)

__all__ = [
    "SimObject",
    "DynamicAttrsMixin",
    "LoadFailsMixin",
    "NondetToken",
    "RequiresFallbackMixin",
    "SilentErrorMixin",
    "UnserializableMixin",
    "DeviceStore",
    "OffProcessHandle",
    "GPU_STORE",
    "REMOTE_STORE",
    "contains_offprocess",
    "reset_stores",
]
