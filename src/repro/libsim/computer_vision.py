"""Simulated computer-vision classes (photutils / torchvision analogues).

Fifteen classes over numpy image arrays: convolution, augmentation,
detection geometry, calibration. The video stream holds an open capture
(unserializable); the detection model regenerates its inference session on
access (FP source); the camera calibration pickles incompletely.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)

_CATEGORY = "computer-vision"


class SimImage(SimObject):
    """Single-channel image with basic point operations."""

    category = _CATEGORY

    def __init__(self, shape: Tuple[int, int] = (32, 32), seed: int = 50) -> None:
        rng = np.random.default_rng(seed)
        self.pixels = rng.random(shape).astype(np.float32)

    def invert(self) -> None:
        self.pixels = 1.0 - self.pixels

    def brightness(self) -> float:
        return float(self.pixels.mean())


class SimImageBatch(SimObject):
    """Stacked batch of images (N, H, W)."""

    category = _CATEGORY

    def __init__(self, n: int = 8, shape: Tuple[int, int] = (16, 16), seed: int = 51) -> None:
        rng = np.random.default_rng(seed)
        self.batch = rng.random((n,) + shape).astype(np.float32)

    def normalize_(self) -> None:
        self.batch = (self.batch - self.batch.mean()) / (self.batch.std() + 1e-8)


class SimConvKernel(SimObject):
    """2-D convolution kernel with an apply method."""

    category = _CATEGORY

    def __init__(self, kind: str = "edge") -> None:
        kernels = {
            "edge": np.array([[-1, -1, -1], [-1, 8, -1], [-1, -1, -1]], dtype=float),
            "blur": np.full((3, 3), 1.0 / 9.0),
        }
        if kind not in kernels:
            raise ValueError(f"unknown kernel kind {kind!r}")
        self.kind = kind
        self.kernel = kernels[kind]

    def apply(self, image: np.ndarray) -> np.ndarray:
        h, w = image.shape
        out = np.zeros((h - 2, w - 2))
        for i in range(h - 2):
            for j in range(w - 2):
                out[i, j] = float((image[i : i + 3, j : j + 3] * self.kernel).sum())
        return out


class SimAugmentationPipeline(SimObject):
    """Ordered augmentation steps over image arrays."""

    category = _CATEGORY

    def __init__(self, steps: Sequence[str] = ("hflip", "normalize")) -> None:
        valid = {"hflip", "vflip", "normalize"}
        unknown = set(steps) - valid
        if unknown:
            raise ValueError(f"unknown augmentation step(s): {sorted(unknown)}")
        self.steps = list(steps)

    def apply(self, image: np.ndarray) -> np.ndarray:
        out = image
        for step in self.steps:
            if step == "hflip":
                out = out[:, ::-1]
            elif step == "vflip":
                out = out[::-1, :]
            elif step == "normalize":
                out = (out - out.mean()) / (out.std() + 1e-8)
        return out


class SimBoundingBoxes(SimObject):
    """Axis-aligned boxes with IoU computation."""

    category = _CATEGORY

    def __init__(self, n: int = 5, seed: int = 52) -> None:
        rng = np.random.default_rng(seed)
        corners = rng.random((n, 2)) * 0.5
        sizes = rng.random((n, 2)) * 0.4 + 0.05
        self.boxes = np.column_stack([corners, corners + sizes])

    @staticmethod
    def iou(a: np.ndarray, b: np.ndarray) -> float:
        x1, y1 = max(a[0], b[0]), max(a[1], b[1])
        x2, y2 = min(a[2], b[2]), min(a[3], b[3])
        inter = max(0.0, x2 - x1) * max(0.0, y2 - y1)
        area_a = (a[2] - a[0]) * (a[3] - a[1])
        area_b = (b[2] - b[0]) * (b[3] - b[1])
        union = area_a + area_b - inter
        return inter / union if union > 0 else 0.0


class SimSegmentationMask(SimObject):
    """Binary mask with morphology-lite operations."""

    category = _CATEGORY

    def __init__(self, shape: Tuple[int, int] = (24, 24), seed: int = 53) -> None:
        rng = np.random.default_rng(seed)
        self.mask = rng.random(shape) > 0.7

    def area_fraction(self) -> float:
        return float(self.mask.mean())

    def dilate_(self) -> None:
        padded = np.pad(self.mask, 1)
        self.mask = (
            padded[:-2, 1:-1] | padded[2:, 1:-1] | padded[1:-1, :-2]
            | padded[1:-1, 2:] | padded[1:-1, 1:-1]
        )


class SimFeatureExtractor(SimObject):
    """Patch-mean feature extractor."""

    category = _CATEGORY

    def __init__(self, patch: int = 4) -> None:
        self.patch = patch

    def extract(self, image: np.ndarray) -> np.ndarray:
        h = (image.shape[0] // self.patch) * self.patch
        w = (image.shape[1] // self.patch) * self.patch
        trimmed = image[:h, :w]
        return trimmed.reshape(
            h // self.patch, self.patch, w // self.patch, self.patch
        ).mean(axis=(1, 3))


class SimImageDepth(SimObject):
    """Source-injection depth estimator (the paper's photutils example)."""

    category = _CATEGORY

    def __init__(self, aperture_radius: float = 3.0, seed: int = 54) -> None:
        rng = np.random.default_rng(seed)
        self.aperture_radius = aperture_radius
        self.noise_floor = float(rng.random() * 0.01)

    def limiting_magnitude(self, flux: float) -> float:
        return -2.5 * np.log10(max(flux, self.noise_floor))


class SimHistogramEq(SimObject):
    """Histogram equalization transform."""

    category = _CATEGORY

    def __init__(self, bins: int = 64) -> None:
        self.bins = bins

    def apply(self, image: np.ndarray) -> np.ndarray:
        histogram, edges = np.histogram(image, bins=self.bins, range=(0.0, 1.0))
        cdf = histogram.cumsum().astype(float)
        cdf /= cdf[-1]
        indices = np.clip(
            np.digitize(image, edges[:-1]) - 1, 0, self.bins - 1
        )
        return cdf[indices]


class SimVideoStream(UnserializableMixin, SimObject):
    """Open video capture with a frame cursor: unserializable."""

    category = _CATEGORY

    def __init__(self, n_frames: int = 60, shape: Tuple[int, int] = (8, 8)) -> None:
        self.n_frames = n_frames
        self.shape = shape
        self.cursor = 0

    def read_frame(self) -> np.ndarray:
        frame = np.full(self.shape, float(self.cursor % 255))
        self.cursor += 1
        return frame


class SimCameraCalibration(SilentErrorMixin, SimObject):
    """Calibration whose distortion solver state pickles incompletely."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.intrinsics = np.eye(3)
        self.fitted_state = {"reprojection_error": 0.21}
        self._install_nondet_marker()


class SimDetectionModel(DynamicAttrsMixin, SimObject):
    """Detector regenerating its inference session on access (FP)."""

    category = _CATEGORY

    def __init__(self, n_classes: int = 10) -> None:
        self.n_classes = n_classes
        self.score_threshold = 0.5


class SimKeypointSet(SimObject):
    """Detected keypoints with pairwise-distance queries."""

    category = _CATEGORY

    def __init__(self, n: int = 12, seed: int = 55) -> None:
        rng = np.random.default_rng(seed)
        self.points = rng.random((n, 2))

    def nearest_pair_distance(self) -> float:
        diffs = self.points[:, None] - self.points[None, :]
        distances = np.linalg.norm(diffs, axis=2)
        np.fill_diagonal(distances, np.inf)
        return float(distances.min())


class SimColorSpace(SimObject):
    """RGB <-> grayscale conversion weights."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.weights = np.array([0.299, 0.587, 0.114])

    def to_gray(self, rgb: np.ndarray) -> np.ndarray:
        return rgb @ self.weights


class SimPyramid(SimObject):
    """Gaussian image pyramid (successive 2x downsampling)."""

    category = _CATEGORY

    def __init__(self, levels: int = 3) -> None:
        self.levels = levels

    def build(self, image: np.ndarray) -> List[np.ndarray]:
        pyramid = [image]
        current = image
        for _ in range(self.levels - 1):
            h = (current.shape[0] // 2) * 2
            w = (current.shape[1] // 2) * 2
            current = current[:h, :w].reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
            pyramid.append(current)
        return pyramid


ALL_CLASSES = [
    SimImage,
    SimImageBatch,
    SimConvKernel,
    SimAugmentationPipeline,
    SimBoundingBoxes,
    SimSegmentationMask,
    SimFeatureExtractor,
    SimImageDepth,
    SimHistogramEq,
    SimVideoStream,
    SimCameraCalibration,
    SimDetectionModel,
    SimKeypointSet,
    SimColorSpace,
    SimPyramid,
]
