"""Simulated distributed-computing classes (pyspark / ray / optuna
analogues).

Eighteen classes. The two headline ones — ``SimSparkSQLFrame`` and
``SimRayDataset`` — keep their partitions in the simulated remote store:
these are the paper's Table 4 classes that CRIU cannot checkpoint (the
data is in other processes) but Kishu's reduction-based checkpointing
handles transparently.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.libsim.base import (
    DynamicAttrsMixin,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
)
from repro.libsim.devices import OffProcessHandle

_CATEGORY = "distributed-computing"


class SimSparkSQLFrame(SimObject):
    """pyspark.sql.DataFrame: partitions live on (simulated) executors."""

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, n_partitions: int = 4, rows_per_partition: int = 32, seed: int = 60) -> None:
        rng = np.random.default_rng(seed)
        self.schema = ["id", "value"]
        self.partitions = [
            OffProcessHandle("remote", rng.random(rows_per_partition))
            for _ in range(n_partitions)
        ]

    def count(self) -> int:
        return sum(len(handle.fetch()) for handle in self.partitions)

    def agg_sum(self) -> float:
        return float(sum(handle.fetch().sum() for handle in self.partitions))


class SimRayDataset(SimObject):
    """ray.data.Dataset: blocks in the (simulated) cluster object store."""

    category = _CATEGORY
    personality = "offprocess"
    _offprocess = True

    def __init__(self, n_blocks: int = 3, block_rows: int = 50, seed: int = 61) -> None:
        rng = np.random.default_rng(seed)
        self.blocks = [
            OffProcessHandle("remote", rng.random(block_rows)) for _ in range(n_blocks)
        ]

    def map_blocks(self, func: Callable[[np.ndarray], np.ndarray]) -> None:
        for handle in self.blocks:
            handle.update(func(handle.fetch()))

    def take_all(self) -> np.ndarray:
        return np.concatenate([handle.fetch() for handle in self.blocks])


class SimRayRemoteFunction(RequiresFallbackMixin, SimObject):
    """@ray.remote function wrapper; its captured closure needs the
    by-value fallback pickler."""

    category = _CATEGORY

    def __init__(self, name: str = "train_shard") -> None:
        self.name = name
        self.num_cpus = 1
        self.invocations = 0

    def remote(self, x: float) -> float:
        self.invocations += 1
        return x * 2.0


class SimFuture(SimObject):
    """Resolved object-ref with a value."""

    category = _CATEGORY

    def __init__(self, value: Any = 42) -> None:
        self.value = value
        self.done = True

    def result(self) -> Any:
        return self.value


class SimTaskGraph(SimObject):
    """DAG of task dependencies with a topological order."""

    category = _CATEGORY

    def __init__(self, edges: Optional[Sequence[Tuple[str, str]]] = None) -> None:
        self.edges = list(edges) if edges is not None else [("load", "clean"), ("clean", "train")]

    def topological_order(self) -> List[str]:
        nodes = {n for edge in self.edges for n in edge}
        incoming = {n: 0 for n in nodes}
        for _, dst in self.edges:
            incoming[dst] += 1
        order, frontier = [], sorted(n for n, k in incoming.items() if k == 0)
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for src, dst in self.edges:
                if src == node:
                    incoming[dst] -= 1
                    if incoming[dst] == 0:
                        frontier.append(dst)
        return order


class SimClusterConfig(SimObject):
    """Cluster resource specification."""

    category = _CATEGORY

    def __init__(self, n_workers: int = 4, cpus_per_worker: int = 8) -> None:
        self.n_workers = n_workers
        self.cpus_per_worker = cpus_per_worker

    def total_cpus(self) -> int:
        return self.n_workers * self.cpus_per_worker


class SimPartitionedArray(SimObject):
    """In-process partitioned array (dask-style, but local)."""

    category = _CATEGORY

    def __init__(self, n: int = 100, n_partitions: int = 4, seed: int = 62) -> None:
        rng = np.random.default_rng(seed)
        self.partitions = np.array_split(rng.random(n), n_partitions)

    def map_partitions(self, func: Callable[[np.ndarray], np.ndarray]) -> None:
        self.partitions = [func(p) for p in self.partitions]

    def compute(self) -> np.ndarray:
        return np.concatenate(self.partitions)


class SimShuffleSpec(SimObject):
    """Shuffle plan: key column and partitioner."""

    category = _CATEGORY

    def __init__(self, key: str = "id", n_output: int = 8) -> None:
        self.key = key
        self.n_output = n_output

    def partition_of(self, key_hash: int) -> int:
        return key_hash % self.n_output


def _rebuild_broadcast(payload: np.ndarray) -> "SimBroadcastVar":
    var = SimBroadcastVar.__new__(SimBroadcastVar)
    var.payload = payload
    return var


class SimBroadcastVar(SimObject):
    """Broadcast variable with a torrent-style custom reduction."""

    category = _CATEGORY
    personality = "custom-reduce"

    def __init__(self, n: int = 64, seed: int = 63) -> None:
        rng = np.random.default_rng(seed)
        self.payload = rng.random(n)

    def __reduce__(self):
        return (_rebuild_broadcast, (self.payload,))

    def value(self) -> np.ndarray:
        return self.payload


class SimAccumulator(SimObject):
    """Add-only distributed counter."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.total = 0.0

    def add(self, value: float) -> None:
        self.total += value


class SimOptunaStudy(SimObject):
    """Hyperparameter study with trial history."""

    category = _CATEGORY

    def __init__(self, direction: str = "minimize") -> None:
        if direction not in ("minimize", "maximize"):
            raise ValueError(f"bad direction {direction!r}")
        self.direction = direction
        self.trials: List[Tuple[Dict[str, float], float]] = []

    def tell(self, params: Dict[str, float], score: float) -> None:
        self.trials.append((params, score))

    def best_trial(self) -> Tuple[Dict[str, float], float]:
        if not self.trials:
            raise ValueError("no trials")
        chooser = min if self.direction == "minimize" else max
        return chooser(self.trials, key=lambda t: t[1])


class SimTrialResult(SimObject):
    """One finished trial."""

    category = _CATEGORY

    def __init__(self, number: int = 0, value: float = 0.5) -> None:
        self.number = number
        self.value = value
        self.state = "COMPLETE"


class SimActorPool(DynamicAttrsMixin, SimObject):
    """Actor pool regenerating liveness views on access (FP source)."""

    category = _CATEGORY

    def __init__(self, n_actors: int = 4) -> None:
        self.n_actors = n_actors
        self.round_robin_position = 0


class SimSchedulerState(SilentErrorMixin, SimObject):
    """Scheduler snapshot whose queue internals pickle incompletely."""

    category = _CATEGORY
    _silently_dropped = ("fitted_state",)

    def __init__(self) -> None:
        self.policy = "fifo"
        self.fitted_state = {"pending": ["task-1", "task-2"]}
        self._install_nondet_marker()


class SimRDDLineage(SimObject):
    """Lineage chain of transformations (Spark RDD analogue)."""

    category = _CATEGORY

    def __init__(self) -> None:
        self.stages = ["textFile", "map", "filter"]

    def with_stage(self, stage: str) -> "SimRDDLineage":
        clone = SimRDDLineage.__new__(SimRDDLineage)
        clone.stages = self.stages + [stage]
        return clone


class SimCheckpointBarrier(SimObject):
    """Flink-style checkpoint barrier marker."""

    category = _CATEGORY

    def __init__(self, checkpoint_id: int = 1) -> None:
        self.checkpoint_id = checkpoint_id
        self.aligned = False

    def align(self) -> None:
        self.aligned = True


class SimWorkerStats(SimObject):
    """Per-worker utilization samples."""

    category = _CATEGORY

    def __init__(self, n_workers: int = 4, n_samples: int = 20, seed: int = 64) -> None:
        rng = np.random.default_rng(seed)
        self.utilization = rng.random((n_workers, n_samples))

    def hottest_worker(self) -> int:
        return int(np.argmax(self.utilization.mean(axis=1)))


class SimPlacementGroup(SimObject):
    """Gang-scheduling resource bundle."""

    category = _CATEGORY

    def __init__(self, bundles: Optional[Sequence[Dict[str, int]]] = None) -> None:
        self.bundles = list(bundles) if bundles is not None else [{"CPU": 2}, {"CPU": 2}]
        self.strategy = "PACK"


ALL_CLASSES = [
    SimSparkSQLFrame,
    SimRayDataset,
    SimRayRemoteFunction,
    SimFuture,
    SimTaskGraph,
    SimClusterConfig,
    SimPartitionedArray,
    SimShuffleSpec,
    SimBroadcastVar,
    SimAccumulator,
    SimOptunaStudy,
    SimTrialResult,
    SimActorPool,
    SimSchedulerState,
    SimRDDLineage,
    SimCheckpointBarrier,
    SimWorkerStats,
    SimPlacementGroup,
]
