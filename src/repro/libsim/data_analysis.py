"""Simulated data-analysis classes (pandas / polars / pyarrow analogues).

Twenty classes covering the serialization personalities observed in the
wild for this category (Table 3 of the paper): plain dataframes and
indexes, an Arrow-style table with a custom reduction, a CSV reader that
needs the fallback pickler, the famously unserializable lazy frame and
streaming scanner, two non-deterministically-pickling planner objects, and
two cache-regenerating profiler/styler classes (false-positive sources).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame import DataFrame, Series
from repro.libsim.base import (
    DynamicAttrsMixin,
    RequiresFallbackMixin,
    SilentErrorMixin,
    SimObject,
    UnserializableMixin,
)

_CATEGORY = "data-analysis"


class SimDataFrame(SimObject):
    """Columnar frame wrapper (pandas.DataFrame analogue)."""

    category = _CATEGORY

    def __init__(self, n_rows: int = 64, n_cols: int = 4, seed: int = 0) -> None:
        self.frame = DataFrame.from_random(n_rows, n_cols, seed=seed)

    def drop_column(self, name: str) -> "SimDataFrame":
        clone = SimDataFrame.__new__(SimDataFrame)
        clone.frame = self.frame.drop(name)
        return clone

    def mean_of(self, name: str) -> float:
        return float(self.frame[name].mean())


class SimSeries(SimObject):
    """Labelled 1-D array (pandas.Series analogue)."""

    category = _CATEGORY

    def __init__(self, n: int = 128, seed: int = 1) -> None:
        rng = np.random.default_rng(seed)
        self.series = Series(rng.random(n), name="values")

    def standardize(self) -> None:
        values = self.series.values
        values -= values.mean()
        std = values.std()
        if std > 0:
            values /= std


class SimIndex(SimObject):
    """Sorted label index with position lookup."""

    category = _CATEGORY

    def __init__(self, n: int = 100) -> None:
        self.labels = np.arange(n) * 2
        self.positions = {int(label): i for i, label in enumerate(self.labels)}

    def locate(self, label: int) -> int:
        return self.positions[label]


class SimCategorical(SimObject):
    """Dictionary-encoded column."""

    category = _CATEGORY

    def __init__(self, categories: Sequence[str] = ("a", "b", "c"), n: int = 90, seed: int = 2) -> None:
        rng = np.random.default_rng(seed)
        self.categories = list(categories)
        self.codes = rng.integers(0, len(self.categories), size=n)

    def value_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.codes, minlength=len(self.categories))
        return {cat: int(c) for cat, c in zip(self.categories, counts)}


class SimMultiFrame(SimObject):
    """Named collection of frames (dict-of-DataFrames workflows)."""

    category = _CATEGORY

    def __init__(self, n_frames: int = 3, n_rows: int = 32) -> None:
        self.frames = {
            f"split_{i}": DataFrame.from_random(n_rows, 3, seed=i) for i in range(n_frames)
        }

    def total_rows(self) -> int:
        return sum(len(frame) for frame in self.frames.values())


class SimRollingWindow(SimObject):
    """Rolling-mean computation state."""

    category = _CATEGORY

    def __init__(self, n: int = 200, window: int = 7, seed: int = 3) -> None:
        rng = np.random.default_rng(seed)
        self.window = window
        self.values = rng.random(n)

    def compute(self) -> np.ndarray:
        kernel = np.ones(self.window) / self.window
        return np.convolve(self.values, kernel, mode="valid")


class SimPivotTable(SimObject):
    """Pivoted aggregation result."""

    category = _CATEGORY

    def __init__(self, n: int = 120, seed: int = 4) -> None:
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 5, size=n)
        values = rng.random(n)
        self.table = DataFrame({"key": keys, "value": values}).groupby_agg(
            "key", "value", "mean"
        )


def _rebuild_arrow_table(column_names: List[str], arrays: List[np.ndarray]) -> "SimArrowTable":
    table = SimArrowTable.__new__(SimArrowTable)
    table.column_names = column_names
    table.arrays = arrays
    return table


class SimArrowTable(SimObject):
    """Arrow-style immutable table with a custom columnar reduction."""

    category = _CATEGORY
    personality = "custom-reduce"

    def __init__(self, n_rows: int = 64, n_cols: int = 3, seed: int = 5) -> None:
        rng = np.random.default_rng(seed)
        self.column_names = [f"f{i}" for i in range(n_cols)]
        self.arrays = [rng.random(n_rows) for _ in range(n_cols)]

    def __reduce__(self):
        return (_rebuild_arrow_table, (self.column_names, self.arrays))

    def num_rows(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0


class SimParquetBatch(SimObject):
    """A decoded parquet row-group."""

    category = _CATEGORY

    def __init__(self, n_rows: int = 48, seed: int = 6) -> None:
        rng = np.random.default_rng(seed)
        self.schema = {"id": "int64", "score": "float64"}
        self.data = {
            "id": np.arange(n_rows),
            "score": rng.random(n_rows),
        }


class SimCsvReader(RequiresFallbackMixin, SimObject):
    """Chunked CSV reader whose parser closure defeats the primary pickler."""

    category = _CATEGORY

    def __init__(self, n_chunks: int = 4, chunk_size: int = 25) -> None:
        self.n_chunks = n_chunks
        self.chunk_size = chunk_size
        self.rows_read = 0

    def read_chunk(self) -> np.ndarray:
        self.rows_read += self.chunk_size
        return np.arange(self.chunk_size, dtype=float)


class SimLazyFrame(UnserializableMixin, SimObject):
    """Deferred query frame — polars.LazyFrame: refuses pickling outright."""

    category = _CATEGORY

    def __init__(self, n_rows: int = 64) -> None:
        self.plan = ["scan", "filter(score > 0.5)", "select(id, score)"]
        self.estimated_rows = n_rows

    def with_step(self, step: str) -> None:
        self.plan.append(step)

    def collect(self) -> DataFrame:
        return DataFrame.from_random(self.estimated_rows, 2, seed=7)


class SimArrowScanner(UnserializableMixin, SimObject):
    """Streaming dataset scanner holding an open cursor: unserializable."""

    category = _CATEGORY

    def __init__(self, n_batches: int = 5) -> None:
        self.n_batches = n_batches
        self.position = 0

    def next_batch(self) -> np.ndarray:
        self.position += 1
        return np.full(8, float(self.position))


class SimQueryPlan(SilentErrorMixin, SimObject):
    """Optimizer plan with volatile node ids: non-deterministic pickling."""

    category = _CATEGORY
    _silently_dropped = ("cost_annotations",)

    def __init__(self, depth: int = 3) -> None:
        self.operators = [f"op_{i}" for i in range(depth)]
        self.cost_annotations = {f"op_{i}": float(i) * 1.5 for i in range(depth)}
        self._install_nondet_marker()


class SimSqlContext(SilentErrorMixin, SimObject):
    """Session-bound SQL context: connection state silently dropped."""

    category = _CATEGORY
    _silently_dropped = ("connection_state",)

    def __init__(self) -> None:
        self.registered_tables = ["t1", "t2"]
        self.connection_state = {"cursor": 42, "txn": "open"}
        self._install_nondet_marker()


class SimStyler(DynamicAttrsMixin, SimObject):
    """Frame styler that regenerates its render cache on access (FP source)."""

    category = _CATEGORY

    def __init__(self, n_rows: int = 16) -> None:
        self.styles = {"highlight": "max", "precision": 3}
        self.n_rows = n_rows


class SimProfiler(DynamicAttrsMixin, SimObject):
    """Dataset profiler that lazily rebuilds summaries on access (FP source)."""

    category = _CATEGORY

    def __init__(self, n_rows: int = 64, seed: int = 8) -> None:
        rng = np.random.default_rng(seed)
        self.sample = rng.random(min(n_rows, 32))
        self.config = {"bins": 10}


class SimInterval(SimObject):
    """Closed numeric interval."""

    category = _CATEGORY

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if high < low:
            raise ValueError("interval upper bound below lower bound")
        self.low = low
        self.high = high

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def width(self) -> float:
        return self.high - self.low


class SimTimeSeries(SimObject):
    """Regularly-sampled time series with lag features."""

    category = _CATEGORY

    def __init__(self, n: int = 150, seed: int = 9) -> None:
        rng = np.random.default_rng(seed)
        trend = np.linspace(0.0, 3.0, n)
        self.timestamps = np.arange(n)
        self.values = trend + rng.normal(0, 0.2, n)

    def lag(self, k: int = 1) -> np.ndarray:
        return np.concatenate([np.full(k, np.nan), self.values[:-k]])

    def difference(self) -> np.ndarray:
        return np.diff(self.values)


class SimResampler(SimObject):
    """Downsampling aggregator (resample('W').mean() analogue)."""

    category = _CATEGORY

    def __init__(self, factor: int = 4) -> None:
        self.factor = factor

    def apply(self, values: np.ndarray) -> np.ndarray:
        n = (len(values) // self.factor) * self.factor
        return values[:n].reshape(-1, self.factor).mean(axis=1)


class SimMergePlan(SimObject):
    """Join specification between two frames."""

    category = _CATEGORY

    def __init__(self, how: str = "inner", on: str = "id") -> None:
        if how not in ("inner", "left", "outer"):
            raise ValueError(f"unsupported join type {how!r}")
        self.how = how
        self.on = on

    def execute(self, left: DataFrame, right: DataFrame) -> DataFrame:
        left_keys = left.column_array(self.on)
        right_keys = right.column_array(self.on)
        common = np.intersect1d(left_keys, right_keys)
        mask = np.isin(left_keys, common)
        return left[mask]


ALL_CLASSES = [
    SimDataFrame,
    SimSeries,
    SimIndex,
    SimCategorical,
    SimMultiFrame,
    SimRollingWindow,
    SimPivotTable,
    SimArrowTable,
    SimParquetBatch,
    SimCsvReader,
    SimLazyFrame,
    SimArrowScanner,
    SimQueryPlan,
    SimSqlContext,
    SimStyler,
    SimProfiler,
    SimInterval,
    SimTimeSeries,
    SimResampler,
    SimMergePlan,
]
