"""Injectable clocks, so retry backoff is testable without real waiting.

:class:`~repro.core.retry.RetryPolicy` takes a ``sleep`` callable;
production uses :class:`SystemClock` (real ``time``), tests use
:class:`VirtualClock`, which records every requested sleep and advances
a virtual timeline instantly — fault tests can then assert the exact
backoff schedule (base, base*mult, …) deterministically.
"""

from __future__ import annotations

import time
from typing import List


class SystemClock:
    """Real wall-clock time; the production default."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class VirtualClock:
    """Deterministic clock: ``sleep`` advances virtual time instantly.

    ``sleeps`` records every backoff delay requested, in order, so tests
    can assert both *that* retries happened and *what* schedule they
    followed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds

    @property
    def total_slept(self) -> float:
        return sum(self.sleeps)
