"""Fault-injecting wrappers that compose over real components.

:class:`FaultInjectingStore` wraps any
:class:`~repro.core.storage.CheckpointStore` and consults a
:class:`~repro.faults.plan.FaultScript` before delegating each
operation. It also keeps an ``op_log`` of every operation attempted —
the fault-free trace is the kill-point universe the crash harness
enumerates. After a :class:`~repro.errors.SimulatedCrash` fires, the
wrapper is *dead*: every further operation raises, like a process whose
storage connection died with it. The harness then "reboots" by reopening
the underlying store (closing a SQLite connection mid-transaction rolls
back, exactly as a real crash would).

:class:`FaultInjectingSerializer` wraps a
:class:`~repro.core.serialization.SerializerChain` the same way for the
``serialize`` operation domain, turning fired rules into
:class:`~repro.errors.SerializationError` so the session's tombstone /
fallback-recomputation path is exercised.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.covariable import CoVarKey
from repro.core.serialization import SerializerChain
from repro.core.storage import (
    CheckpointStore,
    RecoveryReport,
    StoredNode,
    StoredPayload,
)
from repro.errors import (
    PermanentStorageError,
    SerializationError,
    SimulatedCrash,
)
from repro.faults.plan import FaultPlan, FaultScript, _SerializationFaultSignal
from repro.obs import EventType


class FaultInjectingStore(CheckpointStore):
    """A checkpoint store that misbehaves on schedule.

    Faults fire *before* the operation reaches the inner store, so a
    failed write leaves no partial effect of its own — partiality only
    arises from the sequence being cut short, which is precisely what
    the atomic commit protocol must tolerate.
    """

    def __init__(
        self, inner: CheckpointStore, plan: Optional[FaultPlan] = None
    ) -> None:
        self.inner = inner
        self.script: FaultScript = (plan or FaultPlan.none()).script()
        self.op_log: List[str] = []
        self.crashed = False

    # -- gate ------------------------------------------------------------------

    def _gate(self, op: str, detail: str = "") -> None:
        if self.crashed:
            raise PermanentStorageError(
                f"store unreachable: simulated process crash already occurred "
                f"(attempted {op})"
            )
        self.op_log.append(f"{op}:{detail}" if detail else op)
        try:
            self.script.check(op, detail)
        except SimulatedCrash:
            self.crashed = True
            self.observer.event(
                EventType.FAULT_INJECTED, kind="crash", op=op, detail=detail
            )
            raise
        except _SerializationFaultSignal as signal:
            # A serialization rule aimed at a store op degenerates to a
            # permanent storage fault — the nearest meaningful behaviour.
            self.observer.event(
                EventType.FAULT_INJECTED, kind="permanent", op=op, detail=detail
            )
            raise PermanentStorageError(str(signal)) from None
        except Exception as exc:
            self.observer.event(
                EventType.FAULT_INJECTED,
                kind=type(exc).__name__,
                op=op,
                detail=detail,
            )
            raise

    # -- delegated operations --------------------------------------------------

    def write_node(self, node: StoredNode) -> None:
        self._gate("write_node", node.node_id)
        self.inner.write_node(node)

    def read_nodes(self) -> List[StoredNode]:
        self._gate("read_nodes")
        return self.inner.read_nodes()

    def write_payload(self, payload: StoredPayload) -> None:
        self._gate("write_payload", payload.node_id)
        self.inner.write_payload(payload)

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        self._gate("read_payload", node_id)
        return self.inner.read_payload(node_id, key)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        self._gate("payloads_of", node_id)
        return self.inner.payloads_of(node_id)

    def total_payload_bytes(self) -> int:
        return self.inner.total_payload_bytes()

    def begin_checkpoint(self, node_id: str) -> None:
        self._gate("begin_checkpoint", node_id)
        self.inner.begin_checkpoint(node_id)

    def commit_checkpoint(self, node_id: str) -> None:
        self._gate("commit_checkpoint", node_id)
        self.inner.commit_checkpoint(node_id)

    def rollback_checkpoint(self, node_id: str) -> None:
        self._gate("rollback_checkpoint", node_id)
        self.inner.rollback_checkpoint(node_id)

    @property
    def in_checkpoint(self) -> bool:
        return self.inner.in_checkpoint

    def recover(self) -> RecoveryReport:
        # Delegate the sweep, but publish through the wrapper's observer
        # (the inner store usually has none bound): harnesses read
        # ``recovery`` events from the session's log after a reboot.
        report = self.inner.recover()
        return self._record_recovery(report)

    def close(self) -> None:
        self.inner.close()

    # -- harness helpers -------------------------------------------------------

    def checkpoint_op_count(self) -> int:
        """Checkpoint-protocol operations attempted so far — the size of
        the kill-point universe when recorded under a fault-free plan."""
        return self.script.occurrences("checkpoint")


class FaultInjectingSerializer:
    """SerializerChain wrapper driving the ``serialize`` fault domain."""

    def __init__(
        self,
        inner: Optional[SerializerChain] = None,
        plan: Optional[FaultPlan] = None,
        *,
        script: Optional[FaultScript] = None,
    ) -> None:
        self.inner = inner if inner is not None else SerializerChain()
        # Sharing a script with a FaultInjectingStore lets one plan span
        # both serialization and storage domains with one set of counters.
        self.script = script if script is not None else (plan or FaultPlan.none()).script()

    def serialize(
        self, key: CoVarKey, values: Dict[str, Any]
    ) -> Tuple[bytes, str]:
        try:
            self.script.check("serialize", ",".join(sorted(key)))
        except _SerializationFaultSignal as signal:
            raise SerializationError(key, cause=signal) from signal
        return self.inner.serialize(key, values)

    def deserialize(self, data: bytes, serializer: Optional[str]) -> Any:
        return self.inner.deserialize(data, serializer)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
