"""Fault-injecting wrappers that compose over real components.

:class:`FaultInjectingStore` wraps any
:class:`~repro.core.storage.CheckpointStore` and consults a
:class:`~repro.faults.plan.FaultScript` before delegating each
operation. It also keeps an ``op_log`` of every operation attempted —
the fault-free trace is the kill-point universe the crash harness
enumerates. After a :class:`~repro.errors.SimulatedCrash` fires, the
wrapper is *dead*: every further operation raises, like a process whose
storage connection died with it. The harness then "reboots" by reopening
the underlying store (closing a SQLite connection mid-transaction rolls
back, exactly as a real crash would).

:class:`FaultInjectingSerializer` wraps a
:class:`~repro.core.serialization.SerializerChain` the same way for the
``serialize`` operation domain, turning fired rules into
:class:`~repro.errors.SerializationError` so the session's tombstone /
fallback-recomputation path is exercised.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.covariable import CoVarKey
from repro.core.serialization import SerializerChain
from repro.core.storage import (
    CheckpointStore,
    RecoveryReport,
    StoredNode,
    StoredPayload,
)
from repro.errors import (
    PermanentStorageError,
    SerializationError,
    SimulatedCrash,
)
from repro.faults.plan import FaultPlan, FaultScript, _SerializationFaultSignal
from repro.obs import EventType


class FaultInjectingStore(CheckpointStore):
    """A checkpoint store that misbehaves on schedule.

    Faults fire *before* the operation reaches the inner store, so a
    failed write leaves no partial effect of its own — partiality only
    arises from the sequence being cut short, which is precisely what
    the atomic commit protocol must tolerate.
    """

    def __init__(
        self, inner: CheckpointStore, plan: Optional[FaultPlan] = None
    ) -> None:
        self.inner = inner
        self.script: FaultScript = (plan or FaultPlan.none()).script()
        self.op_log: List[str] = []
        # Crash state is shared with every for_session() sibling view:
        # one simulated disk died for all sessions at once.
        self._crash_cell: List[bool] = [False]

    @property
    def crashed(self) -> bool:
        return self._crash_cell[0]

    @crashed.setter
    def crashed(self, value: bool) -> None:
        self._crash_cell[0] = value

    @property
    def session_id(self) -> str:  # type: ignore[override]
        return self.inner.session_id

    def for_session(self, session_id: str, **kwargs: Any) -> "FaultInjectingStore":
        """A sibling wrapper over the inner store's session view, sharing
        this wrapper's fault script, op log, and crash state — so one
        fault plan spans the whole fleet."""
        view = FaultInjectingStore.__new__(FaultInjectingStore)
        view.inner = self.inner.for_session(session_id, **kwargs)
        view.script = self.script
        view.op_log = self.op_log
        view._crash_cell = self._crash_cell
        return view

    # -- gate ------------------------------------------------------------------

    def _gate(self, op: str, detail: str = "") -> None:
        if self.crashed:
            raise PermanentStorageError(
                f"store unreachable: simulated process crash already occurred "
                f"(attempted {op})"
            )
        self.op_log.append(f"{op}:{detail}" if detail else op)
        try:
            self.script.check(op, detail)
        except SimulatedCrash:
            self.crashed = True
            self.observer.event(
                EventType.FAULT_INJECTED, kind="crash", op=op, detail=detail
            )
            raise
        except _SerializationFaultSignal as signal:
            # A serialization rule aimed at a store op degenerates to a
            # permanent storage fault — the nearest meaningful behaviour.
            self.observer.event(
                EventType.FAULT_INJECTED, kind="permanent", op=op, detail=detail
            )
            raise PermanentStorageError(str(signal)) from None
        except Exception as exc:
            self.observer.event(
                EventType.FAULT_INJECTED,
                kind=type(exc).__name__,
                op=op,
                detail=detail,
            )
            raise

    # -- delegated operations --------------------------------------------------

    def write_node(self, node: StoredNode) -> None:
        self._gate("write_node", node.node_id)
        self.inner.write_node(node)

    def read_nodes(self) -> List[StoredNode]:
        self._gate("read_nodes")
        return self.inner.read_nodes()

    def write_payload(self, payload: StoredPayload) -> None:
        self._gate("write_payload", payload.node_id)
        self.inner.write_payload(payload)

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        self._gate("read_payload", node_id)
        return self.inner.read_payload(node_id, key)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        self._gate("payloads_of", node_id)
        return self.inner.payloads_of(node_id)

    def total_payload_bytes(self) -> int:
        return self.inner.total_payload_bytes()

    def begin_checkpoint(self, node_id: str) -> None:
        self._gate("begin_checkpoint", node_id)
        self.inner.begin_checkpoint(node_id)

    def commit_checkpoint(self, node_id: str) -> None:
        self._gate("commit_checkpoint", node_id)
        self.inner.commit_checkpoint(node_id)

    def rollback_checkpoint(self, node_id: str) -> None:
        self._gate("rollback_checkpoint", node_id)
        self.inner.rollback_checkpoint(node_id)

    @property
    def in_checkpoint(self) -> bool:
        return self.inner.in_checkpoint

    def recover(self) -> RecoveryReport:
        # Delegate the sweep, but publish through the wrapper's observer
        # (the inner store usually has none bound): harnesses read
        # ``recovery`` events from the session's log after a reboot.
        report = self.inner.recover()
        return self._record_recovery(report)

    def close(self) -> None:
        self.inner.close()

    # -- ungated pass-throughs -------------------------------------------------
    # Lock hygiene, barriers, and registry metadata are not storage I/O:
    # they neither extend the kill-point universe nor consult the script.

    def release_crashed_checkpoint(self) -> None:
        self.inner.release_crashed_checkpoint()

    def flush(self) -> None:
        self.inner.flush()

    def drain(self) -> None:
        self.inner.drain()

    def sync(self) -> None:
        self.inner.sync()

    def list_sessions(self):
        return self.inner.list_sessions()

    def register_session(self, session_id: str, notebook_path: Optional[str] = None, *, status: str = "detached") -> None:
        self.inner.register_session(session_id, notebook_path, status=status)

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        self.inner.rename_session(session_id, notebook_path)

    def set_session_status(self, session_id: str, status: str) -> None:
        self.inner.set_session_status(session_id, status)

    def has_session(self, session_id: str) -> bool:
        return self.inner.has_session(session_id)

    # -- harness helpers -------------------------------------------------------

    def checkpoint_op_count(self) -> int:
        """Checkpoint-protocol operations attempted so far — the size of
        the kill-point universe when recorded under a fault-free plan."""
        return self.script.occurrences("checkpoint")


class SlowStore(CheckpointStore):
    """A store whose *writes* take a configurable wall-clock delay.

    The benchmark companion to :class:`FaultInjectingStore`: the service
    acceptance criterion is that ``commit()`` enqueue latency stays flat
    while the background writer absorbs the injected delay, and this
    wrapper is the injected delay. Reads are untouched.
    """

    def __init__(self, inner: CheckpointStore, write_delay: float) -> None:
        self.inner = inner
        self.write_delay = write_delay

    def _stall(self) -> None:
        if self.write_delay > 0:
            time.sleep(self.write_delay)

    @property
    def session_id(self) -> str:  # type: ignore[override]
        return self.inner.session_id

    def for_session(self, session_id: str, **kwargs: Any) -> "SlowStore":
        return SlowStore(self.inner.for_session(session_id, **kwargs), self.write_delay)

    def write_node(self, node: StoredNode) -> None:
        self._stall()
        self.inner.write_node(node)

    def write_payload(self, payload: StoredPayload) -> None:
        self._stall()
        self.inner.write_payload(payload)

    def begin_checkpoint(self, node_id: str) -> None:
        self.inner.begin_checkpoint(node_id)

    def commit_checkpoint(self, node_id: str) -> None:
        self._stall()
        self.inner.commit_checkpoint(node_id)

    def rollback_checkpoint(self, node_id: str) -> None:
        self.inner.rollback_checkpoint(node_id)

    @property
    def in_checkpoint(self) -> bool:
        return self.inner.in_checkpoint

    def read_nodes(self) -> List[StoredNode]:
        return self.inner.read_nodes()

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        return self.inner.read_payload(node_id, key)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        return self.inner.payloads_of(node_id)

    def total_payload_bytes(self) -> int:
        return self.inner.total_payload_bytes()

    def recover(self) -> RecoveryReport:
        report = self.inner.recover()
        return self._record_recovery(report)

    def release_crashed_checkpoint(self) -> None:
        self.inner.release_crashed_checkpoint()

    def flush(self) -> None:
        self.inner.flush()

    def drain(self) -> None:
        self.inner.drain()

    def sync(self) -> None:
        self.inner.sync()

    def list_sessions(self):
        return self.inner.list_sessions()

    def register_session(self, session_id: str, notebook_path: Optional[str] = None, *, status: str = "detached") -> None:
        self.inner.register_session(session_id, notebook_path, status=status)

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        self.inner.rename_session(session_id, notebook_path)

    def set_session_status(self, session_id: str, status: str) -> None:
        self.inner.set_session_status(session_id, status)

    def has_session(self, session_id: str) -> bool:
        return self.inner.has_session(session_id)

    def close(self) -> None:
        self.inner.close()


class FaultInjectingSerializer:
    """SerializerChain wrapper driving the ``serialize`` fault domain."""

    def __init__(
        self,
        inner: Optional[SerializerChain] = None,
        plan: Optional[FaultPlan] = None,
        *,
        script: Optional[FaultScript] = None,
    ) -> None:
        self.inner = inner if inner is not None else SerializerChain()
        # Sharing a script with a FaultInjectingStore lets one plan span
        # both serialization and storage domains with one set of counters.
        self.script = script if script is not None else (plan or FaultPlan.none()).script()

    def serialize(
        self, key: CoVarKey, values: Dict[str, Any]
    ) -> Tuple[bytes, str]:
        try:
            self.script.check("serialize", ",".join(sorted(key)))
        except _SerializationFaultSignal as signal:
            raise SerializationError(key, cause=signal) from signal
        return self.inner.serialize(key, values)

    def deserialize(self, data: bytes, serializer: Optional[str]) -> Any:
        return self.inner.deserialize(data, serializer)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
