"""Deterministic fault injection for crash-consistency testing.

This package is the test substrate for Kishu's durability guarantees:
seed-driven :class:`FaultPlan`\\ s describe *when* storage misbehaves
(fail the Nth write, tear a checkpoint after K payloads, crash at an
enumerated kill-point) and *how* (transient vs. permanent
:class:`~repro.errors.StorageError`, serialization failure, or
:class:`~repro.errors.SimulatedCrash`); :class:`FaultInjectingStore`
composes over any :class:`~repro.core.storage.CheckpointStore` backend
and executes the plan; :class:`VirtualClock` lets retry backoff run
without real sleeping.
"""

from repro.faults.clock import SystemClock, VirtualClock
from repro.faults.injector import FaultInjectingSerializer, FaultInjectingStore
from repro.faults.plan import (
    CHECKPOINT_OPS,
    WRITE_OPS,
    FaultPlan,
    FaultRule,
    FaultScript,
)

__all__ = [
    "CHECKPOINT_OPS",
    "WRITE_OPS",
    "FaultInjectingSerializer",
    "FaultInjectingStore",
    "FaultPlan",
    "FaultRule",
    "FaultScript",
    "SystemClock",
    "VirtualClock",
]
