"""Fault plans: deterministic, seed-driven schedules of storage misbehaviour.

A :class:`FaultPlan` is an immutable list of :class:`FaultRule`\\ s. Each
rule names an *operation domain* (one store method, or a group like
``"write"``), the occurrence index within that domain at which it fires,
how many consecutive occurrences it affects, and the fault ``kind``:

* ``"transient"`` — raises :class:`~repro.errors.TransientStorageError`;
  the retry layer should absorb it.
* ``"permanent"`` — raises :class:`~repro.errors.PermanentStorageError`;
  retrying is futile, the writer must degrade (tombstone) or abort.
* ``"crash"`` — raises :class:`~repro.errors.SimulatedCrash`, modelling
  process death at that kill-point; the store wrapper goes dead until
  the harness "reboots" it.
* ``"serialization"`` — consumed by
  :class:`~repro.faults.injector.FaultInjectingSerializer` to make a
  co-variable unserializable.

Execution state (occurrence counters, exhausted rules) lives in a
:class:`FaultScript`, created per run, so one plan can drive many runs —
including the replay-under-every-kill-point loops of the crash harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    PermanentStorageError,
    SimulatedCrash,
    TransientStorageError,
)

#: Store mutation operations (the "write" domain).
WRITE_OPS = ("write_node", "write_payload")

#: Every operation of the atomic checkpoint protocol, in the order the
#: session issues them — the kill-point universe for crash enumeration.
CHECKPOINT_OPS = (
    "begin_checkpoint",
    "write_payload",
    "write_node",
    "commit_checkpoint",
)

_KINDS = ("transient", "permanent", "crash", "serialization")


def _domains_of(op: str) -> Tuple[str, ...]:
    """Domains a concrete operation belongs to, most specific first."""
    domains = [op]
    if op in WRITE_OPS:
        domains.append("write")
    if op in CHECKPOINT_OPS:
        domains.append("checkpoint")
    domains.append("*")
    return tuple(domains)


@dataclass(frozen=True)
class FaultRule:
    """Fire ``kind`` on occurrences [index, index + times) of ``op``.

    ``times > 1`` models a fault that persists across retries: each retry
    is a new occurrence of the domain, so ``times=2`` fails the original
    attempt and its first retry, then lets the second retry through.
    """

    op: str
    index: int
    kind: str
    times: int = 1
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.index < 0 or self.times < 1:
            raise ValueError("index must be >= 0 and times >= 1")

    def matches(self, domain: str, occurrence: int) -> bool:
        return self.op == domain and self.index <= occurrence < self.index + self.times


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults; build via the named constructors."""

    rules: Tuple[FaultRule, ...] = ()
    seed: Optional[int] = None

    # -- named constructors ----------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """No faults — used to record a run's op trace for enumeration."""
        return cls()

    @classmethod
    def fail_nth_write(
        cls, n: int, *, kind: str = "transient", times: int = 1
    ) -> "FaultPlan":
        """Fail the n-th store mutation (0-based, across nodes/payloads)."""
        return cls(rules=(FaultRule("write", n, kind, times, note=f"nth-write:{n}"),))

    @classmethod
    def torn_after_payloads(cls, k: int) -> "FaultPlan":
        """Crash after exactly ``k`` payload writes landed — the classic
        torn-checkpoint scenario the commit protocol must mask."""
        return cls(
            rules=(FaultRule("write_payload", k, "crash", note=f"torn-after:{k}"),)
        )

    @classmethod
    def crash_at_checkpoint_op(cls, index: int) -> "FaultPlan":
        """Crash at the ``index``-th checkpoint-protocol operation — the
        enumeration axis of the kill-point harness."""
        return cls(
            rules=(FaultRule("checkpoint", index, "crash", note=f"kill-point:{index}"),)
        )

    @classmethod
    def serialization_failure(cls, index: int, *, times: int = 1) -> "FaultPlan":
        """Make the ``index``-th serialization attempt fail."""
        return cls(rules=(FaultRule("serialize", index, "serialization", times),))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        max_rules: int = 3,
        horizon: int = 25,
        kinds: Sequence[str] = ("transient", "transient", "permanent", "serialization"),
        max_times: int = 3,
    ) -> "FaultPlan":
        """Seed-driven random plan: same seed, same faults, every run.

        ``kinds`` is sampled uniformly, so repeats act as weights (the
        default is transient-heavy). ``max_times`` stays below the default
        retry budget so transient faults remain absorbable.
        """
        rng = random.Random(seed)
        rules: List[FaultRule] = []
        for _ in range(rng.randint(1, max_rules)):
            kind = rng.choice(list(kinds))
            if kind == "serialization":
                op = "serialize"
            else:
                op = rng.choice(["write", "write_payload", "write_node", "checkpoint"])
            times = rng.randint(1, max_times) if kind == "transient" else 1
            rules.append(
                FaultRule(
                    op=op,
                    index=rng.randrange(horizon),
                    kind=kind,
                    times=times,
                    note=f"random(seed={seed})",
                )
            )
        return cls(rules=tuple(rules), seed=seed)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return FaultPlan(rules=self.rules + (rule,), seed=self.seed)

    def script(self) -> "FaultScript":
        return FaultScript(self)


class FaultScript:
    """Mutable execution state of one run of a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seen: Dict[str, int] = {}
        self.fired: List[Tuple[FaultRule, str]] = []

    def occurrences(self, domain: str) -> int:
        return self._seen.get(domain, 0)

    def check(self, op: str, detail: str = "") -> None:
        """Record one occurrence of ``op``; raise if a rule fires.

        The first matching rule (most specific domain, then plan order)
        wins; its firing is logged in :attr:`fired` either way.
        """
        fired: Optional[FaultRule] = None
        where = f"{op}#{self._seen.get(op, 0)}" + (f" ({detail})" if detail else "")
        for domain in _domains_of(op):
            occurrence = self._seen.get(domain, 0)
            self._seen[domain] = occurrence + 1
            if fired is None:
                for rule in self.plan.rules:
                    if rule.matches(domain, occurrence):
                        fired = rule
                        break
        if fired is None:
            return
        self.fired.append((fired, where))
        label = fired.note or f"{fired.op}[{fired.index}]"
        if fired.kind == "transient":
            raise TransientStorageError(f"injected transient fault ({label}) at {where}")
        if fired.kind == "permanent":
            raise PermanentStorageError(f"injected permanent fault ({label}) at {where}")
        if fired.kind == "crash":
            raise SimulatedCrash(where)
        # "serialization" rules are interpreted by FaultInjectingSerializer,
        # which calls check("serialize", ...) and maps this into a
        # SerializationError carrying the co-variable's names.
        raise _SerializationFaultSignal(label, where)


class _SerializationFaultSignal(Exception):
    """Internal: tells FaultInjectingSerializer a serialization rule fired."""

    def __init__(self, label: str, where: str) -> None:
        super().__init__(f"injected serialization fault ({label}) at {where}")
        self.label = label
        self.where = where
