"""AST visitor computing per-cell effect sets (DESIGN.md §8).

:func:`analyze_cell` parses a cell and walks it with :class:`EffectVisitor`
to produce a :class:`~repro.analysis.effects.CellEffects`. The visitor
tracks two orthogonal dimensions:

* **scope** — a stack of module / class / function / lambda / comprehension
  scopes, each with its pre-collected local-binding set, so that only
  accesses resolving to the cell's global namespace are reported (a
  function-local ``x = 1`` is not a cell write; a ``global x; x = 1`` is);
* **conditionality** — a nesting counter incremented inside any region a
  successful execution may skip (branch arms, loop bodies, ``try`` bodies
  and handlers, short-circuit tails, comprehension elements, function and
  lambda bodies). Accesses at depth zero are *definite*; the runtime
  cross-validator may safely require them to appear in the access record.

Escape hatches (``exec``, ``globals()``, star imports, ``setattr``, frame
introspection, same-cell module patching) are reported with their spans;
see :class:`~repro.analysis.effects.EscapeKind` for the taxonomy.
"""

from __future__ import annotations

import ast
import builtins
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import CellEffects, Escape, EscapeKind, Span
from repro.analysis.typetrack import (
    INSTANCE,
    CellResolver,
    ResolvedCall,
    StubContext,
    stub_call_mutates,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.summaries import FunctionSummary, SummaryView

#: Callables whose invocation executes code the AST cannot see.
EXEC_EVAL_NAMES = frozenset({"exec", "eval", "compile"})
#: Callables returning the raw namespace mapping.
NAMESPACE_NAMES = frozenset({"globals", "locals", "vars"})
#: Callables that rebind or unbind attributes under computed names.
REFLECTION_NAMES = frozenset({"setattr", "delattr"})
#: Names through which modules are loaded dynamically.
DYNAMIC_IMPORT_NAMES = frozenset({"__import__", "importlib"})
#: Attribute names that reach interpreter frames or raw ``__dict__``s.
FRAME_ATTRS = frozenset(
    {"_getframe", "currentframe", "f_globals", "f_locals", "f_back",
     "tb_frame", "gi_frame", "__globals__"}
)

_SCOPE_MODULE = "module"
_SCOPE_CLASS = "class"
_SCOPE_FUNCTION = "function"
_SCOPE_LAMBDA = "lambda"
_SCOPE_COMPREHENSION = "comprehension"

#: Scope kinds whose bindings are invisible to nested scopes when
#: resolving reads (class bodies do not form closures).
_CLOSURE_SCOPES = (_SCOPE_FUNCTION, _SCOPE_LAMBDA, _SCOPE_COMPREHENSION)


class _Scope:
    """One lexical scope with its statically collected binding set."""

    __slots__ = ("kind", "local_names", "global_names")

    def __init__(self, kind: str, local_names: Set[str], global_names: Set[str]) -> None:
        self.kind = kind
        self.local_names = local_names
        self.global_names = global_names


def _collect_bindings(
    body: Sequence[ast.stmt], params: Sequence[str] = ()
) -> Tuple[Set[str], Set[str]]:
    """Names bound locally in a scope body, and names declared ``global``.

    Mirrors the compiler's symbol-table pass closely enough for effect
    analysis: assignment targets, ``for``/``with``/``except`` binders,
    imports, nested ``def``/``class`` names, walrus targets (which bind in
    the nearest non-comprehension scope, so walruses inside comprehensions
    still land here), and ``match`` captures. Does not descend into nested
    function/class/lambda bodies — their bindings are their own.
    """
    local_names: Set[str] = set(params)
    global_names: Set[str] = set()

    def collect_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    def collect_expr(node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Lambda):
                continue  # bindings inside belong to the lambda
            if isinstance(child, ast.NamedExpr) and isinstance(
                child.target, ast.Name
            ):
                local_names.add(child.target.id)

    def collect_stmt(stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local_names.add(stmt.name)
            for decorator in stmt.decorator_list:
                collect_expr(decorator)
            return  # do not descend into the nested body
        if isinstance(stmt, ast.Global):
            global_names.update(stmt.names)
            return
        if isinstance(stmt, ast.Nonlocal):
            # Binds in an enclosing function; not local here, not global.
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                collect_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                collect_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            collect_target(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            collect_target(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    collect_target(item.optional_vars)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local_names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    local_names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                collect_target(target)
        # Walrus targets hide anywhere an expression can appear.
        for child_expr in ast.iter_child_nodes(stmt):
            if isinstance(child_expr, ast.expr):
                collect_expr(child_expr)
        # Recurse into nested statement blocks of compound statements.
        for field_name in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, field_name, None)
            if isinstance(nested, list):
                for nested_stmt in nested:
                    if isinstance(nested_stmt, ast.stmt):
                        collect_stmt(nested_stmt)
        for handler in getattr(stmt, "handlers", []) or []:
            if isinstance(handler, ast.ExceptHandler):
                if handler.name:
                    local_names.add(handler.name)
                for nested_stmt in handler.body:
                    collect_stmt(nested_stmt)
        match_cases = getattr(stmt, "cases", None)
        if match_cases:
            for case in match_cases:
                for pattern_node in ast.walk(case.pattern):
                    captured = getattr(pattern_node, "name", None)
                    if isinstance(captured, str):
                        local_names.add(captured)
                for nested_stmt in case.body:
                    collect_stmt(nested_stmt)

    for statement in body:
        collect_stmt(statement)
    local_names -= global_names
    return local_names, global_names


def is_summarizable_def(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> bool:
    """Whether a def's body effects can live in a function summary.

    Decorated functions are excluded: a decorator may call the body at
    definition time or replace the function with something whose effects
    the summary does not describe, so their body escapes stay pinned to
    the def cell exactly as before PR 8.
    """
    return not node.decorator_list


class EffectVisitor(ast.NodeVisitor):
    """Computes the :class:`CellEffects` of one parsed cell.

    When ``summaries`` is provided (a resolved per-cell
    :class:`~repro.analysis.summaries.SummaryView`), the visitor becomes
    interprocedural: a call ``f(x)`` to a summarized helper expands to the
    helper's global effects at the call site, and escapes found inside
    summarizable top-level def bodies are *deferred* — they resurface at
    call sites through the summary instead of escalating the def cell
    (where the body never ran).
    """

    def __init__(
        self,
        summaries: "Optional[SummaryView]" = None,
        stubs: Optional[CellResolver] = None,
    ) -> None:
        self.effects = CellEffects()
        self._summaries = summaries
        #: Per-cell stub resolver (library effect stubs, DESIGN.md §15);
        #: ``None`` disables stub consultation entirely.
        self._stubs = stubs
        self._escapes: List[Escape] = []
        self._deferred: List[Escape] = []
        self._scopes: List[_Scope] = []
        self._conditional_depth = 0
        #: >0 while visiting the body of a summarizable top-level def;
        #: name effects are skipped (they belong to the summary) and
        #: escapes are routed to the deferred list.
        self._defer_depth = 0
        #: Module names imported by this cell; attribute assignment on one
        #: of these is flagged as a module-patch escape.
        self._imported_modules: Set[str] = set()
        #: ids of Name nodes serving as the direct callee of a Call, and
        #: of sole-RHS Names of simple top-level alias assignments — loads
        #: exempt from the unsafe-summary aliasing check.
        self._callee_name_ids: Set[int] = set()
        self._alias_rhs_ids: Set[int] = set()

    # -- entry point -------------------------------------------------------

    def analyze(self, module: ast.Module) -> CellEffects:
        local_names, global_names = _collect_bindings(module.body)
        self._scopes = [_Scope(_SCOPE_MODULE, local_names, global_names)]
        for statement in module.body:
            self.visit(statement)
        self.effects.escapes = tuple(self._escapes)
        self.effects.deferred_escapes = tuple(self._deferred)
        return self.effects

    # -- scope and conditionality helpers ----------------------------------

    @contextmanager
    def _scope(self, kind: str, local_names: Set[str], global_names: Set[str]) -> Iterator[None]:
        self._scopes.append(_Scope(kind, local_names, global_names))
        try:
            yield
        finally:
            self._scopes.pop()

    @contextmanager
    def _conditional(self) -> Iterator[None]:
        self._conditional_depth += 1
        try:
            yield
        finally:
            self._conditional_depth -= 1

    @property
    def _definite(self) -> bool:
        return self._conditional_depth == 0

    def _resolves_global(self, name: str) -> bool:
        """True when a Load of ``name`` can reach the cell's globals."""
        for index in range(len(self._scopes) - 1, -1, -1):
            scope = self._scopes[index]
            if name in scope.global_names:
                return True
            if scope.kind == _SCOPE_CLASS and index != len(self._scopes) - 1:
                continue  # class bindings are invisible to nested scopes
            if name in scope.local_names:
                return scope.kind == _SCOPE_MODULE
        return True  # unbound anywhere -> global (or builtin) lookup

    def _binds_global(self, name: str, *, skip_comprehensions: bool = False) -> bool:
        """True when a Store/Del of ``name`` rebinds the cell's globals."""
        for index in range(len(self._scopes) - 1, -1, -1):
            scope = self._scopes[index]
            if skip_comprehensions and scope.kind == _SCOPE_COMPREHENSION:
                continue
            if name in scope.global_names:
                return True
            return scope.kind == _SCOPE_MODULE
        return True

    # -- effect recording --------------------------------------------------

    def _read(self, name: str) -> None:
        if self._defer_depth:
            return  # belongs to the enclosing def's summary
        if self._resolves_global(name):
            (self.effects.reads if self._definite
             else self.effects.conditional_reads).add(name)

    def _write(
        self,
        name: str,
        node: Optional[ast.AST] = None,
        *,
        skip_comprehensions: bool = False,
    ) -> None:
        if self._binds_global(name, skip_comprehensions=skip_comprehensions):
            if not self._defer_depth:
                (self.effects.writes if self._definite
                 else self.effects.conditional_writes).add(name)
            self._check_hidden_global_store(name, node, "assignment to")

    def _delete(self, name: str, node: Optional[ast.AST] = None) -> None:
        if self._binds_global(name):
            if not self._defer_depth:
                (self.effects.deletes if self._definite
                 else self.effects.conditional_deletes).add(name)
            self._check_hidden_global_store(name, node, "deletion of")

    def _check_hidden_global_store(
        self, name: str, node: Optional[ast.AST], action: str
    ) -> None:
        # A global-binding store issued from inside a nested scope compiles
        # to STORE_GLOBAL / DELETE_GLOBAL, which bypasses the patched
        # dict's __setitem__ / __delitem__ — the rebinding leaves no trace
        # in the access record, so it must be treated as an escape.
        if node is not None and self._scopes[-1].kind != _SCOPE_MODULE:
            self._escape(
                EscapeKind.HIDDEN_GLOBAL_STORE,
                node,
                f"{action} global {name!r} from a nested scope "
                "(compiles to STORE_GLOBAL, invisible to tracking)",
            )

    def _escape(self, kind: EscapeKind, node: ast.AST, detail: str) -> None:
        escape = Escape(kind=kind, span=Span.of(node), detail=detail)
        if self._defer_depth:
            self._deferred.append(escape)
        else:
            self._escapes.append(escape)

    # -- interprocedural expansion (summary mode) ---------------------------

    def _interprocedural_here(self) -> bool:
        """True when code at the current scope executes at cell time.

        Calls inside function/lambda bodies run (if ever) at call time —
        their effects belong to the enclosing function's summary, not to
        this cell — so expansion applies only outside such scopes.
        Comprehension and class-body scopes execute eagerly and qualify.
        """
        return self._summaries is not None and not any(
            scope.kind in (_SCOPE_FUNCTION, _SCOPE_LAMBDA)
            for scope in self._scopes
        )

    def _summary_for(self, name: str) -> "Optional[FunctionSummary]":
        if self._summaries is None or not self._resolves_global(name):
            return None
        return self._summaries.get(name)

    def _expand_call(self, node: ast.Call, summary: "FunctionSummary") -> None:
        """Fold a summarized callee's effects into this cell at the call.

        Everything lands in the *conditional* sets: body paths are
        branch-dependent, and summary-expanded accesses must never become
        definite (a definite access the runtime record lacks would
        escalate the cell — reads from called bodies *are* recorded by
        the patched namespace, but only on executed paths).
        """
        effects = self.effects
        effects.summary_expansions += 1
        effects.summary_reads |= summary.reads
        effects.conditional_reads |= summary.reads
        effects.summary_writes |= summary.writes
        effects.conditional_writes |= summary.writes
        effects.summary_deletes |= summary.deletes
        effects.conditional_deletes |= summary.deletes
        effects.summary_mutations |= summary.global_mutations
        effects.conditional_reads |= summary.global_mutations
        for escape in summary.escapes:
            if (
                escape.kind is EscapeKind.HIDDEN_GLOBAL_STORE
                and not summary.calls_unknown
            ):
                # Compensated: the store targets are all in the summary's
                # transitive write/delete sets (the same fixpoint produced
                # both), which the session folds into the runtime record —
                # targeted detection covers them without check-all
                # escalation. Only an unknown callee, whose stores the
                # fixpoint cannot bound, forces the escape through.
                continue
            self._escape(
                escape.kind,
                node,
                f"call to {summary.name}() reaches: {escape.detail}",
            )
        # Map call arguments onto parameters the body may mutate, and
        # surface callback effects for parameters the body may invoke.
        self._expand_call_args(node, summary)

    def _expand_call_args(
        self, node: ast.Call, summary: "FunctionSummary"
    ) -> None:
        params: Tuple[str, ...] = summary.params
        kwonly: Tuple[str, ...] = summary.kwonly
        vararg = summary.vararg
        kwarg = summary.kwarg
        mutated_params = summary.mutated_params
        calls_params = summary.calls_params
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args) or any(
            keyword.arg is None for keyword in node.keywords
        )

        pairs: List[Tuple[Optional[str], ast.expr]] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                pairs.append((None, arg.value))
            elif position < len(params):
                pairs.append((params[position], arg))
            else:
                pairs.append((vararg, arg))
        for keyword in node.keywords:
            if keyword.arg is None:
                pairs.append((None, keyword.value))
            elif keyword.arg in params or keyword.arg in kwonly:
                pairs.append((keyword.arg, keyword.value))
            else:
                pairs.append((kwarg, keyword.value))

        for param, expression in pairs:
            mutates = (
                param in mutated_params
                if (param is not None and not has_star)
                else bool(mutated_params)
            )
            if mutates:
                for arg_name in self._global_names_in(expression):
                    self.effects.summary_mutations.add(arg_name)
            invokes = (
                param in calls_params
                if (param is not None and not has_star)
                else bool(calls_params)
            )
            if invokes and isinstance(expression, ast.Name):
                callback = self._summary_for(expression.id)
                if callback is not None and callback is not summary:
                    self._expand_call(node, callback)

    def _global_names_in(self, expression: ast.expr) -> List[str]:
        names: List[str] = []
        for child in ast.walk(expression):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if self._resolves_global(child.id) and not hasattr(
                    builtins, child.id
                ):
                    names.append(child.id)
        return sorted(set(names))

    def _check_summary_alias(self, node: ast.Name) -> None:
        """Fold a helper loaded in non-call position into this cell.

        ``cb = helper`` feeding a tracked alias assignment is exempt (the
        summary table follows simple aliases); any other non-callee load
        — passed as a callback to ``map``/``sorted``, stored in a
        structure — may lead to an invocation the analysis cannot see,
        possibly *within this very cell*. The helper's full summary folds
        in conservatively: its reads/writes/mutations become the cell's
        (conditional) effects and its deferred escapes surface here —
        the closure that keeps def-site deferral sound.
        """
        if id(node) in self._callee_name_ids:
            return  # direct callees escalate in visit_Call when stale
        if not self._interprocedural_here():
            return
        summary = self._summary_for(node.id)
        if summary is None:
            if self._resolves_global(node.id) and self._summaries.is_invalidated(
                node.id
            ):
                # Applies even to a tracked ``alias = helper`` RHS: the
                # table cannot follow an alias of a *dead* summary, so
                # any load of the name may lead to an invocation with
                # unknowable effects.
                self._escape(
                    EscapeKind.STALE_SUMMARY_CALL,
                    node,
                    f"{node.id} used after its function summary was "
                    f"invalidated; effects unknown",
                )
            return
        if id(node) in self._alias_rhs_ids:
            return  # tracked alias of a live summary — the table follows it
        effects = self.effects
        effects.summary_expansions += 1
        effects.summary_reads |= summary.reads
        effects.conditional_reads |= summary.reads
        effects.summary_writes |= summary.writes
        effects.conditional_writes |= summary.writes
        effects.summary_deletes |= summary.deletes
        effects.conditional_deletes |= summary.deletes
        effects.summary_mutations |= summary.global_mutations
        effects.conditional_reads |= summary.global_mutations
        for escape in summary.escapes:
            if (
                escape.kind is EscapeKind.HIDDEN_GLOBAL_STORE
                and not summary.calls_unknown
            ):
                continue  # compensated via the folded write sets, as above
            self._escape(
                escape.kind,
                node,
                f"{node.id} aliased outside a direct call; its body "
                f"reaches: {escape.detail}",
            )

    # -- names, assignments, deletions -------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._read(node.id)
            self._check_name_escape(node)
            if self._summaries is not None:
                self._check_summary_alias(node)
        elif isinstance(node.ctx, ast.Store):
            self._write(node.id, node)
        elif isinstance(node.ctx, ast.Del):
            self._delete(node.id, node)

    def _check_name_escape(self, node: ast.Name) -> None:
        name = node.id
        if name in EXEC_EVAL_NAMES:
            self._escape(EscapeKind.EXEC_EVAL, node, f"use of {name!r}")
        elif name in NAMESPACE_NAMES:
            self._escape(
                EscapeKind.NAMESPACE_INTROSPECTION, node, f"use of {name}()"
            )
        elif name in REFLECTION_NAMES:
            self._escape(EscapeKind.NAME_REFLECTION, node, f"use of {name!r}")
        elif name in DYNAMIC_IMPORT_NAMES:
            self._escape(EscapeKind.DYNAMIC_IMPORT, node, f"use of {name!r}")

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            self._summaries is not None
            and isinstance(node.value, ast.Name)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and self._scopes[-1].kind == _SCOPE_MODULE
            and self._definite
        ):
            # ``alias = helper`` at top level: the summary table tracks
            # simple aliases, so this load is not an escape-laundering
            # position for the helper's deferred escapes.
            self._alias_rhs_ids.add(id(node.value))
        self.visit(node.value)
        for target in node.targets:
            self._visit_target(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.visit(node.annotation)
        if node.value is not None:
            self.visit(node.value)
            self._visit_target(node.target)
        # A bare ``x: int`` annotates without binding; no write results.

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self._read(node.target.id)
            self._write(node.target.id, node.target)
        else:
            self._visit_target(node.target)

    def _visit_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._write(target.id, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element)
        elif isinstance(target, ast.Starred):
            self._visit_target(target.value)
        else:
            # Attribute / Subscript stores mutate through a read of the
            # root object; the patched namespace observes that read.
            # (visit_Attribute flags module-patch escapes on Store.)
            self.visit(target)

    def _check_module_patch(self, target: ast.Attribute) -> None:
        root: ast.expr = target
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in self._imported_modules:
            self._escape(
                EscapeKind.MODULE_PATCH,
                target,
                f"assignment to attribute of module {root.id!r}",
            )

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._delete(target.id, target)
            else:
                self.visit(target)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            # Walrus targets bind in the nearest non-comprehension scope.
            self._write(node.target.id, node, skip_comprehensions=True)

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self._write(bound, node)
            self._imported_modules.add(bound)
            if alias.name.split(".")[0] == "importlib":
                self._escape(
                    EscapeKind.DYNAMIC_IMPORT, node, "import of importlib"
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*":
                self.effects.opaque_writes = True
                self._escape(
                    EscapeKind.STAR_IMPORT,
                    node,
                    f"from {node.module or '.'} import *",
                )
            else:
                self._write(alias.asname or alias.name, node)
        if node.module and node.module.split(".")[0] == "importlib":
            self._escape(EscapeKind.DYNAMIC_IMPORT, node, "import from importlib")

    # -- calls and attributes ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            self._callee_name_ids.add(id(node.func))
            if self._interprocedural_here():
                summary = self._summary_for(node.func.id)
                if summary is not None:
                    self._expand_call(node, summary)
                elif self._apply_stub_call(node):
                    pass  # the stub bounds the call; nothing stays opaque
                elif self._resolves_global(node.func.id) and not hasattr(
                    builtins, node.func.id
                ):
                    # Conservative top: a global, non-builtin callee with
                    # no summary (undefined here, rebound, or defined in a
                    # form the extractor does not model). Counted so the
                    # telemetry can report how much of the notebook stays
                    # opaque to interprocedural analysis.
                    self.effects.summary_unknown_calls += 1
                    if self._summaries is not None and self._summaries.is_invalidated(
                        node.func.id
                    ):
                        # Once-summarized, now dropped: the callee is user
                        # code whose current effects nothing bounds, and a
                        # hidden STORE_GLOBAL inside it would bypass both
                        # the record and the (deferred) escape machinery.
                        self._escape(
                            EscapeKind.STALE_SUMMARY_CALL,
                            node,
                            f"call to {node.func.id}() after its function "
                            f"summary was invalidated; effects unknown",
                        )
            else:
                self._apply_stub_call(node)
        elif isinstance(node.func, ast.Attribute):
            self._apply_stub_call(node)
        self.generic_visit(node)

    # -- library effect stubs (DESIGN.md §15) -------------------------------

    def _stub_here(self) -> bool:
        """Stubs resolve only for code that runs at cell time, against the
        cell-level type bindings; function/lambda bodies are handled by
        the summary extractor with its own local-name gating."""
        return self._stubs is not None and not any(
            scope.kind in (_SCOPE_FUNCTION, _SCOPE_LAMBDA)
            for scope in self._scopes
        )

    def _apply_stub_call(self, node: ast.Call) -> bool:
        """Try to bound a call through the stub registry.

        Returns True when a stub covered the call (its declared effects
        are folded in); on a *library-shaped* call no stub covers, bumps
        the ``stub_unknown_calls`` counter (KSH502's feed) and returns
        False so conservative handling proceeds.
        """
        if not self._stub_here():
            return False
        assert self._stubs is not None
        resolved = self._stubs.resolve_call(node)
        if resolved is None:
            if self._stubs.unknown_library_call(node) is not None:
                self.effects.stub_unknown_calls += 1
            return False
        self._fold_stub(node, resolved)
        return True

    def _fold_stub(self, node: ast.Call, resolved: ResolvedCall) -> None:
        effects = self.effects
        effects.stub_expansions += 1
        stub = resolved.stub
        receiver = resolved.receiver
        if receiver is not None and self._resolves_global(receiver):
            if stub_call_mutates(stub, node):
                effects.stub_mutations.add(receiver)
            elif (
                resolved.receiver_type is not None
                and resolved.receiver_type.kind == INSTANCE
                and stub.is_pure
            ):
                # A declared-pure call on a proven instance: remembered as
                # a mismatch witness for the runtime cross-check — if this
                # receiver's object graph changes and nothing else in the
                # cell explains it, the stub lied (DESIGN.md §15.3).
                effects.stub_pure_receivers.add(receiver)
        for position in stub.mutates_args:
            if position < len(node.args):
                for name in self._global_names_in(node.args[position]):
                    effects.stub_mutations.add(name)
        for written in stub.writes_globals:
            effects.stub_writes.add(written)
            effects.conditional_writes.add(written)
        if stub.escape is not None:
            self._escape(
                EscapeKind(stub.escape),
                node,
                f"stub {resolved.qualname} declares escape",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in FRAME_ATTRS:
            self._escape(
                EscapeKind.FRAME_INTROSPECTION, node, f"access to .{node.attr}"
            )
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._check_module_patch(node)
        self.generic_visit(node)

    # -- conditional control flow ------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        with self._conditional():
            for statement in node.body:
                self.visit(statement)
            for statement in node.orelse:
                self.visit(statement)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)  # evaluated at least once
        with self._conditional():
            for statement in node.body:
                self.visit(statement)
            for statement in node.orelse:
                self.visit(statement)

    def _visit_for(self, node: "ast.For | ast.AsyncFor") -> None:
        self.visit(node.iter)
        with self._conditional():  # zero iterations possible
            self._visit_target(node.target)
            for statement in node.body:
                self.visit(statement)
            for statement in node.orelse:
                self.visit(statement)

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    def visit_Try(self, node: ast.Try) -> None:
        # The body may be cut short by the very exception the handler
        # catches, and a successful run executes at most some handlers —
        # everything but ``finally`` is conditional.
        with self._conditional():
            for statement in node.body:
                self.visit(statement)
            for handler in node.handlers:
                self.visit(handler)
            for statement in node.orelse:
                self.visit(statement)
        for statement in node.finalbody:
            self.visit(statement)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is not None:
            self.visit(node.type)
        if node.name:
            # ``except E as e`` binds then unbinds ``e`` on handler exit.
            self._write(node.name, node)
            self._delete(node.name, node)
        for statement in node.body:
            self.visit(statement)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        self.visit(node.values[0])
        with self._conditional():  # short-circuit may skip the tail
            for value in node.values[1:]:
                self.visit(value)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        with self._conditional():
            self.visit(node.body)
            self.visit(node.orelse)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.visit(node.left)
        self.visit(node.comparators[0])
        with self._conditional():  # chained comparisons short-circuit
            for comparator in node.comparators[1:]:
                self.visit(comparator)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.visit(node.test)
        if node.msg is not None:
            with self._conditional():
                self.visit(node.msg)

    # -- nested scopes -----------------------------------------------------

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self._write(node.name, node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            self.visit(default)
        for annotation_owner in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if annotation_owner.annotation is not None:
                self.visit(annotation_owner.annotation)
        if node.returns is not None:
            self.visit(node.returns)
        params = [
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        local_names, global_names = _collect_bindings(node.body, params)
        # Under summary analysis, the body of a summarizable *top-level*
        # def contributes nothing to the cell that defines it: the body
        # does not run at definition time, and its effects resurface at
        # call sites through the function's summary. Escapes found inside
        # are deferred (kept separately for telemetry and lint).
        defer = (
            self._summaries is not None
            and self._scopes[-1].kind == _SCOPE_MODULE
            and self._definite
            and is_summarizable_def(node)
        )
        if defer:
            self._defer_depth += 1
        try:
            with self._scope(_SCOPE_FUNCTION, local_names, global_names):
                with self._conditional():  # the body runs only if called
                    for statement in node.body:
                        self.visit(statement)
        finally:
            if defer:
                self._defer_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            self.visit(default)
        params = [
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        local_names, _ = _collect_bindings([ast.Expr(value=node.body)], params)
        with self._scope(_SCOPE_LAMBDA, local_names, set()):
            with self._conditional():
                self.visit(node.body)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._write(node.name, node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in node.bases:
            self.visit(base)
        for keyword in node.keywords:
            self.visit(keyword.value)
        local_names, global_names = _collect_bindings(node.body)
        with self._scope(_SCOPE_CLASS, local_names, global_names):
            # A class body executes exactly once, at definition time.
            for statement in node.body:
                self.visit(statement)

    def _visit_comprehension(
        self, generators: Sequence[ast.comprehension], *elements: ast.expr
    ) -> None:
        # The outermost iterable is evaluated eagerly in the enclosing
        # scope; everything else runs lazily in the comprehension scope
        # and only if that iterable is non-empty.
        self.visit(generators[0].iter)
        local_names: Set[str] = set()
        for generator in generators:
            targets, _ = _collect_bindings(
                [ast.Assign(targets=[generator.target], value=ast.Constant(value=None))]
            )
            local_names |= targets
        with self._scope(_SCOPE_COMPREHENSION, local_names, set()):
            with self._conditional():
                for index, generator in enumerate(generators):
                    if index > 0:
                        self.visit(generator.iter)
                    for condition in generator.ifs:
                        self.visit(condition)
                for element in elements:
                    self.visit(element)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node.generators, node.elt)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node.generators, node.elt)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node.generators, node.elt)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node.generators, node.key, node.value)

    # -- match statements (3.10+) ------------------------------------------

    def visit_Match(self, node: ast.AST) -> None:
        subject = getattr(node, "subject", None)
        if isinstance(subject, ast.expr):
            self.visit(subject)
        with self._conditional():
            for case in getattr(node, "cases", []):
                for pattern_node in ast.walk(case.pattern):
                    captured = getattr(pattern_node, "name", None)
                    if isinstance(captured, str):
                        self._write(captured, pattern_node)
                if case.guard is not None:
                    self.visit(case.guard)
                for statement in case.body:
                    self.visit(statement)

    # ``global`` / ``nonlocal`` are handled during binding collection.

    def visit_Global(self, node: ast.Global) -> None:
        pass

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        pass


def parse_cell(source: str) -> Optional[ast.Module]:
    """Parse cell source, returning ``None`` on syntax errors."""
    try:
        return ast.parse(source)
    except SyntaxError:
        return None


def analyze_cell(
    source: str,
    summaries: "Optional[SummaryView]" = None,
    stubs: Optional[StubContext] = None,
) -> CellEffects:
    """Compute the static effect summary of one cell.

    With ``summaries`` (a resolved
    :class:`~repro.analysis.summaries.SummaryView` for this cell's
    position in the notebook) the analysis is interprocedural: calls to
    summarized helpers expand to their effects and summarizable def
    bodies contribute nothing at the def site. Without it the behavior
    is exactly the PR 3 intraprocedural analysis.

    With ``stubs`` (a :class:`~repro.analysis.typetrack.StubContext`
    carrying the library-stub registry and the notebook's type bindings)
    library calls resolved through a stub fold their declared effects in
    instead of staying opaque (DESIGN.md §15).

    Never raises: a cell that fails to parse yields a
    :class:`CellEffects` with ``syntax_error`` set and empty name sets
    (such a cell cannot execute either).
    """
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        return CellEffects(syntax_error=str(exc))
    resolver = stubs.resolver(module) if stubs is not None else None
    return EffectVisitor(summaries, resolver).analyze(module)


def function_params(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Optional[str], Optional[str]]:
    """(positional params, keyword-only params, vararg, kwarg) of a def."""
    args = node.args
    positional = tuple(a.arg for a in list(args.posonlyargs) + list(args.args))
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    vararg = args.vararg.arg if args.vararg else None
    kwarg = args.kwarg.arg if args.kwarg else None
    return positional, kwonly, vararg, kwarg


def analyze_function_body(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> CellEffects:
    """Intraprocedural effect analysis of one function body.

    Runs the ordinary :class:`EffectVisitor` over the body with a
    function scope (parameters and local bindings honoured, ``global``
    declarations honoured) pre-pushed, so a read of a local is not a
    global read and a ``global``-declared store is a global write *and* a
    hidden-store escape — exactly the facts a
    :class:`~repro.analysis.summaries.RawSummary` needs. Nested defs and
    lambdas are visited in place, conservatively folding their effects
    into the enclosing function's (a nested closure may run whenever the
    enclosing function does).
    """
    positional, kwonly, vararg, kwarg = function_params(node)
    params = list(positional) + list(kwonly)
    if vararg is not None:
        params.append(vararg)
    if kwarg is not None:
        params.append(kwarg)
    local_names, global_names = _collect_bindings(node.body, params)
    visitor = EffectVisitor()
    visitor._scopes = [
        _Scope(_SCOPE_MODULE, set(), set()),
        _Scope(_SCOPE_FUNCTION, local_names, global_names),
    ]
    for statement in node.body:
        visitor.visit(statement)
    visitor.effects.escapes = tuple(visitor._escapes)
    return visitor.effects
