"""Lint rules, the rule registry, and the purity whitelist registry.

The lint engine turns :class:`~repro.analysis.effects.CellEffects` into
user-facing findings. Rules are small objects with an identifier, a
severity, and a ``check`` method; they live in a :class:`RuleRegistry`
that callers can extend, prune, or replace. The built-in set covers the
escape taxonomy (one rule id per
:class:`~repro.analysis.effects.EscapeKind`), syntax errors, builtin
shadowing, and a positive informational rule for provably read-only
cells.

Suppression: a cell can silence findings with comments —

* ``# kishu: disable=KSH101,KSH104`` on the offending line suppresses
  those rules for that line only;
* the same comment on the **first** line of the cell suppresses the rules
  for the whole cell;
* ``disable=all`` suppresses every rule.

The :class:`PurityRegistry` holds the callables and method names the
read-only analysis (§6.2 of the paper) treats as non-mutating. It is
user-registerable: ``GLOBAL_PURITY.register_callable("show")`` makes
``show(x)`` acceptable in read-only cells for every analyzer that uses
the global registry (the default).
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.effects import CellEffects, EscapeKind, Span
from repro.analysis.visitor import analyze_cell

#: Built-in callables that cannot mutate their arguments' object graphs.
PURE_BUILTINS: FrozenSet[str] = frozenset(
    {"print", "len", "repr", "str", "type", "id", "abs", "min", "max",
     "sum", "sorted", "list", "dict", "tuple", "set", "format", "round",
     "any", "all", "isinstance", "hash", "bool", "int", "float"}
)

#: Method names conventionally non-mutating in data-science libraries
#: (the paper's ``df.head`` example). Conservative: a library *could*
#: define a mutating ``head``, so the set is user-extensible.
PURE_METHODS: FrozenSet[str] = frozenset(
    {"head", "tail", "describe", "info", "keys", "values", "items",
     "mean", "sum", "min", "max", "std", "count", "copy", "hexdigest"}
)


class PurityRegistry:
    """User-registerable whitelists of pure callables and methods."""

    def __init__(
        self,
        builtins: Optional[Iterable[str]] = None,
        methods: Optional[Iterable[str]] = None,
    ) -> None:
        self._builtins = set(PURE_BUILTINS if builtins is None else builtins)
        self._methods = set(PURE_METHODS if methods is None else methods)

    def register_callable(self, name: str) -> None:
        """Declare ``name(...)`` non-mutating for read-only analysis."""
        self._builtins.add(name)

    def register_method(self, name: str) -> None:
        """Declare ``obj.name(...)`` non-mutating for read-only analysis."""
        self._methods.add(name)

    def unregister_callable(self, name: str) -> None:
        self._builtins.discard(name)

    def unregister_method(self, name: str) -> None:
        self._methods.discard(name)

    def is_pure_callable(self, name: str) -> bool:
        return name in self._builtins

    def is_pure_method(self, name: str) -> bool:
        return name in self._methods

    @property
    def pure_callables(self) -> FrozenSet[str]:
        return frozenset(self._builtins)

    @property
    def pure_methods(self) -> FrozenSet[str]:
        return frozenset(self._methods)


#: Process-wide default purity whitelists; analyzers constructed without
#: explicit whitelists consult this registry live, so user registrations
#: take effect everywhere.
GLOBAL_PURITY = PurityRegistry()


class ReadOnlyCellAnalyzer:
    """Statically classifies cells that provably perform no state update.

    A cell qualifies as read-only only when *every* statement is an
    expression whose AST consists of name loads, constants, subscripts,
    attribute loads, and calls whose callables the purity registry
    whitelists. Anything else — assignments, deletes, arbitrary calls,
    imports — disqualifies the cell, so skipping detection is always safe
    (§6.2 of the paper).
    """

    def __init__(
        self,
        pure_builtins: Optional[FrozenSet[str]] = None,
        pure_methods: Optional[FrozenSet[str]] = None,
        *,
        purity: Optional[PurityRegistry] = None,
    ) -> None:
        if purity is not None:
            self.purity = purity
        elif pure_builtins is None and pure_methods is None:
            # No explicit whitelists: consult the live global registry so
            # user registrations apply to every default-constructed analyzer.
            self.purity = GLOBAL_PURITY
        else:
            self.purity = PurityRegistry(builtins=pure_builtins, methods=pure_methods)

    @property
    def pure_builtins(self) -> FrozenSet[str]:
        return self.purity.pure_callables

    @property
    def pure_methods(self) -> FrozenSet[str]:
        return self.purity.pure_methods

    def is_read_only(self, source: str) -> bool:
        """True only if every statement is a provably pure expression."""
        try:
            module = ast.parse(source)
        except SyntaxError:
            return False
        if not module.body:
            return True
        return all(
            isinstance(stmt, ast.Expr) and self._pure_expression(stmt.value)
            for stmt in module.body
        )

    def _pure_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Constant, ast.Name)):
            return True
        if isinstance(node, ast.Attribute):
            return self._pure_expression(node.value)
        if isinstance(node, ast.Subscript):
            return self._pure_expression(node.value) and self._pure_slice(node.slice)
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(self._pure_expression(item) for item in node.elts)
        if isinstance(node, ast.BinOp):
            return self._pure_expression(node.left) and self._pure_expression(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._pure_expression(node.operand)
        if isinstance(node, ast.Compare):
            return self._pure_expression(node.left) and all(
                self._pure_expression(comp) for comp in node.comparators
            )
        if isinstance(node, ast.Call):
            return self._pure_call(node)
        if isinstance(node, ast.JoinedStr):
            return all(
                self._pure_expression(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        return False

    def _pure_slice(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Slice):
            parts = (node.lower, node.upper, node.step)
            return all(part is None or self._pure_expression(part) for part in parts)
        return self._pure_expression(node)

    def _pure_call(self, node: ast.Call) -> bool:
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return False
        arguments_pure = all(
            self._pure_expression(arg) for arg in node.args
        ) and all(
            keyword.value is not None and self._pure_expression(keyword.value)
            for keyword in node.keywords
        )
        if not arguments_pure:
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return self.purity.is_pure_callable(func.id)
        if isinstance(func, ast.Attribute):
            return self.purity.is_pure_method(func.attr) and self._pure_expression(
                func.value
            )
        return False


# ---------------------------------------------------------------------------
# Lint engine
# ---------------------------------------------------------------------------


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One lint finding anchored to a source span.

    ``cell_index`` places the finding in an execution history when the
    lint ran over a whole notebook (``-1`` for single-cell lints); it is
    the primary sort key so multi-cell output is deterministic.
    """

    rule_id: str
    severity: Severity
    message: str
    span: Span
    label: str = "<cell>"
    cell_index: int = -1

    @property
    def sort_key(self) -> Tuple[int, int, int, str]:
        return (self.cell_index, self.span.line, self.span.col, self.rule_id)

    def format(self) -> str:
        return (
            f"{self.label}:{self.span.line}:{self.span.col}: "
            f"{self.severity} {self.rule_id}: {self.message}"
        )


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may inspect about one cell."""

    source: str
    effects: CellEffects
    tree: Optional[ast.Module]
    label: str
    cell_index: int = -1


class LintRule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (stable, ``KSH###``), ``severity``, and
    ``description``, and yield :class:`Finding` values from :meth:`check`.
    """

    rule_id: str = "KSH000"
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: LintContext, message: str, span: Span) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            span=span,
            label=context.label,
            cell_index=context.cell_index,
        )


class SyntaxErrorRule(LintRule):
    rule_id = "KSH100"
    severity = Severity.ERROR
    description = "cell does not parse"

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.effects.syntax_error is not None:
            yield self.finding(
                context,
                f"syntax error: {context.effects.syntax_error}",
                Span(1, 0, 1, 0),
            )


class EscapeRule(LintRule):
    """One rule per escape kind; subclasses pin ``kind`` and ``rule_id``."""

    kind: EscapeKind = EscapeKind.EXEC_EVAL
    severity = Severity.WARNING

    def check(self, context: LintContext) -> Iterator[Finding]:
        for escape in context.effects.escapes_of(self.kind):
            yield self.finding(
                context,
                f"{escape.detail} defeats namespace access tracking; "
                "this cell will be escalated to full update detection",
                escape.span,
            )


class ExecEvalRule(EscapeRule):
    rule_id = "KSH101"
    kind = EscapeKind.EXEC_EVAL
    description = "exec/eval/compile runs code the tracker cannot see"


class NamespaceIntrospectionRule(EscapeRule):
    rule_id = "KSH102"
    kind = EscapeKind.NAMESPACE_INTROSPECTION
    description = "globals()/locals()/vars() bypasses access recording"


class DynamicImportRule(EscapeRule):
    rule_id = "KSH103"
    kind = EscapeKind.DYNAMIC_IMPORT
    description = "importlib/__import__ loads modules under computed names"


class StarImportRule(EscapeRule):
    rule_id = "KSH104"
    kind = EscapeKind.STAR_IMPORT
    description = "star imports bind a statically unknowable name set"


class NameReflectionRule(EscapeRule):
    rule_id = "KSH105"
    kind = EscapeKind.NAME_REFLECTION
    description = "setattr/delattr mutates attributes under computed names"


class FrameIntrospectionRule(EscapeRule):
    rule_id = "KSH106"
    kind = EscapeKind.FRAME_INTROSPECTION
    description = "frame introspection reaches the namespace sideways"


class ModulePatchRule(EscapeRule):
    rule_id = "KSH107"
    kind = EscapeKind.MODULE_PATCH
    description = "module attribute assignment is process-global state"


class HiddenGlobalStoreRule(EscapeRule):
    rule_id = "KSH108"
    kind = EscapeKind.HIDDEN_GLOBAL_STORE
    description = (
        "global stores from nested scopes compile to STORE_GLOBAL, "
        "which namespace patching cannot observe"
    )


class BuiltinShadowRule(LintRule):
    rule_id = "KSH110"
    severity = Severity.WARNING
    description = "cell rebinds a builtin the read-only analysis trusts"

    def check(self, context: LintContext) -> Iterator[Finding]:
        shadowed = sorted(context.effects.all_writes & PURE_BUILTINS)
        for name in shadowed:
            yield self.finding(
                context,
                f"assignment shadows builtin {name!r}; read-only cell "
                "analysis treats calls to it as pure",
                Span(1, 0, 1, 0),
            )


class ReadOnlyInfoRule(LintRule):
    rule_id = "KSH201"
    severity = Severity.INFO
    description = "cell is provably read-only (detection will be skipped)"

    def __init__(self, analyzer: Optional[ReadOnlyCellAnalyzer] = None) -> None:
        self.analyzer = analyzer if analyzer is not None else ReadOnlyCellAnalyzer()

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.source.strip() and self.analyzer.is_read_only(context.source):
            yield self.finding(
                context,
                "cell is provably read-only; update detection can be skipped",
                Span(1, 0, 1, 0),
            )


class RuleRegistry:
    """Ordered, id-keyed collection of lint rules."""

    def __init__(self, rules: Optional[Iterable[LintRule]] = None) -> None:
        self._rules: Dict[str, LintRule] = {}
        for rule in rules or ():
            self.register(rule)

    @classmethod
    def default(cls) -> "RuleRegistry":
        return cls(
            [
                SyntaxErrorRule(),
                ExecEvalRule(),
                NamespaceIntrospectionRule(),
                DynamicImportRule(),
                StarImportRule(),
                NameReflectionRule(),
                FrameIntrospectionRule(),
                ModulePatchRule(),
                HiddenGlobalStoreRule(),
                BuiltinShadowRule(),
                ReadOnlyInfoRule(),
            ]
        )

    def register(self, rule: LintRule) -> None:
        self._rules[rule.rule_id] = rule

    def unregister(self, rule_id: str) -> None:
        self._rules.pop(rule_id, None)

    def get(self, rule_id: str) -> Optional[LintRule]:
        return self._rules.get(rule_id)

    def rules(self) -> List[LintRule]:
        return list(self._rules.values())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)


_SUPPRESSION = re.compile(r"#\s*kishu:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)")


def _suppressions(source: str) -> Tuple[FrozenSet[str], Dict[int, FrozenSet[str]]]:
    """Cell-wide and per-line suppressed rule ids from magic comments."""
    cell_wide: FrozenSet[str] = frozenset()
    per_line: Dict[int, FrozenSet[str]] = {}
    for index, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if not match:
            continue
        ids = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        per_line[index] = ids
        if index == 1:
            cell_wide = ids
    return cell_wide, per_line


class LintEngine:
    """Applies a rule registry to cell sources."""

    def __init__(self, registry: Optional[RuleRegistry] = None) -> None:
        self.registry = registry if registry is not None else RuleRegistry.default()

    def lint_source(
        self, source: str, label: str = "<cell>", *, cell_index: int = -1
    ) -> List[Finding]:
        """Lint one cell, honouring suppression comments."""
        effects = analyze_cell(source)
        try:
            tree: Optional[ast.Module] = ast.parse(source)
        except SyntaxError:
            tree = None
        context = LintContext(
            source=source,
            effects=effects,
            tree=tree,
            label=label,
            cell_index=cell_index,
        )
        cell_wide, per_line = _suppressions(source)
        findings: List[Finding] = []
        for rule in self.registry.rules():
            for finding in rule.check(context):
                if self._suppressed(finding, cell_wide, per_line):
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.span.line, f.span.col, f.rule_id))
        return findings

    def lint_cells(
        self, cells: Iterable[Tuple[str, str]]
    ) -> List[Finding]:
        """Lint ``(label, source)`` pairs, concatenating the findings."""
        findings: List[Finding] = []
        for index, (label, source) in enumerate(cells):
            findings.extend(
                self.lint_source(source, label=label, cell_index=index)
            )
        return findings

    def lint_notebook(
        self,
        cells: Iterable[Tuple[str, str]],
        execution_counts: Optional[Iterable[int]] = None,
    ) -> List[Finding]:
        """Lint ``(label, source)`` pairs as one execution history.

        Runs every per-cell rule on each cell *plus* the whole-notebook
        KSH30x rules over the inter-cell dataflow graph. Findings are
        globally sorted by (cell index, line, column, rule id) so the
        output is byte-stable across runs. Suppression comments in a
        cell silence notebook-level findings anchored to that cell,
        exactly as they do per-cell findings.
        """
        # Imported lazily: flowrules imports Finding/LintRule from here.
        from repro.analysis.dataflow import make_cell_node
        from repro.analysis.flowrules import (
            NotebookContext,
            default_notebook_rules,
        )

        pairs = list(cells)
        counts = (
            tuple(execution_counts) if execution_counts is not None else None
        )
        findings: List[Finding] = []
        suppressions: List[Tuple[FrozenSet[str], Dict[int, FrozenSet[str]]]] = []
        nodes = []
        for index, (label, source) in enumerate(pairs):
            findings.extend(
                self.lint_source(source, label=label, cell_index=index)
            )
            suppressions.append(_suppressions(source))
            execution_count = (
                counts[index] if counts is not None and index < len(counts) else 0
            )
            nodes.append(
                make_cell_node(
                    index, source, label=label, execution_count=execution_count
                )
            )
        from repro.analysis.dataflow import NotebookDataflowGraph
        from repro.analysis.summaries import NotebookSummaries
        from repro.analysis.typetrack import StubContext

        graph = NotebookDataflowGraph(nodes)
        # The KSH40x rules need the interprocedural summary table, the
        # KSH50x rules the stub type environment; the KSH30x graph stays
        # intraprocedural so its findings do not shift with either layer.
        stubs = StubContext()
        summaries = NotebookSummaries.from_sources(
            [source for _, source in pairs], stubs=stubs
        )
        notebook = NotebookContext(
            graph=graph, execution_counts=counts, summaries=summaries,
            stubs=stubs,
        )
        for rule in default_notebook_rules():
            for finding in rule.check_notebook(notebook):
                if 0 <= finding.cell_index < len(suppressions):
                    cell_wide, per_line = suppressions[finding.cell_index]
                    if self._suppressed(finding, cell_wide, per_line):
                        continue
                findings.append(finding)
        findings.sort(key=lambda f: f.sort_key)
        return findings

    @staticmethod
    def _suppressed(
        finding: Finding,
        cell_wide: FrozenSet[str],
        per_line: Dict[int, FrozenSet[str]],
    ) -> bool:
        for scope in (cell_wide, per_line.get(finding.span.line, frozenset())):
            if "ALL" in scope or finding.rule_id.upper() in scope:
                return True
        return False
