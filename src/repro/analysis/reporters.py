"""Finding reporters — render lint results as text or JSON.

Both reporters are pure functions over a list of
:class:`~repro.analysis.rules.Finding`; the CLI (``repro lint``) and the
REPL (``%lint``) choose between them with ``--format``.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.analysis.rules import Finding, Severity


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule_id,
        "severity": str(finding.severity),
        "message": finding.message,
        "label": finding.label,
        "cell": finding.cell_index,
        "line": finding.span.line,
        "col": finding.span.col,
        "end_line": finding.span.end_line,
        "end_col": finding.span.end_col,
    }


class TextReporter:
    """Human-oriented one-line-per-finding output with a summary footer."""

    def render(self, findings: Sequence[Finding]) -> str:
        lines: List[str] = [finding.format() for finding in findings]
        by_severity = Counter(str(finding.severity) for finding in findings)
        if findings:
            summary = ", ".join(
                f"{count} {name}" for name, count in sorted(by_severity.items())
            )
            lines.append(f"{len(findings)} finding(s): {summary}")
        else:
            lines.append("no findings")
        return "\n".join(lines)


class JsonReporter:
    """Machine-oriented output: a stable JSON document."""

    def render(self, findings: Sequence[Finding]) -> str:
        payload = {
            "findings": [finding_to_dict(finding) for finding in findings],
            "counts": {
                str(severity): sum(
                    1 for finding in findings if finding.severity is severity
                )
                for severity in Severity
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def worst_severity(findings: Sequence[Finding]) -> Severity:
    """The highest severity present (``INFO`` when there are none)."""
    return max((finding.severity for finding in findings), default=Severity.INFO)
