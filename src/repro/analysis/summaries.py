"""Interprocedural function-effect summaries (DESIGN.md §14).

PR 3's :class:`~repro.analysis.visitor.EffectVisitor` stops at call
boundaries: a def's body is analyzed only to find escapes, and
``visit_Call`` learns nothing, so a notebook that factors work into
helper functions degrades to runtime CrossValidator escalation and
conservatively widened replay plans. This module closes that gap with a
classic bottom-up summary analysis over the notebook's call graph:

* **Extraction** — each summarizable function (a top-level undecorated
  ``def``/``async def``, a top-level ``name = lambda …`` assignment, or
  an undecorated method of a top-level class) yields a
  :class:`RawSummary`: the intraprocedural facts of its body (global
  reads/writes/deletes via :func:`analyze_function_body`, in-place
  parameter/global mutations via the dataflow layer's mutation capture,
  return-aliasing of parameters and globals, escapes, and its direct
  call sites).

* **Resolution** — :func:`resolve_summaries` closes the raw facts over
  direct calls by fixpoint: every function starts from its own facts
  (bottom) and repeatedly absorbs the current facts of its callees —
  recursion and mutual recursion converge because the lattice is finite
  unions. Higher-order flow is conservative: a parameter used in call
  position absorbs the summary of any summarized function passed as that
  argument, and a summarized function *loaded* outside a direct call
  (aliased, stored, passed along) contributes its full effects to the
  loader, because it may be invoked through any later alias.

* **Versioning** — :class:`NotebookSummaries` keys every summary by the
  cell that bound it. A later cell that rebinds the name (including via
  a helper-mediated hidden store) *invalidates* the summary — calls
  after the rebind fall back to the conservative top (no expansion, the
  ``summary_unknown_calls`` counter) — and an opaque cell (``exec``,
  star import, ``globals()``…) invalidates everything, because it can
  rebind any name without the analysis seeing it.

Soundness contract with the CrossValidator (DESIGN.md §14): deferring a
def-site escape is safe only if every path by which the body's hidden
effects can later run re-surfaces the escape. Direct calls do (call
expansion), simple aliases do (the table follows ``alias = helper``),
and every *other* load of an escape-carrying helper conservatively
surfaces the escapes at the loading cell — so the set of escalated
cells never loses a cell that actually needed escalation, it only moves
the escalation from the def cell (where nothing ran) to the cells where
the body can run.

Everything here is deterministic: extraction walks the AST in source
order, resolution iterates names sorted, and all serialized output uses
sorted lists — byte-stable across runs and interpreters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.effects import CellEffects, Escape, EscapeKind, Span
from repro.analysis.typetrack import (
    CellResolver,
    StubContext,
    stub_call_mutates,
    stub_is_pure_at,
)
from repro.analysis.visitor import (
    _collect_bindings,
    analyze_cell,
    analyze_function_body,
    function_params,
    is_summarizable_def,
)

__all__ = [
    "CallArg",
    "CallSite",
    "FunctionSummary",
    "InvalidationRecord",
    "NotebookSummaries",
    "RawSummary",
    "SummaryView",
    "extract_cell_summaries",
    "resolve_summaries",
]

#: Escape kinds that make a whole cell opaque to the summary table: after
#: one of these runs, any binding may have changed behind the analysis'
#: back, so every live summary is invalidated. ``HIDDEN_GLOBAL_STORE``
#: and ``MODULE_PATCH`` name the state they touch and are handled by the
#: per-name rebind rule instead.
_OPAQUE_ESCAPE_KINDS = frozenset(
    {
        EscapeKind.EXEC_EVAL,
        EscapeKind.NAMESPACE_INTROSPECTION,
        EscapeKind.DYNAMIC_IMPORT,
        EscapeKind.STAR_IMPORT,
        EscapeKind.NAME_REFLECTION,
        EscapeKind.FRAME_INTROSPECTION,
    }
)

#: Fixpoint rounds are bounded by the call-graph diameter; this cap is a
#: defensive backstop far above any real notebook's.
_MAX_FIXPOINT_ROUNDS = 64


# ---------------------------------------------------------------------------
# Raw (intraprocedural) summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallArg:
    """One argument of a recorded call site, as the extractor saw it."""

    #: Positional index, or -1 for a keyword argument.
    position: int
    #: Keyword name, or None for a positional argument.
    keyword: Optional[str]
    #: The bare-``Name`` argument id when the argument is exactly a name.
    base: Optional[str]
    #: Whether ``base`` is a parameter of the *enclosing* function.
    base_is_param: bool
    #: Global-resolving names appearing anywhere in the argument
    #: expression (sorted; excludes locals, parameters, and builtins).
    global_names: Tuple[str, ...]
    #: Enclosing-function parameters appearing in the expression.
    param_names: Tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """A direct ``callee(...)`` call recorded inside a function body."""

    callee: str
    span: Span
    args: Tuple[CallArg, ...]
    #: ``*args`` / ``**kwargs`` splat present — argument-to-parameter
    #: mapping degrades to "any parameter".
    has_star: bool


@dataclass(frozen=True)
class RawSummary:
    """Intraprocedural facts of one function body, pre-fixpoint."""

    name: str
    qualname: str
    cell_index: int
    span: Span
    params: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    vararg: Optional[str]
    kwarg: Optional[str]
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    deletes: FrozenSet[str]
    mutated_params: FrozenSet[str]
    global_mutations: FrozenSet[str]
    returns_params: FrozenSet[str]
    returns_globals: FrozenSet[str]
    escapes: Tuple[Escape, ...]
    calls: Tuple[CallSite, ...]
    calls_params: FrozenSet[str]
    #: Global non-builtin names loaded outside a direct-callee position —
    #: if such a name carries a summary, its effects fold in (the body
    #: may invoke it through an alias the analysis cannot follow).
    aliased_names: FrozenSet[str]
    calls_unknown: bool


@dataclass(frozen=True)
class FunctionSummary:
    """A :class:`RawSummary` closed over direct calls by fixpoint."""

    name: str
    qualname: str
    cell_index: int
    span: Span
    params: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    vararg: Optional[str]
    kwarg: Optional[str]
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    deletes: FrozenSet[str]
    mutated_params: FrozenSet[str]
    global_mutations: FrozenSet[str]
    returns_params: FrozenSet[str]
    returns_globals: FrozenSet[str]
    escapes: Tuple[Escape, ...]
    calls_params: FrozenSet[str]
    #: Summarized functions whose effects were folded into this one.
    callees: Tuple[str, ...]
    #: The body (or a transitive callee) performs calls the analysis
    #: could not resolve — the effect sets are a best effort, not a bound.
    calls_unknown: bool

    @property
    def is_tracking_safe(self) -> bool:
        """No escapes: calls are fully describable by the name sets."""
        return not self.escapes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable rendering (sorted keys and lists)."""
        return {
            "name": self.qualname,
            "cell": self.cell_index,
            "line": self.span.line,
            "params": list(self.params)
            + list(self.kwonly)
            + ([f"*{self.vararg}"] if self.vararg else [])
            + ([f"**{self.kwarg}"] if self.kwarg else []),
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "deletes": sorted(self.deletes),
            "mutates_params": sorted(self.mutated_params),
            "mutates_globals": sorted(self.global_mutations),
            "returns_aliases": sorted(
                [f"param:{name}" for name in self.returns_params]
                + [f"global:{name}" for name in self.returns_globals]
            ),
            "escapes": [
                {
                    "kind": escape.kind.value,
                    "line": escape.span.line,
                    "col": escape.span.col,
                    "detail": escape.detail,
                }
                for escape in self.escapes
            ],
            "calls_params": sorted(self.calls_params),
            "callees": list(self.callees),
            "calls_unknown": self.calls_unknown,
            "tracking_safe": self.is_tracking_safe,
        }


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _nested_local_names(body: Sequence[ast.stmt]) -> Set[str]:
    """Local binding sets of every nested function scope in a body.

    Used to keep nested-scope locals out of the enclosing function's
    global-mutation set; a name local to *any* scope in the subtree is
    not treated as a global mutation target. (A nested local shadowing a
    mutated global of the same name is thereby missed — a plan-tightness
    limitation only; runtime co-variable detection still observes the
    actual state change.)
    """
    locals_seen: Set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                positional, kwonly, vararg, kwarg = function_params(node)
                params = list(positional) + list(kwonly)
                if vararg:
                    params.append(vararg)
                if kwarg:
                    params.append(kwarg)
                nested_locals, _ = _collect_bindings(node.body, params)
                locals_seen |= nested_locals
                locals_seen |= set(params)
            elif isinstance(node, ast.Lambda):
                positional, kwonly, vararg, kwarg = function_params(node)
                locals_seen |= set(positional) | set(kwonly)
                if vararg:
                    locals_seen.add(vararg)
                if kwarg:
                    locals_seen.add(kwarg)
    return locals_seen


def _return_alias_names(body: Sequence[ast.stmt]) -> List[str]:
    """Bare names a function's return value may alias.

    Handles ``return x``, ``return (x, y)``, ``return x if c else y``
    and nested combinations; anything computed (``return x + 1``,
    ``return f(x)``) builds a new object or is out of scope for the
    alias model. Returns inside nested defs belong to the nested
    function and are skipped.
    """
    names: List[str] = []

    def collect(expression: ast.expr) -> None:
        if isinstance(expression, ast.Name):
            names.append(expression.id)
        elif isinstance(expression, (ast.Tuple, ast.List)):
            for element in expression.elts:
                collect(element)
        elif isinstance(expression, ast.Starred):
            collect(expression.value)
        elif isinstance(expression, ast.IfExp):
            collect(expression.body)
            collect(expression.orelse)

    def walk(statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(statement, ast.Return) and statement.value is not None:
                collect(statement.value)
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(statement, attr, None)
                if isinstance(nested, list):
                    walk([s for s in nested if isinstance(s, ast.stmt)])
            for handler in getattr(statement, "handlers", []) or []:
                if isinstance(handler, ast.ExceptHandler):
                    walk(handler.body)

    walk(body)
    return names


def _is_builtin(name: str) -> bool:
    import builtins

    return hasattr(builtins, name)


def _extract_raw(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    *,
    qualname: str,
    cell_index: int,
    resolver: Optional[CellResolver] = None,
) -> RawSummary:
    """Intraprocedural facts of one def (no call resolution yet).

    ``resolver`` (the stub layer's per-cell type resolver, DESIGN.md §15)
    bounds library calls the body performs: a stub-resolved pure call
    contributes nothing, a mutating one contributes its declared receiver
    / argument mutations and global writes. Resolution is gated on the
    receiver expression touching *no* function-local name — body locals
    shadow the cell-level bindings the resolver knows about. Attribute
    calls on global receivers that nothing resolves set ``calls_unknown``:
    such a method may do anything, including hidden global stores, so
    pretending otherwise would silently weaken the caller's bound.
    """
    from repro.analysis.dataflow import in_place_mutation_targets

    body_effects = analyze_function_body(node)
    positional, kwonly, vararg, kwarg = function_params(node)
    all_params: Set[str] = set(positional) | set(kwonly)
    if vararg:
        all_params.add(vararg)
    if kwarg:
        all_params.add(kwarg)
    local_names, global_names = _collect_bindings(node.body, sorted(all_params))
    invisible = local_names | all_params | _nested_local_names(node.body)
    invisible -= global_names

    def _names_in(expression: ast.expr) -> Tuple[Set[str], Set[str]]:
        found_globals: Set[str] = set()
        found_params: Set[str] = set()
        for child in ast.walk(expression):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if child.id in all_params:
                    found_params.add(child.id)
                elif child.id not in invisible and not _is_builtin(child.id):
                    found_globals.add(child.id)
        return found_globals, found_params

    def _receiver_is_local(expression: ast.expr) -> bool:
        """Any name feeding the receiver expression that is local to the
        body makes cell-level type resolution unsound for this call."""
        return any(
            isinstance(child, ast.Name)
            and isinstance(child.ctx, ast.Load)
            and child.id in invisible
            for child in ast.walk(expression)
        )

    def _body_method_effect(call: ast.Call) -> Optional[bool]:
        assert isinstance(call.func, ast.Attribute)
        if resolver is None or _receiver_is_local(call.func.value):
            return None
        return resolver.method_effect(call)

    body_module = ast.Module(body=list(node.body), type_ignores=[])
    mutated = in_place_mutation_targets(
        body_module, method_effect=_body_method_effect
    )
    stub_mutated_params: Set[str] = set()
    stub_global_mutations: Set[str] = set()
    stub_writes: Set[str] = set()

    return_names = _return_alias_names(node.body)
    returns_params = frozenset(n for n in return_names if n in all_params)
    returns_globals = frozenset(
        n for n in return_names if n not in invisible and n not in all_params
    )

    calls: List[CallSite] = []
    calls_params: Set[str] = set()
    calls_unknown = False
    callee_ids: Set[int] = set()
    for walk_node in ast.walk(body_module):
        if not isinstance(walk_node, ast.Call):
            continue
        func = walk_node.func

        if isinstance(func, ast.Attribute):
            root: ast.expr = func.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(
                root,
                (ast.Constant, ast.List, ast.Dict, ast.Set, ast.Tuple,
                 ast.JoinedStr, ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ):
                continue  # method on a fresh literal: no global reachable
            base = root.id if isinstance(root, ast.Name) else None
            if base is not None and (base in invisible or _is_builtin(base)):
                # Local/parameter receivers: the mutation walk already
                # records them in ``mutated`` (-> mutated_params).
                continue
            if resolver is not None and not _receiver_is_local(func.value):
                resolved = resolver.resolve_call(walk_node)
                if resolved is not None and resolved.stub.escape is None:
                    stub = resolved.stub
                    # Receiver mutation is captured by the mutation walk
                    # through ``_body_method_effect``; map the declared
                    # argument mutations and global writes here.
                    for position in stub.mutates_args:
                        if position < len(walk_node.args):
                            arg_globals, arg_params = _names_in(
                                walk_node.args[position]
                            )
                            stub_global_mutations |= arg_globals
                            stub_mutated_params |= arg_params
                    stub_writes |= set(stub.writes_globals)
                    continue
            calls_unknown = True
            continue

        if not isinstance(func, ast.Name):
            continue
        callee_ids.add(id(func))
        if func.id in all_params:
            calls_params.add(func.id)
            continue
        if func.id in invisible:
            calls_unknown = True  # a local callable the analysis can't see
            continue
        if _is_builtin(func.id):
            continue
        if resolver is not None:
            resolved = resolver.resolve_call(walk_node)
            if resolved is not None and resolved.stub.escape is None:
                stub = resolved.stub
                if stub_is_pure_at(stub, walk_node):
                    continue
                if not stub_call_mutates(stub, walk_node):
                    # Mutation confined to declared argument positions
                    # and global writes — expressible, so fold it in.
                    for position in stub.mutates_args:
                        if position < len(walk_node.args):
                            arg_globals, arg_params = _names_in(
                                walk_node.args[position]
                            )
                            stub_global_mutations |= arg_globals
                            stub_mutated_params |= arg_params
                    stub_writes |= set(stub.writes_globals)
                    continue
                # A mutating plain call (RNG draws, ``seed`` …) advances
                # library state the summary cannot name — fall through to
                # the conservative unresolved-call handling.
        calls.append(
            _record_call_site(walk_node, func.id, all_params, invisible)
        )

    mutated_params = frozenset(
        (set(name for name in mutated if name in all_params))
        | stub_mutated_params
    )
    global_mutations = frozenset(
        (
            set(
                name
                for name in mutated
                if name not in invisible and not _is_builtin(name)
            )
        )
        | stub_global_mutations
    )

    aliased: Set[str] = set()
    for walk_node in ast.walk(body_module):
        if (
            isinstance(walk_node, ast.Name)
            and isinstance(walk_node.ctx, ast.Load)
            and id(walk_node) not in callee_ids
            and walk_node.id not in invisible
            and walk_node.id not in all_params
            and not _is_builtin(walk_node.id)
        ):
            aliased.add(walk_node.id)

    return RawSummary(
        name=qualname.rsplit(".", 1)[-1],
        qualname=qualname,
        cell_index=cell_index,
        span=Span.of(node),
        params=positional,
        kwonly=kwonly,
        vararg=vararg,
        kwarg=kwarg,
        reads=body_effects.all_reads,
        writes=frozenset(body_effects.all_writes | stub_writes),
        deletes=body_effects.all_deletes,
        mutated_params=mutated_params,
        global_mutations=global_mutations,
        returns_params=returns_params,
        returns_globals=returns_globals,
        escapes=body_effects.escapes,
        calls=tuple(calls),
        calls_params=frozenset(calls_params),
        aliased_names=frozenset(aliased),
        calls_unknown=calls_unknown,
    )


def _record_call_site(
    call: ast.Call,
    callee: str,
    params: Set[str],
    invisible: Set[str],
) -> CallSite:
    def names_in(expression: ast.expr) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        global_names: Set[str] = set()
        param_names: Set[str] = set()
        for child in ast.walk(expression):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if child.id in params:
                    param_names.add(child.id)
                elif child.id not in invisible and not _is_builtin(child.id):
                    global_names.add(child.id)
        return tuple(sorted(global_names)), tuple(sorted(param_names))

    args: List[CallArg] = []
    has_star = False
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            has_star = True
            arg = arg.value
        base = arg.id if isinstance(arg, ast.Name) else None
        global_names, param_names = names_in(arg)
        args.append(
            CallArg(
                position=position,
                keyword=None,
                base=base,
                base_is_param=base in params if base else False,
                global_names=global_names,
                param_names=param_names,
            )
        )
    for keyword in call.keywords:
        if keyword.arg is None:
            has_star = True
        base = keyword.value.id if isinstance(keyword.value, ast.Name) else None
        global_names, param_names = names_in(keyword.value)
        args.append(
            CallArg(
                position=-1,
                keyword=keyword.arg,
                base=base,
                base_is_param=base in params if base else False,
                global_names=global_names,
                param_names=param_names,
            )
        )
    return CallSite(
        callee=callee, span=Span.of(call), args=tuple(args), has_star=has_star
    )


def _lambda_raw(
    name: str,
    node: ast.Lambda,
    *,
    cell_index: int,
    resolver: Optional[CellResolver] = None,
) -> RawSummary:
    """Raw summary of a top-level ``name = lambda ...`` assignment."""
    synthetic = ast.FunctionDef(
        name=name,
        args=node.args,
        body=[ast.Return(value=node.body)],
        decorator_list=[],
        returns=None,
        type_comment=None,
    )
    ast.copy_location(synthetic, node)
    ast.fix_missing_locations(synthetic)
    return _extract_raw(
        synthetic, qualname=name, cell_index=cell_index, resolver=resolver
    )


def extract_cell_summaries(
    module: ast.Module,
    cell_index: int,
    resolver: Optional[CellResolver] = None,
) -> Dict[str, RawSummary]:
    """Raw summaries of every summarizable function a cell defines.

    Covers directly-top-level undecorated defs, top-level
    ``name = lambda …`` assignments, and undecorated methods of
    top-level undecorated classes (keyed ``Class.method``; methods are
    reported and linted but never expanded at call sites — attribute
    calls are not resolved). Conditionally-defined functions (inside
    ``if``/``for``/``try``) are *not* summarized: their binding is not
    definite, so their def-site behavior stays exactly intraprocedural.
    """
    raws: Dict[str, RawSummary] = {}
    for statement in module.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_summarizable_def(statement):
                raws[statement.name] = _extract_raw(
                    statement,
                    qualname=statement.name,
                    cell_index=cell_index,
                    resolver=resolver,
                )
        elif isinstance(statement, ast.Assign):
            if (
                len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and isinstance(statement.value, ast.Lambda)
            ):
                target = statement.targets[0].id
                raws[target] = _lambda_raw(
                    target,
                    statement.value,
                    cell_index=cell_index,
                    resolver=resolver,
                )
        elif isinstance(statement, ast.ClassDef):
            if statement.decorator_list:
                continue
            for member in statement.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and is_summarizable_def(member):
                    qualname = f"{statement.name}.{member.name}"
                    raws[qualname] = _extract_raw(
                        member,
                        qualname=qualname,
                        cell_index=cell_index,
                        resolver=resolver,
                    )
    return raws


def _alias_assignments(module: ast.Module) -> List[Tuple[str, str]]:
    """Top-level definite ``target = source`` name-to-name assignments."""
    aliases: List[Tuple[str, str]] = []
    for statement in module.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and isinstance(statement.value, ast.Name)
        ):
            aliases.append((statement.targets[0].id, statement.value.id))
    return aliases


# ---------------------------------------------------------------------------
# Fixpoint resolution
# ---------------------------------------------------------------------------


@dataclass
class _Accum:
    """Mutable per-function accumulator during the fixpoint."""

    raw: RawSummary
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    deletes: Set[str] = field(default_factory=set)
    mutated_params: Set[str] = field(default_factory=set)
    global_mutations: Set[str] = field(default_factory=set)
    escapes: Dict[Tuple[str, int, int, str], Escape] = field(default_factory=dict)
    callees: Set[str] = field(default_factory=set)
    calls_unknown: bool = False

    def size(self) -> int:
        return (
            len(self.reads)
            + len(self.writes)
            + len(self.deletes)
            + len(self.mutated_params)
            + len(self.global_mutations)
            + len(self.escapes)
            + len(self.callees)
            + int(self.calls_unknown)
        )


def _add_escapes(accum: _Accum, escapes: Sequence[Escape]) -> None:
    for escape in escapes:
        key = (
            escape.kind.value,
            escape.span.line,
            escape.span.col,
            escape.detail,
        )
        if key not in accum.escapes:
            accum.escapes[key] = escape


def _fold_callee(accum: _Accum, site: CallSite, callee: _Accum) -> None:
    """Absorb a callee's current facts into the caller at one call site."""
    accum.reads |= callee.reads
    accum.writes |= callee.writes
    accum.deletes |= callee.deletes
    accum.global_mutations |= callee.global_mutations
    accum.calls_unknown = accum.calls_unknown or callee.calls_unknown
    accum.callees.add(callee.raw.qualname)
    _add_escapes(accum, list(callee.escapes.values()))

    raw = callee.raw
    for arg in site.args:
        if site.has_star:
            mutates = bool(callee.mutated_params)
        elif arg.keyword is not None:
            mutates = arg.keyword in callee.mutated_params or (
                raw.kwarg is not None
                and arg.keyword not in raw.params
                and arg.keyword not in raw.kwonly
                and raw.kwarg in callee.mutated_params
            )
        else:
            if arg.position < len(raw.params):
                mutates = raw.params[arg.position] in callee.mutated_params
            else:
                mutates = (
                    raw.vararg is not None
                    and raw.vararg in callee.mutated_params
                )
        if mutates:
            accum.global_mutations.update(arg.global_names)
            accum.mutated_params.update(arg.param_names)


def resolve_summaries(
    raws: Mapping[str, RawSummary]
) -> Dict[str, FunctionSummary]:
    """Close a set of raw summaries over direct calls by fixpoint.

    ``raws`` maps every binding visible at one point of the notebook to
    its raw summary. Each function starts from its own intraprocedural
    facts and monotonically absorbs callee facts until nothing grows;
    recursion and mutual recursion converge because every set is drawn
    from the finite universe of names in the program.
    """
    accums: Dict[str, _Accum] = {}
    for name in sorted(raws):
        raw = raws[name]
        accum = _Accum(raw=raw)
        accum.reads |= raw.reads
        accum.writes |= raw.writes
        accum.deletes |= raw.deletes
        accum.mutated_params |= raw.mutated_params
        accum.global_mutations |= raw.global_mutations
        accum.calls_unknown = raw.calls_unknown
        _add_escapes(accum, raw.escapes)
        accums[name] = accum

    for _round in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for name in sorted(accums):
            accum = accums[name]
            before = accum.size()
            for site in accum.raw.calls:
                callee = accums.get(site.callee)
                if callee is None:
                    accum.calls_unknown = True
                    continue
                _fold_callee(accum, site, callee)
                # A summarized function passed where the callee invokes a
                # parameter contributes its effects as a callback.
                if callee.raw.calls_params or site.has_star:
                    for arg in site.args:
                        if arg.base is None or arg.base_is_param:
                            continue
                        callback = accums.get(arg.base)
                        if callback is not None and callback is not accum:
                            _fold_callee(accum, site, callback)
                            accum.reads |= callback.reads
            # A summarized function loaded outside a direct call may be
            # invoked through an alias the analysis cannot follow.
            for aliased in sorted(accum.raw.aliased_names):
                other = accums.get(aliased)
                if other is not None and other is not accum:
                    accum.reads |= other.reads
                    accum.writes |= other.writes
                    accum.deletes |= other.deletes
                    accum.global_mutations |= other.global_mutations
                    accum.calls_unknown = (
                        accum.calls_unknown or other.calls_unknown
                    )
                    accum.callees.add(other.raw.qualname)
                    _add_escapes(accum, list(other.escapes.values()))
            if accum.size() != before:
                changed = True
        if not changed:
            break

    resolved: Dict[str, FunctionSummary] = {}
    for name in sorted(accums):
        accum = accums[name]
        raw = accum.raw
        resolved[name] = FunctionSummary(
            name=raw.name,
            qualname=raw.qualname,
            cell_index=raw.cell_index,
            span=raw.span,
            params=raw.params,
            kwonly=raw.kwonly,
            vararg=raw.vararg,
            kwarg=raw.kwarg,
            reads=frozenset(accum.reads),
            writes=frozenset(accum.writes),
            deletes=frozenset(accum.deletes),
            mutated_params=frozenset(accum.mutated_params),
            global_mutations=frozenset(accum.global_mutations),
            returns_params=raw.returns_params,
            returns_globals=raw.returns_globals,
            escapes=tuple(accum.escapes.values()),
            calls_params=raw.calls_params,
            callees=tuple(sorted(accum.callees - {raw.qualname})),
            calls_unknown=accum.calls_unknown,
        )
    return resolved


# ---------------------------------------------------------------------------
# The versioned notebook-level table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvalidationRecord:
    """One summary dropped from the table, and why."""

    cell_index: int
    name: str
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell_index,
            "name": self.name,
            "reason": self.reason,
        }


class SummaryView:
    """The resolved summaries visible to one cell of the notebook."""

    def __init__(
        self,
        index: int,
        functions: Dict[str, FunctionSummary],
        invalidated: FrozenSet[str] = frozenset(),
    ) -> None:
        self.index = index
        self._functions = functions
        self._invalidated = invalidated

    def get(self, name: str) -> Optional[FunctionSummary]:
        return self._functions.get(name)

    def is_invalidated(self, name: str) -> bool:
        """True when ``name`` once had a summary the table has dropped.

        Calls to such a name are more dangerous than calls to a plain
        unknown global: the function demonstrably exists (or existed)
        in user code, its current effects are unknowable, and hidden
        stores it performs bypass runtime recording — the call site
        must fall back to conservative detection.
        """
        return name in self._invalidated

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def functions(self) -> List[FunctionSummary]:
        """All visible summaries, sorted by (def cell, qualified name)."""
        return sorted(
            self._functions.values(),
            key=lambda fs: (fs.cell_index, fs.qualname),
        )


class NotebookSummaries:
    """Versioned function-summary table over one cell execution history.

    Feed it cells in execution order. For each cell,
    :meth:`view_for_cell` yields the :class:`SummaryView` the
    interprocedural :func:`~repro.analysis.visitor.analyze_cell` should
    analyze it with (earlier cells' live summaries plus the cell's own
    definitions, so same-cell def-then-call expands), and
    :meth:`observe_cell` commits the cell's binding events — new
    summaries, rebind invalidations, opaque-cell wipes — advancing the
    table. :meth:`advance` combines both and is what file-mode consumers
    (CLI, lint, dataflow) use; the live session splits the two around
    actual execution so failed cells invalidate but never register.
    """

    def __init__(self, stubs: Optional[StubContext] = None) -> None:
        self._events: Dict[str, List[Tuple[int, Optional[RawSummary]]]] = {}
        self._invalidations: List[InvalidationRecord] = []
        self._next_index = 0
        #: Library-stub context the extractor resolves library calls
        #: against (DESIGN.md §15). The table never advances it — the
        #: notebook-lifecycle owner calls ``stubs.observe_cell`` (or the
        #: table's own :meth:`advance` does, when it is the driver).
        self._stubs = stubs
        self._extract_cache: Dict[
            Tuple[str, Optional[str]], Dict[str, RawSummary]
        ] = {}
        self._resolve_cache: Dict[
            Tuple[Optional[str], Tuple[Tuple[str, int], ...]],
            Dict[str, FunctionSummary],
        ] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: Sequence[str],
        stubs: Optional[StubContext] = None,
    ) -> "NotebookSummaries":
        table = cls(stubs)
        for source in sources:
            table.advance(source)
        return table

    def _stub_token(self) -> Optional[str]:
        return self._stubs.fingerprint() if self._stubs is not None else None

    @property
    def next_index(self) -> int:
        return self._next_index

    @property
    def invalidations(self) -> Tuple[InvalidationRecord, ...]:
        return tuple(self._invalidations)

    # -- views ---------------------------------------------------------------

    def _live_raws(self, at_index: int) -> Dict[str, RawSummary]:
        live: Dict[str, RawSummary] = {}
        for name in self._events:
            latest: Optional[RawSummary] = None
            found = False
            for event_index, raw in self._events[name]:
                if event_index <= at_index:
                    latest = raw
                    found = True
                else:
                    break
            if found and latest is not None:
                live[name] = latest
        return live

    def _dead_names(self, at_index: int) -> Set[str]:
        """Names whose latest binding event ``<= at_index`` is an
        invalidation — once-summarized functions the table has dropped."""
        dead: Set[str] = set()
        for name, events in self._events.items():
            latest: Optional[RawSummary] = None
            found = False
            for event_index, raw in events:
                if event_index <= at_index:
                    latest = raw
                    found = True
                else:
                    break
            if found and latest is None:
                dead.add(name)
        return dead

    def _resolve(self, raws: Dict[str, RawSummary]) -> Dict[str, FunctionSummary]:
        key = (
            self._stub_token(),
            tuple(sorted((name, raw.cell_index) for name, raw in raws.items())),
        )
        cached = self._resolve_cache.get(key)
        if cached is None:
            cached = resolve_summaries(raws)
            self._resolve_cache[key] = cached
        return cached

    def view_at(self, at_index: int) -> SummaryView:
        """Summaries from cells ``<= at_index`` still live at that point."""
        return SummaryView(
            at_index + 1,
            self._resolve(self._live_raws(at_index)),
            frozenset(self._dead_names(at_index)),
        )

    def view_as_run(self, cell_index: int, source: str) -> SummaryView:
        """The view the effect analyzer had when ``cell_index`` ran.

        Retrospective twin of :meth:`view_for_cell`: live summaries
        from strictly earlier cells, overlaid with the cell's own
        definitions. ``view_at(cell_index)`` is wrong for call-site
        rules — a cell whose call surfaces an opaque escape wipes the
        table *at its own index*, hiding the very summary the finding
        is about.
        """
        raws = self._live_raws(cell_index - 1)
        own = {
            name: replace(raw, cell_index=cell_index)
            for name, raw in self._extract(source).items()
        }
        raws.update(own)
        dead = self._dead_names(cell_index - 1) - set(own)
        return SummaryView(cell_index + 1, self._resolve(raws), frozenset(dead))

    def _extract(self, source: str) -> Dict[str, RawSummary]:
        key = (source, self._stub_token())
        cached = self._extract_cache.get(key)
        if cached is not None:
            return {
                name: replace(raw, cell_index=self._next_index)
                for name, raw in cached.items()
            }
        try:
            module = ast.parse(source)
        except SyntaxError:
            return {}
        resolver = (
            self._stubs.resolver(module) if self._stubs is not None else None
        )
        raws = extract_cell_summaries(
            module, self._next_index, resolver=resolver
        )
        self._extract_cache[key] = raws
        return raws

    def view_for_cell(self, source: str) -> SummaryView:
        """The view to analyze ``source`` with, as the next cell.

        Live summaries from committed cells, overlaid with the cell's
        own definitions so a same-cell ``def f(): …`` / ``f()`` pair
        expands (calls textually before the def would too — such code
        raises ``NameError`` at runtime, so over-approximating is moot).
        """
        raws = self._live_raws(self._next_index - 1)
        own = self._extract(source)
        raws.update(own)
        # A name this cell re-defines is live again for its own analysis.
        dead = self._dead_names(self._next_index - 1) - set(own)
        return SummaryView(self._next_index, self._resolve(raws), frozenset(dead))

    # -- advancing -----------------------------------------------------------

    def _record(self, name: str, raw: Optional[RawSummary]) -> None:
        self._events.setdefault(name, []).append((self._next_index, raw))

    def _invalidate(self, name: str, reason: str) -> None:
        self._record(name, None)
        self._invalidations.append(
            InvalidationRecord(
                cell_index=self._next_index, name=name, reason=reason
            )
        )

    def observe_cell(
        self, source: str, effects: CellEffects, *, executed: bool = True
    ) -> None:
        """Commit one cell's binding events and advance the table.

        ``effects`` must be the (interprocedural) analysis of ``source``
        — its write sets drive rebind invalidation, including writes a
        called helper performs on the cell's behalf. ``executed=False``
        (the cell raised) applies invalidations — a partial execution
        may have rebound anything the cell could rebind — but registers
        no new summaries, since the defs may never have run.
        """
        try:
            module: Optional[ast.Module] = ast.parse(source)
        except SyntaxError:
            module = None
        if module is None:
            self._next_index += 1
            return

        live_before = self._live_raws(self._next_index - 1)

        opaque = effects.opaque_writes or any(
            escape.kind in _OPAQUE_ESCAPE_KINDS for escape in effects.escapes
        )
        if opaque:
            kinds = sorted(
                {
                    escape.kind.value
                    for escape in effects.escapes
                    if escape.kind in _OPAQUE_ESCAPE_KINDS
                }
            ) or ["opaque-writes"]
            for name in sorted(live_before):
                self._invalidate(name, f"opaque cell ({', '.join(kinds)})")
            self._next_index += 1
            return

        raws = self._extract(source)
        aliases = _alias_assignments(module)
        alias_targets = {target for target, _ in aliases}
        redefined_classes = {
            name.split(".", 1)[0] for name in raws if "." in name
        }

        # Names this cell binds by something *other* than a registration
        # form (a summarizable def/class, a lambda assignment, or a
        # simple alias): plain assignments, loop targets, del,
        # helper-mediated hidden stores, … Any live summary of such a
        # name is stale after this cell.
        other_bound: Set[str] = set()
        for statement in module.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and is_summarizable_def(statement):
                continue
            if isinstance(statement, ast.ClassDef) and not statement.decorator_list:
                continue
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and isinstance(statement.value, (ast.Lambda, ast.Name))
            ):
                continue
            stmt_locals, stmt_globals = _collect_bindings([statement])
            other_bound |= stmt_locals | stmt_globals
        other_bound |= effects.summary_writes | effects.summary_deletes
        other_bound |= effects.deletes | effects.conditional_deletes

        if not executed:
            # The cell raised: anything it *could* have rebound may or
            # may not have been, and its defs may never have run — drop
            # every affected live summary, register nothing.
            touched = other_bound | set(raws) | alias_targets
            for name in sorted(live_before):
                class_prefix = name.split(".", 1)[0]
                if name in touched or class_prefix in touched or (
                    "." in name and class_prefix in redefined_classes
                ):
                    self._invalidate(name, "binding cell raised")
            self._next_index += 1
            return

        for name in sorted(live_before):
            class_prefix = name.split(".", 1)[0]
            if name in other_bound or (
                "." in name and class_prefix in other_bound
            ):
                self._invalidate(name, "rebound by a later cell")
            elif "." in name and class_prefix in redefined_classes:
                # The class is being redefined; stale methods drop, the
                # replacements register below at this same cell index.
                self._invalidate(name, "class redefined")

        for name in sorted(raws):
            if name in other_bound:
                # Defined *and* otherwise rebound in one cell: the final
                # binding is ambiguous, stay conservative.
                if name in live_before:
                    self._invalidate(name, "ambiguous rebind in def cell")
                continue
            self._record(name, raws[name])
        for target, origin in aliases:
            if target in raws or target in other_bound:
                continue  # def/lambda registration or ambiguity wins
            source_raw = raws.get(origin) or live_before.get(origin)
            if source_raw is not None:
                self._record(target, replace(source_raw, name=target))
            elif target in live_before:
                self._invalidate(target, "rebound by a later cell")

        self._next_index += 1

    def advance(self, source: str) -> CellEffects:
        """Analyze one cell interprocedurally and commit its events.

        When the table carries a stub context it is the notebook driver
        here, so it also advances the type environment — callers that
        drive :meth:`observe_cell` themselves own that lifecycle instead.
        """
        view = self.view_for_cell(source)
        effects = analyze_cell(source, view, stubs=self._stubs)
        self.observe_cell(source, effects)
        if self._stubs is not None:
            self._stubs.observe_cell(source, opaque=effects.opaque_writes)
        return effects

    # -- reporting -----------------------------------------------------------

    def to_report(self) -> Dict[str, Any]:
        """JSON-stable summary report (the ``repro summaries`` payload)."""
        final = self.view_at(self._next_index - 1)
        functions = [summary.to_dict() for summary in final.functions()]
        return {
            "cells": self._next_index,
            "functions": functions,
            "invalidations": [
                record.to_dict() for record in self._invalidations
            ],
            "stats": {
                "live": len(functions),
                "invalidated": len(self._invalidations),
                "tracking_safe": sum(
                    1 for f in functions if f["tracking_safe"]
                ),
            },
        }
