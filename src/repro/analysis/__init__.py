"""Static cell-effect analysis (DESIGN.md §8).

A standalone static-analysis subsystem over notebook cells:

* :func:`analyze_cell` — AST-based effect analysis producing per-cell
  read/write/delete sets (definite vs. conditional) and an escape report
  (:class:`CellEffects`);
* :class:`LintEngine` / :class:`RuleRegistry` — a lint layer with stable
  rule ids, severities, and suppression comments, surfaced as ``%lint``
  in the REPL and ``repro lint`` on the command line;
* :class:`CrossValidator` — runtime cross-validation of Lemma 1,
  escalating cells whose access records cannot be trusted;
* :class:`ReadOnlyCellAnalyzer` / :data:`GLOBAL_PURITY` — the §6.2
  read-only cell rule, now with user-registerable purity whitelists
  (``repro.core.rules`` re-exports these for backward compatibility);
* :class:`NotebookSummaries` / :class:`FunctionSummary` — interprocedural
  function-effect summaries (DESIGN.md §14): a per-notebook call graph
  with fixpoint effect propagation, versioned per cell and invalidated on
  rebind, expanded at call sites by :func:`analyze_cell`.
"""

from repro.analysis.crossval import CrossValidator, ValidationOutcome
from repro.analysis.dataflow import (
    CellNode,
    DefUseEdge,
    EdgeKind,
    NotebookDataflowGraph,
    PlanStep,
    ReplayPlan,
    ReplayPlanner,
    Resolution,
    StoredVersion,
    make_cell_node,
    split_script_cells,
)
from repro.analysis.effects import CellEffects, Escape, EscapeKind, Span
from repro.analysis.flowrules import (
    NotebookContext,
    NotebookLintRule,
    default_notebook_rules,
)
from repro.analysis.reporters import (
    JsonReporter,
    TextReporter,
    finding_to_dict,
    worst_severity,
)
from repro.analysis.rules import (
    GLOBAL_PURITY,
    PURE_BUILTINS,
    PURE_METHODS,
    Finding,
    LintContext,
    LintEngine,
    LintRule,
    PurityRegistry,
    ReadOnlyCellAnalyzer,
    RuleRegistry,
    Severity,
)
from repro.analysis.summaries import (
    FunctionSummary,
    InvalidationRecord,
    NotebookSummaries,
    SummaryView,
    extract_cell_summaries,
    resolve_summaries,
)
from repro.analysis.visitor import EffectVisitor, analyze_cell, parse_cell

__all__ = [
    "CellEffects",
    "CellNode",
    "CrossValidator",
    "DefUseEdge",
    "EdgeKind",
    "EffectVisitor",
    "Escape",
    "EscapeKind",
    "Finding",
    "FunctionSummary",
    "GLOBAL_PURITY",
    "InvalidationRecord",
    "JsonReporter",
    "LintContext",
    "LintEngine",
    "LintRule",
    "NotebookContext",
    "NotebookDataflowGraph",
    "NotebookLintRule",
    "NotebookSummaries",
    "PURE_BUILTINS",
    "PURE_METHODS",
    "PlanStep",
    "PurityRegistry",
    "ReadOnlyCellAnalyzer",
    "ReplayPlan",
    "ReplayPlanner",
    "Resolution",
    "RuleRegistry",
    "Severity",
    "Span",
    "StoredVersion",
    "SummaryView",
    "TextReporter",
    "ValidationOutcome",
    "analyze_cell",
    "default_notebook_rules",
    "extract_cell_summaries",
    "finding_to_dict",
    "make_cell_node",
    "parse_cell",
    "resolve_summaries",
    "split_script_cells",
    "worst_severity",
]
