"""Static cell-effect analysis (DESIGN.md §8).

A standalone static-analysis subsystem over notebook cells:

* :func:`analyze_cell` — AST-based effect analysis producing per-cell
  read/write/delete sets (definite vs. conditional) and an escape report
  (:class:`CellEffects`);
* :class:`LintEngine` / :class:`RuleRegistry` — a lint layer with stable
  rule ids, severities, and suppression comments, surfaced as ``%lint``
  in the REPL and ``repro lint`` on the command line;
* :class:`CrossValidator` — runtime cross-validation of Lemma 1,
  escalating cells whose access records cannot be trusted;
* :class:`ReadOnlyCellAnalyzer` / :data:`GLOBAL_PURITY` — the §6.2
  read-only cell rule, now with user-registerable purity whitelists
  (``repro.core.rules`` re-exports these for backward compatibility);
* :class:`NotebookSummaries` / :class:`FunctionSummary` — interprocedural
  function-effect summaries (DESIGN.md §14): a per-notebook call graph
  with fixpoint effect propagation, versioned per cell and invalidated on
  rebind, expanded at call sites by :func:`analyze_cell`;
* :class:`StubRegistry` / :class:`StubContext` — library effect stubs
  (DESIGN.md §15): declarative per-callable effect models keyed by
  resolved import names, bound to receivers by a flow-insensitive local
  type tracker and consulted by :func:`analyze_cell` before any call is
  declared opaque.
"""

from repro.analysis.crossval import CrossValidator, ValidationOutcome
from repro.analysis.dataflow import (
    CellNode,
    DefUseEdge,
    EdgeKind,
    NotebookDataflowGraph,
    PlanStep,
    ReplayPlan,
    ReplayPlanner,
    Resolution,
    StoredVersion,
    make_cell_node,
    split_script_cells,
)
from repro.analysis.effects import CellEffects, Escape, EscapeKind, Span
from repro.analysis.flowrules import (
    NotebookContext,
    NotebookLintRule,
    default_notebook_rules,
)
from repro.analysis.reporters import (
    JsonReporter,
    TextReporter,
    finding_to_dict,
    worst_severity,
)
from repro.analysis.rules import (
    GLOBAL_PURITY,
    PURE_BUILTINS,
    PURE_METHODS,
    Finding,
    LintContext,
    LintEngine,
    LintRule,
    PurityRegistry,
    ReadOnlyCellAnalyzer,
    RuleRegistry,
    Severity,
)
from repro.analysis.stubs import (
    STUB_FORMAT_VERSION,
    CallStub,
    ModuleStubs,
    StubError,
    StubRegistry,
    TypeStub,
    default_registry,
    load_stub_file,
    parse_stub_mapping,
    shipped_stub_files,
)
from repro.analysis.summaries import (
    FunctionSummary,
    InvalidationRecord,
    NotebookSummaries,
    SummaryView,
    extract_cell_summaries,
    resolve_summaries,
)
from repro.analysis.typetrack import (
    AbstractType,
    CellResolver,
    NotebookTypeEnv,
    ResolvedCall,
    StubContext,
    UnknownLibraryCall,
    stub_call_mutates,
    stub_is_pure_at,
)
from repro.analysis.visitor import EffectVisitor, analyze_cell, parse_cell

__all__ = [
    "AbstractType",
    "CallStub",
    "CellEffects",
    "CellNode",
    "CellResolver",
    "CrossValidator",
    "DefUseEdge",
    "EdgeKind",
    "EffectVisitor",
    "Escape",
    "EscapeKind",
    "Finding",
    "FunctionSummary",
    "GLOBAL_PURITY",
    "InvalidationRecord",
    "JsonReporter",
    "LintContext",
    "LintEngine",
    "LintRule",
    "ModuleStubs",
    "NotebookContext",
    "NotebookDataflowGraph",
    "NotebookLintRule",
    "NotebookSummaries",
    "NotebookTypeEnv",
    "PURE_BUILTINS",
    "PURE_METHODS",
    "PlanStep",
    "PurityRegistry",
    "ReadOnlyCellAnalyzer",
    "ReplayPlan",
    "ReplayPlanner",
    "ResolvedCall",
    "Resolution",
    "RuleRegistry",
    "STUB_FORMAT_VERSION",
    "Severity",
    "Span",
    "StoredVersion",
    "StubContext",
    "StubError",
    "StubRegistry",
    "SummaryView",
    "TextReporter",
    "TypeStub",
    "UnknownLibraryCall",
    "ValidationOutcome",
    "analyze_cell",
    "default_notebook_rules",
    "default_registry",
    "extract_cell_summaries",
    "finding_to_dict",
    "load_stub_file",
    "make_cell_node",
    "parse_cell",
    "parse_stub_mapping",
    "resolve_summaries",
    "shipped_stub_files",
    "split_script_cells",
    "stub_call_mutates",
    "stub_is_pure_at",
    "worst_severity",
]
