"""Static cell-effect analysis (DESIGN.md §8).

A standalone static-analysis subsystem over notebook cells:

* :func:`analyze_cell` — AST-based effect analysis producing per-cell
  read/write/delete sets (definite vs. conditional) and an escape report
  (:class:`CellEffects`);
* :class:`LintEngine` / :class:`RuleRegistry` — a lint layer with stable
  rule ids, severities, and suppression comments, surfaced as ``%lint``
  in the REPL and ``repro lint`` on the command line;
* :class:`CrossValidator` — runtime cross-validation of Lemma 1,
  escalating cells whose access records cannot be trusted;
* :class:`ReadOnlyCellAnalyzer` / :data:`GLOBAL_PURITY` — the §6.2
  read-only cell rule, now with user-registerable purity whitelists
  (``repro.core.rules`` re-exports these for backward compatibility).
"""

from repro.analysis.crossval import CrossValidator, ValidationOutcome
from repro.analysis.effects import CellEffects, Escape, EscapeKind, Span
from repro.analysis.reporters import (
    JsonReporter,
    TextReporter,
    finding_to_dict,
    worst_severity,
)
from repro.analysis.rules import (
    GLOBAL_PURITY,
    PURE_BUILTINS,
    PURE_METHODS,
    Finding,
    LintContext,
    LintEngine,
    LintRule,
    PurityRegistry,
    ReadOnlyCellAnalyzer,
    RuleRegistry,
    Severity,
)
from repro.analysis.visitor import EffectVisitor, analyze_cell, parse_cell

__all__ = [
    "CellEffects",
    "CrossValidator",
    "EffectVisitor",
    "Escape",
    "EscapeKind",
    "Finding",
    "GLOBAL_PURITY",
    "JsonReporter",
    "LintContext",
    "LintEngine",
    "LintRule",
    "PURE_BUILTINS",
    "PURE_METHODS",
    "PurityRegistry",
    "ReadOnlyCellAnalyzer",
    "RuleRegistry",
    "Severity",
    "Span",
    "TextReporter",
    "ValidationOutcome",
    "analyze_cell",
    "finding_to_dict",
    "parse_cell",
    "worst_severity",
]
