"""Flow-insensitive local type tracking for stub resolution (DESIGN.md §15.2).

Effect stubs (:mod:`repro.analysis.stubs`) are keyed by fully-qualified
names, but cell code calls them through local bindings: ``import
repro.libsim.data_analysis as _simda``, ``df = _simda.SimDataFrame()``,
``df.drop_column("c0")``. This module proves those bindings, binding
receiver expressions to **abstract types**:

* ``Module(m)`` — the name is ``m``'s module object (from ``import``);
* ``Instance(T)`` — the name holds an instance of stubbed type ``T``
  (from a constructor call or a stubbed return type);
* ``Callable(q)`` — the name is the stubbed callable ``q`` itself
  (from ``from m import f``).

The lattice per name is ``unknown ⊐ one-type ⊐ (unused)``: a name either
has exactly one proven type or it has none. Tracking is deliberately
**flow-insensitive and conservative** — a name rebound within a cell to
anything the tracker cannot type, rebound to two different types, stored
from a nested scope, or bound by a construct the tracker does not model,
resolves to *unknown*, and stubs never fire on it. ``from m import *``
poisons the whole cell (:attr:`CellResolver.sound`): star imports bind a
statically unknowable set of names, so no binding in that cell is
provable (the satellite property test pins this).

Soundness is two-layered: the tracker only *under*-claims bindings (a
missed binding costs precision, never correctness), and even a wrong
stub fired on a correctly-typed receiver is caught at runtime by the
CrossValidator's stub-mismatch check — declared trust, verified deltas.

Per notebook, :class:`NotebookTypeEnv` carries bindings across cells
with the same lifecycle as the summary table: executed cells apply
their exported bindings, opaque cells (``exec`` / ``globals()`` / star
imports) wipe the environment, and per-cell snapshots let the lint
rules re-resolve cells as they ran. :class:`StubContext` bundles a
registry with one environment — the single object the session, the
dataflow graph builder, and the summary extractor share.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.stubs import CallStub, StubRegistry, default_registry

MODULE = "module"
INSTANCE = "instance"
CALLABLE = "callable"


@dataclass(frozen=True)
class AbstractType:
    """One point of the tracking lattice (below *unknown*)."""

    kind: str
    qualname: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.qualname}"


def module_type(qualname: str) -> AbstractType:
    return AbstractType(MODULE, qualname)


def instance_type(qualname: str) -> AbstractType:
    return AbstractType(INSTANCE, qualname)


def callable_type(qualname: str) -> AbstractType:
    return AbstractType(CALLABLE, qualname)


@dataclass(frozen=True)
class ResolvedCall:
    """A call site resolved to a stub through proven bindings."""

    stub: CallStub
    #: Fully-qualified name the call resolved to.
    qualname: str
    #: Base plain name of the receiver expression (mutation target), or
    #: ``None`` when the receiver is not rooted at a name.
    receiver: Optional[str]
    receiver_type: Optional[AbstractType]


@dataclass(frozen=True)
class UnknownLibraryCall:
    """A library-shaped call no stub covers (KSH502 raw material)."""

    #: Qualified name of the uncovered callable, best effort.
    qualname: str
    #: Stub file that covers the module/type, if one exists to extend.
    stub_file: Optional[str]


def stub_call_mutates(stub: CallStub, call: ast.Call) -> bool:
    """Does this call site mutate its receiver, per the stub?

    ``mutates_if`` keywords (pandas ``inplace=True``) are decided from
    the literal keyword value; a non-literal value or a ``**kwargs``
    splat is conservatively mutating.
    """
    if stub.mutates_if is not None:
        keyword = next(
            (k for k in call.keywords if k.arg == stub.mutates_if.kwarg), None
        )
        if keyword is None:
            if any(k.arg is None for k in call.keywords):
                return True  # **kwargs may smuggle the flag in
            return stub.mutates_if.default or stub.effect == "mutates"
        if isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, bool
        ):
            return keyword.value.value
        return True
    return stub.effect == "mutates"


def stub_is_pure_at(stub: CallStub, call: ast.Call) -> bool:
    """Whole-call purity at one site: nothing the call can reach —
    receiver, arguments, globals — is mutated, and no escape fires."""
    return (
        not stub_call_mutates(stub, call)
        and not stub.mutates_args
        and not stub.writes_globals
        and stub.escape is None
    )


def _base_name(node: ast.expr) -> Optional[str]:
    """The plain name a receiver expression is rooted at, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


#: One binding event: a pre-resolved type (imports) or the bound rhs
#: expression (assignments, resolved by inference), or ``None`` (poison).
_BindEvent = Union[AbstractType, ast.expr, None]


class CellResolver:
    """Binding proofs and stub resolution for one cell's AST.

    Construction scans the module: import statements and module-level
    simple assignments produce typed binding events; every *other* store
    of a name — nested scopes, tuple targets, loop/with targets, walrus,
    ``del``, def/class statements — poisons that name. The final per-name
    verdict is the flow-insensitive meet of the incoming environment and
    every binding event: one agreed type, or unknown.
    """

    def __init__(
        self,
        registry: StubRegistry,
        env: Mapping[str, AbstractType],
        module: ast.Module,
    ) -> None:
        self._registry = registry
        self._env = dict(env)
        #: False when a star import makes every binding unprovable.
        self.sound = not any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "*" for alias in node.names)
            for node in ast.walk(module)
        )
        self._events: Dict[str, List[_BindEvent]] = {}
        self._accounted: Dict[str, int] = {}
        self._scan_statements(module.body)
        self._poison_unaccounted(module)
        self._use: Dict[str, Optional[AbstractType]] = {}
        self._finalize()

    # -- binding collection ------------------------------------------------

    def _event(self, name: str, event: _BindEvent, stores: int = 0) -> None:
        self._events.setdefault(name, []).append(event)
        if stores:
            self._accounted[name] = self._accounted.get(name, 0) + stores

    def _scan_statements(self, statements: List[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.asname is not None:
                        self._event(alias.asname, module_type(alias.name))
                    else:
                        top = alias.name.split(".", 1)[0]
                        self._event(top, module_type(top))
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue  # the sound flag already covers the cell
                    bound = alias.asname or alias.name
                    if stmt.level or stmt.module is None:
                        self._event(bound, None)  # relative import: unknown
                        continue
                    self._event(bound, self._from_import_type(stmt.module, alias.name))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._event(target.id, stmt.value, stores=1)
                    else:
                        self._poison_target(target)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    self._event(stmt.target.id, stmt.value, stores=1)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    self._event(stmt.target.id, None, stores=1)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._event(target.id, None, stores=1)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._event(stmt.name, None)
            elif isinstance(stmt, ast.If):
                self._scan_statements(stmt.body)
                self._scan_statements(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_statements(stmt.body)
                self._scan_statements(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._scan_statements(stmt.body)
                self._scan_statements(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_statements(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._scan_statements(stmt.body)
                for handler in stmt.handlers:
                    if handler.name is not None:
                        self._event(handler.name, None)
                    self._scan_statements(handler.body)
                self._scan_statements(stmt.orelse)
                self._scan_statements(stmt.finalbody)

    def _poison_target(self, target: ast.expr) -> None:
        """Tuple/list/starred unpack targets: bound, but untyped."""
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                self._event(node.id, None, stores=1)

    def _poison_unaccounted(self, module: ast.Module) -> None:
        """Any store the scan did not model poisons the name.

        This sweep is the conservativeness backstop: walrus targets,
        comprehension targets, loop/with variables, and nested-scope
        stores (including ``global``-declared ones) all reach here, so a
        name the tracker did not explicitly type can never keep a stale
        environment binding.
        """
        counts: Dict[str, int] = {}
        for node in ast.walk(module):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                counts[node.id] = counts.get(node.id, 0) + 1
        for name, count in counts.items():
            if count > self._accounted.get(name, 0):
                self._events.setdefault(name, []).append(None)

    def _from_import_type(self, module: str, name: str) -> Optional[AbstractType]:
        qualname = f"{module}.{name}"
        stubs = self._registry.module(module)
        if stubs is not None and (name in stubs.functions or name in stubs.types):
            return callable_type(qualname)
        if self._registry.has_module_prefix(qualname):
            return module_type(qualname)
        return None

    # -- verdicts ----------------------------------------------------------

    def _finalize(self) -> None:
        use: Dict[str, Optional[AbstractType]] = dict(self._env)
        for _ in range(4):
            changed = False
            for name, events in self._events.items():
                candidate = self._meet_events(events, use)
                if name in self._env:
                    final = (
                        candidate
                        if candidate is not None and self._env[name] == candidate
                        else None
                    )
                else:
                    final = candidate
                if use.get(name) != final:
                    use[name] = final
                    changed = True
            if not changed:
                break
        self._use = use

    def _meet_events(
        self,
        events: List[_BindEvent],
        use: Dict[str, Optional[AbstractType]],
    ) -> Optional[AbstractType]:
        seen: Optional[AbstractType] = None
        for event in events:
            if event is None:
                return None
            if isinstance(event, AbstractType):
                inferred: Optional[AbstractType] = event
            else:
                inferred = self._infer(event, use)
            if inferred is None:
                return None
            if seen is None:
                seen = inferred
            elif seen != inferred:
                return None
        return seen

    def _infer(
        self, expr: ast.expr, use: Dict[str, Optional[AbstractType]]
    ) -> Optional[AbstractType]:
        if isinstance(expr, ast.Name):
            return use.get(expr.id)
        if isinstance(expr, ast.Attribute):
            value = self._infer(expr.value, use)
            if value is None:
                return None
            if value.kind == MODULE:
                submodule = f"{value.qualname}.{expr.attr}"
                stubs = self._registry.module(value.qualname)
                if stubs is not None:
                    attr_type = stubs.attributes.get(expr.attr)
                    if attr_type is not None:
                        return instance_type(attr_type)
                    if expr.attr in stubs.functions or expr.attr in stubs.types:
                        return callable_type(submodule)
                if self._registry.has_module_prefix(submodule):
                    return module_type(submodule)
            return None
        if isinstance(expr, ast.Call):
            resolved = self._resolve_with(expr, use)
            if resolved is None:
                return None
            if resolved.stub.returns_receiver:
                if isinstance(resolved.stub, CallStub) and isinstance(
                    expr.func, ast.Attribute
                ):
                    return self._infer(expr.func.value, use)
                return None
            if resolved.stub.returns is not None:
                return instance_type(resolved.stub.returns)
            return None
        return None

    # -- resolution --------------------------------------------------------

    def bindings(self) -> Dict[str, Optional[AbstractType]]:
        """Final per-name verdicts (``None`` = unknown) for this cell."""
        return dict(self._use)

    def exports(self) -> Dict[str, Optional[AbstractType]]:
        """Environment delta this cell applies when it executes: every
        name it binds, mapped to its proven type or ``None``."""
        return {name: self._use.get(name) for name in self._events}

    def type_of(self, name: str) -> Optional[AbstractType]:
        return self._use.get(name)

    def infer_expr(self, expr: ast.expr) -> Optional[AbstractType]:
        if not self.sound:
            return None
        return self._infer(expr, self._use)

    def resolve_call(self, call: ast.Call) -> Optional[ResolvedCall]:
        """Resolve one call site to a stub, or ``None``.

        Never resolves inside an unsound (star-imported) cell, and never
        resolves through a binding the scan could not prove — the two
        invariants the satellite property test exercises.
        """
        if not self.sound:
            return None
        return self._resolve_with(call, self._use)

    def _resolve_with(
        self, call: ast.Call, use: Dict[str, Optional[AbstractType]]
    ) -> Optional[ResolvedCall]:
        func = call.func
        if isinstance(func, ast.Name):
            bound = use.get(func.id)
            if bound is None or bound.kind != CALLABLE:
                return None
            stub = self._registry.callable(bound.qualname)
            if stub is None:
                return None
            return ResolvedCall(
                stub=stub, qualname=bound.qualname, receiver=None, receiver_type=None
            )
        if not isinstance(func, ast.Attribute):
            return None
        receiver_type = self._infer(func.value, use)
        if receiver_type is None:
            return None
        receiver = _base_name(func.value)
        if receiver_type.kind == MODULE:
            stub = self._registry.function(receiver_type.qualname, func.attr)
            if stub is None:
                stub = self._registry.constructor(
                    f"{receiver_type.qualname}.{func.attr}"
                )
            if stub is None:
                return None
            return ResolvedCall(
                stub=stub,
                qualname=f"{receiver_type.qualname}.{func.attr}",
                receiver=receiver,
                receiver_type=receiver_type,
            )
        if receiver_type.kind == INSTANCE:
            stub = self._registry.method(receiver_type.qualname, func.attr)
            if stub is None:
                return None
            return ResolvedCall(
                stub=stub,
                qualname=f"{receiver_type.qualname}.{func.attr}",
                receiver=receiver,
                receiver_type=receiver_type,
            )
        return None

    def method_effect(self, call: ast.Call) -> Optional[bool]:
        """Three-valued mutation oracle for the dataflow layer: ``True``
        (mutates its receiver), ``False`` (provably pure), ``None``
        (no stub proof — fall back to heuristics)."""
        resolved = self.resolve_call(call)
        if resolved is None:
            return None
        if stub_call_mutates(resolved.stub, call):
            return True
        # A pure verdict must cover the *whole* call: a call mutating its
        # arguments or globals is not safe to drop from the mutator set.
        if self._stub_is_pure_at(resolved.stub, call):
            return False
        return None

    def _stub_is_pure_at(self, stub: CallStub, call: ast.Call) -> bool:
        return stub_is_pure_at(stub, call)

    def unknown_library_call(self, call: ast.Call) -> Optional[UnknownLibraryCall]:
        """Classify an *unresolved* call as library-shaped, if it is.

        A call is library-shaped when its receiver provably is a module
        object or an instance of a stubbed type, yet no stub entry covers
        the member — exactly the situation KSH502's fix-it points at.
        """
        if not self.sound or not isinstance(call.func, ast.Attribute):
            return None
        receiver_type = self._infer(call.func.value, self._use)
        if receiver_type is None:
            return None
        qualname = f"{receiver_type.qualname}.{call.func.attr}"
        if receiver_type.kind == MODULE:
            stubs = self._registry.module(receiver_type.qualname)
            return UnknownLibraryCall(
                qualname=qualname,
                stub_file=stubs.source if stubs is not None else None,
            )
        if receiver_type.kind == INSTANCE:
            module_name = receiver_type.qualname.rpartition(".")[0]
            stubs = self._registry.module(module_name)
            return UnknownLibraryCall(
                qualname=qualname,
                stub_file=stubs.source if stubs is not None else None,
            )
        return None


_OPAQUE_CALLEES = frozenset(
    {"exec", "eval", "globals", "locals", "vars", "__import__"}
)


def _module_is_opaque(module: ast.Module) -> bool:
    """Light-weight opacity check for drivers without full effects."""
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _OPAQUE_CALLEES
        ):
            return True
    return False


class NotebookTypeEnv:
    """Abstract-type bindings carried across one notebook's cells.

    Mirrors the :class:`~repro.analysis.summaries.NotebookSummaries`
    lifecycle: ``observe_cell`` after each *executed* cell applies its
    exported bindings (opaque and star-import cells wipe everything —
    the namespace may have been arbitrarily rebound), and per-cell
    snapshots support retrospective ``as-run`` resolution for lint.
    """

    def __init__(self, registry: Optional[StubRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._env: Dict[str, AbstractType] = {}
        #: Environment *before* each observed cell, by cell index.
        self._snapshots: List[Dict[str, AbstractType]] = []

    # -- resolution --------------------------------------------------------

    def current(self) -> Dict[str, AbstractType]:
        return dict(self._env)

    def env_at(self, index: int) -> Dict[str, AbstractType]:
        if 0 <= index < len(self._snapshots):
            return dict(self._snapshots[index])
        return dict(self._env)

    def resolver(self, module: ast.Module) -> CellResolver:
        return CellResolver(self.registry, self._env, module)

    def resolver_as_run(self, index: int, module: ast.Module) -> CellResolver:
        return CellResolver(self.registry, self.env_at(index), module)

    # -- lifecycle ---------------------------------------------------------

    def observe_cell(
        self,
        source: str,
        *,
        executed: bool = True,
        opaque: Optional[bool] = None,
    ) -> None:
        """Advance the environment past one cell.

        ``opaque`` should be the cell's ``effects.opaque_writes`` when
        the caller has analyzed it; left ``None``, a light-weight scan
        decides. Non-executed cells keep the environment unchanged.
        """
        self._snapshots.append(dict(self._env))
        if not executed:
            return
        try:
            module = ast.parse(source)
        except SyntaxError:
            return  # the cell cannot have executed either
        resolver = CellResolver(self.registry, self._env, module)
        if opaque is None:
            opaque = _module_is_opaque(module)
        if opaque or not resolver.sound:
            self._env = {}
            return
        for name, bound in resolver.exports().items():
            if bound is None:
                self._env.pop(name, None)
            else:
                self._env[name] = bound

    def reset(self) -> None:
        self._env = {}
        self._snapshots = []

    @classmethod
    def from_sources(
        cls,
        sources: List[str],
        registry: Optional[StubRegistry] = None,
    ) -> "NotebookTypeEnv":
        env = cls(registry)
        for source in sources:
            env.observe_cell(source)
        return env

    def fingerprint(self) -> str:
        parts = sorted(
            f"{name}={bound.kind}:{bound.qualname}"
            for name, bound in self._env.items()
        )
        import hashlib

        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:12]


class StubContext:
    """A stub registry bound to one notebook's type environment.

    The single handle the session, the dataflow graph builder, and the
    summary extractor share; whoever owns the notebook lifecycle calls
    :meth:`observe_cell` exactly once per executed cell.
    """

    def __init__(
        self,
        registry: Optional[StubRegistry] = None,
        env: Optional[NotebookTypeEnv] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.env = env if env is not None else NotebookTypeEnv(self.registry)

    def resolver(self, module: ast.Module) -> CellResolver:
        return self.env.resolver(module)

    def resolver_as_run(self, index: int, module: ast.Module) -> CellResolver:
        return self.env.resolver_as_run(index, module)

    def observe_cell(
        self,
        source: str,
        *,
        executed: bool = True,
        opaque: Optional[bool] = None,
    ) -> None:
        self.env.observe_cell(source, executed=executed, opaque=opaque)

    def reset(self) -> None:
        self.env.reset()

    def fingerprint(self) -> str:
        return f"{self.registry.fingerprint()}:{self.env.fingerprint()}"
