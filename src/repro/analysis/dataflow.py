"""Inter-cell dataflow graph and static replay planning (DESIGN.md §10).

PR 3's :class:`~repro.analysis.effects.CellEffects` describe what one cell
may do to the session namespace. This module lifts those per-cell effect
sets to a *whole-notebook* view: a :class:`NotebookDataflowGraph` chaining
the cells of an execution history into def-use edges, and a
:class:`ReplayPlanner` that answers the question fallback recomputation
(§5.3 of the paper) actually needs answered — *which minimal ordered
subset of cells must re-execute to reconstruct these variables at that
point in history?*

The graph distinguishes four edge kinds, ordered from strongest to
weakest knowledge:

* ``DEFINITE`` — the read is satisfied by the latest unconditional
  top-level write of the name;
* ``CONDITIONAL`` — a guarded write (branch arm, loop body, function
  body) after the definite writer may have produced the value instead;
* ``MUTATION`` — a cell that holds the name only in a *Load* context but
  syntactically mutates through it (``x[0] = …``, ``x.append(…)``,
  ``x.attr = …``) may have changed the object in place;
* ``ESCAPE`` — a cell whose effects are opaque (``exec``, star imports,
  hidden global stores, …) conservatively widens to a potential producer
  of *every* name.

Deletions kill definitions: a definite ``del x`` ends the reaching scope
of every earlier producer of ``x``.

The planner walks these edges backward from a target name set, optionally
short-circuiting through *stored versions* (checkpoint payloads known to
hold the value at an intermediate point), and returns a
:class:`ReplayPlan` — an ordered list of load and replay steps, the names
it could not resolve, and, crucially, an explicit ``unsafe_reasons`` list
whenever the plan routes through an escaped cell: a plan through opaque
code is *reported* as replay-unsafe, never silently presented as minimal.

Everything here is deterministic: cells are analyzed in index order,
name sets iterate sorted, and plan/lint output is byte-stable across
runs and interpreters (no ``id()``, no hash-order dependence).
"""

from __future__ import annotations

import ast
import builtins
import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.effects import CellEffects, Span
from repro.analysis.visitor import analyze_cell

if TYPE_CHECKING:  # pragma: no cover - cycle broken by lazy import
    from repro.analysis.summaries import NotebookSummaries, SummaryView
    from repro.analysis.typetrack import StubContext

__all__ = [
    "CellNode",
    "DefUseEdge",
    "EdgeKind",
    "NotebookDataflowGraph",
    "PlanStep",
    "ReplayPlan",
    "ReplayPlanner",
    "Resolution",
    "StoredVersion",
    "ast_cost",
    "make_cell_node",
    "split_script_cells",
]


# ---------------------------------------------------------------------------
# Per-cell analysis beyond CellEffects: ordered external reads and
# in-place mutation capture.
# ---------------------------------------------------------------------------


class _TopLevelLoadCollector(ast.NodeVisitor):
    """Collects Name loads evaluated when a statement executes.

    Skips the bodies of nested function/lambda definitions (those loads
    happen at call time, possibly after later bindings) but descends into
    class bodies, comprehensions, and default-value expressions, which
    evaluate eagerly. Comprehension-local targets are excluded.
    """

    def __init__(self) -> None:
        self.loads: List[str] = []
        self._comp_locals: Set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id not in self._comp_locals:
            self.loads.append(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function_header(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function_header(node)

    def _visit_function_header(
        self, node: Any
    ) -> None:  # ast.FunctionDef | ast.AsyncFunctionDef
        # Decorators, defaults, and annotations evaluate at def time.
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)

    def _visit_comprehension(self, node: ast.AST) -> None:
        comp_locals: Set[str] = set()
        for generator in getattr(node, "generators", []):
            for target in ast.walk(generator.target):
                if isinstance(target, ast.Name):
                    comp_locals.add(target.id)
        previous = self._comp_locals
        self._comp_locals = previous | comp_locals
        try:
            self.generic_visit(node)
        finally:
            self._comp_locals = previous

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)


def _statement_bindings(statement: ast.stmt) -> Set[str]:
    """Names a top-level statement binds when it executes."""
    bound: Set[str] = set()

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            add_target(target)
    elif isinstance(statement, ast.AnnAssign):
        if statement.value is not None:
            add_target(statement.target)
    elif isinstance(statement, ast.AugAssign):
        add_target(statement.target)
    elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        bound.add(statement.name)
    elif isinstance(statement, ast.Import):
        for alias in statement.names:
            bound.add(alias.asname or alias.name.split(".")[0])
    elif isinstance(statement, ast.ImportFrom):
        for alias in statement.names:
            if alias.name != "*":
                bound.add(alias.asname or alias.name)
    # Walrus targets bind wherever the expression evaluates.
    for child in ast.walk(statement):
        if isinstance(child, ast.NamedExpr) and isinstance(child.target, ast.Name):
            bound.add(child.target.id)
    return bound


def ordered_external_reads(module: ast.Module) -> FrozenSet[str]:
    """Names a cell reads *before* binding them at top level.

    Walking the module body in statement order and threading the
    bound-so-far set distinguishes ``x = 1; y = x`` (no external read of
    ``x``) from ``x = x + 1`` as a first statement (external read). Reads
    inside nested function bodies are excluded — they execute at call
    time, by which point the cell's own top-level bindings exist.
    """
    bound: Set[str] = set()
    external: Set[str] = set()
    for statement in module.body:
        collector = _TopLevelLoadCollector()
        collector.visit(statement)
        external |= set(collector.loads) - bound
        bound |= _statement_bindings(statement)
    return frozenset(external)


#: Method names treated as non-mutating for mutation capture. Kept local
#: (rather than importing the lint purity registry) so the dataflow layer
#: has no dependency on the lint layer; the sets intentionally agree.
_PURE_METHOD_NAMES: FrozenSet[str] = frozenset(
    {"head", "tail", "describe", "info", "keys", "values", "items", "get",
     "mean", "sum", "min", "max", "std", "count", "copy", "hexdigest",
     "index", "startswith", "endswith", "split", "join", "strip", "encode",
     "decode", "format", "lower", "upper", "tolist", "item"}
)


def _base_name(node: ast.expr) -> Optional[str]:
    """The root Name of an attribute/subscript access chain, if any."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def in_place_mutation_targets(
    module: ast.Module,
    *,
    skip_function_bodies: bool = False,
    method_effect: Optional[Callable[[ast.Call], Optional[bool]]] = None,
) -> FrozenSet[str]:
    """Names through which a cell may mutate an object without rebinding.

    Captures subscript/attribute stores and deletes (``x[0] = v``,
    ``x.attr = v``, ``del x[k]``), augmented assignment to a subscript or
    attribute, and calls of non-whitelisted methods on a name
    (``x.append(v)``). This over-approximates — a pure custom ``append``
    is still captured — which is the sound direction for replay planning:
    a possible mutator is included in the plan, never dropped.

    With ``skip_function_bodies`` (summary mode), mutations inside
    function/lambda bodies are excluded: they happen at call time and are
    attributed to call sites through the callee's
    :class:`~repro.analysis.summaries.FunctionSummary` instead of
    spuriously marking the defining cell a mutator.

    ``method_effect`` (the stub layer's
    :meth:`~repro.analysis.typetrack.CellResolver.method_effect`)
    overrides the name-based heuristic per call site: ``True`` forces
    mutation capture, ``False`` is a *proof* of purity and suppresses it,
    ``None`` falls back to the ``_PURE_METHOD_NAMES`` check.
    """
    mutated: Set[str] = set()

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if skip_function_bodies and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # Decorators and default values still evaluate at def time.
                for decorator in getattr(child, "decorator_list", []):
                    walk(decorator)
                for default in list(child.args.defaults) + [
                    d for d in child.args.kw_defaults if d is not None
                ]:
                    walk(default)
                continue
            visit(child)

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            name = _base_name(node)
            if name is not None:
                mutated.add(name)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, (ast.Attribute, ast.Subscript)
        ):
            name = _base_name(node.target)
            if name is not None:
                mutated.add(name)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            verdict = method_effect(node) if method_effect is not None else None
            if verdict is None:
                verdict = node.func.attr not in _PURE_METHOD_NAMES
            if verdict:
                name = _base_name(node.func.value)
                if name is not None:
                    mutated.add(name)
        walk(node)

    walk(module)
    return frozenset(mutated)


# ---------------------------------------------------------------------------
# Cell nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellNode:
    """One cell of an execution history, with its static analysis.

    ``index`` is the cell's position in execution order (0-based);
    ``node_id`` optionally names the checkpoint node the cell committed
    as; ``execution_count`` is the kernel's counter (0 when unknown).
    """

    index: int
    label: str
    source: str
    effects: CellEffects
    external_reads: FrozenSet[str] = frozenset()
    mutators: FrozenSet[str] = frozenset()
    execution_count: int = 0
    node_id: Optional[str] = None

    @property
    def executed(self) -> bool:
        """Cells that failed to parse never ran; they produce nothing."""
        return self.effects.syntax_error is None

    @property
    def is_opaque(self) -> bool:
        return self.executed and self.effects.is_opaque

    @property
    def dependency_names(self) -> FrozenSet[str]:
        """Names whose pre-cell values the cell's execution may consume.

        Ordered definite external reads plus every conditional read —
        guarded reads cannot be ordered against top-level bindings, so
        they are conservatively treated as external.
        """
        return frozenset(
            self.external_reads | self.effects.conditional_reads
        )


def make_cell_node(
    index: int,
    source: str,
    *,
    label: Optional[str] = None,
    execution_count: int = 0,
    node_id: Optional[str] = None,
    summaries: "Optional[SummaryView]" = None,
    stubs: "Optional[StubContext]" = None,
) -> CellNode:
    """Analyze one cell source into a :class:`CellNode`.

    With ``summaries`` the analysis is interprocedural: calls to
    summarized helpers contribute their global reads (call-time-eager,
    so they join ``external_reads`` rather than the planner's lazy set)
    and their mutations (of globals and of global arguments), while
    mutations *inside* summarizable function bodies stop being
    attributed to the defining cell.

    With ``stubs`` library calls resolve through effect stubs
    (DESIGN.md §15): declared-pure calls stop being captured as
    mutations (tighter MUTATION edges), declared mutations — including
    ``mutates_args`` argument positions — join ``mutators``.
    """
    effects = analyze_cell(source, summaries, stubs=stubs)
    external: FrozenSet[str] = frozenset()
    mutators: FrozenSet[str] = frozenset()
    if effects.syntax_error is None:
        try:
            module = ast.parse(source)
        except SyntaxError:  # pragma: no cover - analyze_cell already parsed
            module = None
        if module is not None:
            external = ordered_external_reads(module)
            resolver = stubs.resolver(module) if stubs is not None else None
            mutators = in_place_mutation_targets(
                module,
                skip_function_bodies=summaries is not None,
                method_effect=(
                    resolver.method_effect if resolver is not None else None
                ),
            )
            if summaries is not None:
                external = frozenset(external | effects.summary_reads)
                mutators = frozenset(mutators | effects.summary_mutations)
            if stubs is not None:
                mutators = frozenset(mutators | effects.stub_mutations)
    return CellNode(
        index=index,
        label=label if label is not None else f"cell[{index}]",
        source=source,
        effects=effects,
        external_reads=external,
        mutators=mutators,
        execution_count=execution_count,
        node_id=node_id,
    )


def split_script_cells(source: str) -> List[str]:
    """Split a script into notebook-style cells.

    Honors ``# %%`` cell separators (the jupytext/VS Code convention);
    a script without separators is split into one cell per top-level
    statement, which is the closest faithful reading of a linear script
    as an executed cell history.
    """
    lines = source.splitlines()
    if any(line.strip().startswith("# %%") for line in lines):
        cells: List[List[str]] = [[]]
        for line in lines:
            if line.strip().startswith("# %%"):
                cells.append([])
            else:
                cells[-1].append(line)
        return ["\n".join(cell) for cell in cells if "\n".join(cell).strip()]
    try:
        module = ast.parse(source)
    except SyntaxError:
        return [source]
    if not module.body:
        return []
    starts = [statement.lineno for statement in module.body]
    ends = starts[1:] + [len(lines) + 1]
    segments: List[str] = []
    for statement, end in zip(module.body, ends):
        start = statement.lineno
        for decorator in getattr(statement, "decorator_list", []):
            start = min(start, decorator.lineno)
        segments.append("\n".join(lines[start - 1 : end - 1]).rstrip())
    return [segment for segment in segments if segment.strip()]


# ---------------------------------------------------------------------------
# The dataflow graph
# ---------------------------------------------------------------------------


class EdgeKind(enum.Enum):
    """How strongly a producer cell is believed to supply a read."""

    DEFINITE = "definite"
    CONDITIONAL = "conditional"
    MUTATION = "mutation"
    ESCAPE = "escape"


@dataclass(frozen=True)
class DefUseEdge:
    """``reader`` may consume a value ``producer`` (re)wrote for ``name``."""

    name: str
    reader: int
    producer: int
    kind: EdgeKind

    def __str__(self) -> str:
        return f"{self.name}: {self.producer} -[{self.kind.value}]-> {self.reader}"


@dataclass(frozen=True)
class Resolution:
    """Producers of ``name``'s value as of *after* cell ``at_index``.

    ``definite`` is the latest unconditional writer (None when the name
    was never definitely written, or a definite delete killed it);
    ``conditional`` / ``mutators`` / ``escapes`` are later cells that may
    have replaced or mutated the value; ``killed`` reports a definite
    delete with no subsequent writer.
    """

    name: str
    at_index: int
    definite: Optional[int]
    conditional: Tuple[int, ...]
    mutators: Tuple[int, ...]
    escapes: Tuple[int, ...]
    killed: bool

    @property
    def producers(self) -> Tuple[int, ...]:
        """All potential producer indices, ascending, deduplicated."""
        merged: Set[int] = set(self.conditional) | set(self.mutators) | set(
            self.escapes
        )
        if self.definite is not None:
            merged.add(self.definite)
        return tuple(sorted(merged))

    @property
    def unresolved(self) -> bool:
        return not self.producers


@dataclass
class _NameEvents:
    """Chronological per-name event streams the resolver scans."""

    definite_writes: List[int] = field(default_factory=list)
    conditional_writes: List[int] = field(default_factory=list)
    definite_deletes: List[int] = field(default_factory=list)
    conditional_deletes: List[int] = field(default_factory=list)
    mutations: List[int] = field(default_factory=list)
    reads: List[int] = field(default_factory=list)


class NotebookDataflowGraph:
    """Def-use structure over one linear cell execution history."""

    def __init__(self, cells: Sequence[CellNode]) -> None:
        self.cells: Tuple[CellNode, ...] = tuple(cells)
        for position, cell in enumerate(self.cells):
            if cell.index != position:
                raise ValueError(
                    f"cell at position {position} carries index {cell.index}; "
                    "cells must be supplied in execution order with "
                    "contiguous indices"
                )
        #: The function-summary table used to analyze the cells, when the
        #: graph was built with ``from_sources(use_summaries=True)``.
        self.summaries: "Optional[NotebookSummaries]" = None
        #: The stub context (registry + final type bindings) used to
        #: analyze the cells, when built with ``use_stubs=True``.
        self.stub_context: "Optional[StubContext]" = None
        self._events: Dict[str, _NameEvents] = {}
        self._escape_cells: List[int] = []
        self._build_events()
        self.edges: Tuple[DefUseEdge, ...] = tuple(self._build_edges())

    @classmethod
    def from_sources(
        cls,
        sources: Iterable[str],
        *,
        labels: Optional[Sequence[str]] = None,
        execution_counts: Optional[Sequence[int]] = None,
        use_summaries: bool = False,
        use_stubs: bool = False,
        stub_registry: Optional[Any] = None,
    ) -> "NotebookDataflowGraph":
        """Build the graph from cell sources in execution order.

        With ``use_summaries`` a
        :class:`~repro.analysis.summaries.NotebookSummaries` table is
        threaded through the cells: each cell is analyzed with the
        summaries its position can see (def-use edges through helper
        calls become tight), and the populated table is retained as
        ``graph.summaries`` for lint and reporting consumers.

        With ``use_stubs`` a :class:`~repro.analysis.typetrack.StubContext`
        (over ``stub_registry``, or the shipped default registry) is
        threaded the same way: each cell resolves library calls against
        the type bindings earlier cells established, and the context is
        retained as ``graph.stub_context``.
        """
        context: "Optional[StubContext]" = None
        if use_stubs:
            from repro.analysis.typetrack import StubContext

            context = StubContext(registry=stub_registry)
        table: "Optional[NotebookSummaries]" = None
        if use_summaries:
            from repro.analysis.summaries import NotebookSummaries

            table = NotebookSummaries(stubs=context)
        cells = []
        for index, source in enumerate(sources):
            view = table.view_for_cell(source) if table is not None else None
            node = make_cell_node(
                index,
                source,
                label=labels[index] if labels is not None else None,
                execution_count=(
                    execution_counts[index]
                    if execution_counts is not None
                    else 0
                ),
                summaries=view,
                stubs=context,
            )
            if table is not None:
                table.observe_cell(source, node.effects)
            if context is not None:
                context.observe_cell(
                    source, opaque=node.effects.opaque_writes
                )
            cells.append(node)
        graph = cls(cells)
        graph.summaries = table
        graph.stub_context = context
        return graph

    # -- construction -------------------------------------------------------

    def _events_for(self, name: str) -> _NameEvents:
        events = self._events.get(name)
        if events is None:
            events = _NameEvents()
            self._events[name] = events
        return events

    def _build_events(self) -> None:
        for cell in self.cells:
            if not cell.executed:
                continue
            effects = cell.effects
            index = cell.index
            for name in sorted(effects.all_reads):
                self._events_for(name).reads.append(index)
            for name in sorted(effects.writes):
                self._events_for(name).definite_writes.append(index)
            for name in sorted(effects.conditional_writes):
                self._events_for(name).conditional_writes.append(index)
            for name in sorted(effects.deletes):
                self._events_for(name).definite_deletes.append(index)
            for name in sorted(effects.conditional_deletes):
                self._events_for(name).conditional_deletes.append(index)
            for name in sorted(cell.mutators):
                self._events_for(name).mutations.append(index)
            if cell.is_opaque:
                self._escape_cells.append(index)

    def _build_edges(self) -> List[DefUseEdge]:
        edges: List[DefUseEdge] = []
        for cell in self.cells:
            if not cell.executed:
                continue
            for name in sorted(cell.effects.all_reads):
                resolution = self.resolve(name, cell.index - 1)
                if resolution.definite is not None:
                    edges.append(
                        DefUseEdge(
                            name=name,
                            reader=cell.index,
                            producer=resolution.definite,
                            kind=EdgeKind.DEFINITE,
                        )
                    )
                for producer in resolution.conditional:
                    edges.append(
                        DefUseEdge(
                            name=name,
                            reader=cell.index,
                            producer=producer,
                            kind=EdgeKind.CONDITIONAL,
                        )
                    )
                for producer in resolution.mutators:
                    edges.append(
                        DefUseEdge(
                            name=name,
                            reader=cell.index,
                            producer=producer,
                            kind=EdgeKind.MUTATION,
                        )
                    )
                for producer in resolution.escapes:
                    edges.append(
                        DefUseEdge(
                            name=name,
                            reader=cell.index,
                            producer=producer,
                            kind=EdgeKind.ESCAPE,
                        )
                    )
        return edges

    # -- queries ------------------------------------------------------------

    @property
    def escape_cells(self) -> Tuple[int, ...]:
        """Indices of cells whose effects are opaque (conservative widening)."""
        return tuple(self._escape_cells)

    def names(self) -> List[str]:
        return sorted(self._events)

    def events_of(self, name: str) -> Optional[_NameEvents]:
        return self._events.get(name)

    def resolve(self, name: str, at_index: int) -> Resolution:
        """Producers of ``name``'s value as of after cell ``at_index``.

        ``at_index`` may be -1 (the pre-notebook state: nothing resolves).
        """
        events = self._events.get(name, _NameEvents())
        definite: Optional[int] = None
        for index in events.definite_writes:
            if index <= at_index:
                definite = index
            else:
                break
        last_kill: Optional[int] = None
        for index in events.definite_deletes:
            if index <= at_index:
                last_kill = index
            else:
                break
        killed = False
        if last_kill is not None and (definite is None or last_kill > definite):
            definite = None
            killed = True
        floor = -1
        if definite is not None:
            floor = definite
        elif last_kill is not None:
            floor = last_kill
        conditional = tuple(
            index
            for index in events.conditional_writes
            if floor < index <= at_index
        )
        mutators = tuple(
            index
            for index in events.mutations
            if floor <= index <= at_index
            and index != definite
        )
        escapes = tuple(
            index for index in self._escape_cells if floor < index <= at_index
        )
        if definite is None and not conditional and not escapes:
            # A mutation cannot conjure a binding: without any possible
            # writer in scope the name does not exist, so bare mutators
            # (e.g. method calls inside a function body) are not
            # producers.
            mutators = ()
        if conditional or escapes:
            killed = False
        return Resolution(
            name=name,
            at_index=at_index,
            definite=definite,
            conditional=conditional,
            mutators=mutators,
            escapes=escapes,
            killed=killed,
        )

    def live_names(self, at_index: Optional[int] = None) -> List[str]:
        """Names with at least one surviving producer at ``at_index``."""
        index = at_index if at_index is not None else len(self.cells) - 1
        live = [
            name
            for name in self.names()
            if not self.resolve(name, index).unresolved
        ]
        return sorted(live)

    def readers_of(self, name: str) -> Tuple[int, ...]:
        events = self._events.get(name)
        return tuple(events.reads) if events is not None else ()


# ---------------------------------------------------------------------------
# Replay planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoredVersion:
    """A checkpoint payload that can substitute for replaying producers.

    ``names`` are the co-variable members the payload plants as a unit;
    ``ref`` is an opaque version handle (a checkpoint node id); ``index``
    anchors the version in the cell chain — the payload holds the names'
    values as of after the cell at that index.
    """

    names: FrozenSet[str]
    ref: str
    index: int
    size_bytes: int = 0


#: Callback resolving (name, chain index) to a loadable stored version.
PayloadLookup = Callable[[str, int], Optional[StoredVersion]]
#: Callback estimating the replay cost of one cell.
CostModel = Callable[[CellNode], float]


def ast_cost(cell: CellNode) -> float:
    """Deterministic static cost proxy: the cell's AST node count.

    Used when no runtime metrics exist (file-mode planning); stable
    across runs so ``--format json`` output is byte-identical.
    """
    if cell.effects.syntax_error is not None:
        return 0.0
    try:
        module = ast.parse(cell.source)
    except SyntaxError:  # pragma: no cover - guarded above
        return 0.0
    return float(sum(1 for _ in ast.walk(module)))


@dataclass(frozen=True)
class PlanStep:
    """One ordered action of a replay plan.

    ``kind`` is ``"load"`` (plant a stored co-variable payload) or
    ``"replay"`` (re-execute a cell). Steps sort by ``index`` with loads
    before replays at the same index — a load anchored at a cell's index
    represents the state *after* that cell, so a replayed cell at the
    same index overwrites it.
    """

    kind: str
    index: int
    label: str
    names: Tuple[str, ...]
    ref: Optional[str] = None
    cost: float = 0.0
    size_bytes: int = 0
    source: str = ""

    @property
    def sort_key(self) -> Tuple[int, int, str]:
        return (self.index, 0 if self.kind == "load" else 1, ",".join(self.names))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "index": self.index,
            "label": self.label,
            "names": list(self.names),
            "cost": self.cost,
        }
        if self.ref is not None:
            payload["ref"] = self.ref
        if self.kind == "load":
            payload["size_bytes"] = self.size_bytes
        return payload


@dataclass(frozen=True)
class ReplayPlan:
    """An ordered, minimal plan to reconstruct ``target_names``.

    ``total_cells`` is the full-history replay size the plan is measured
    against; ``cells_skipped`` is the planner's saving. ``unsafe_reasons``
    is non-empty whenever the plan depends on an escaped (opaque) cell —
    such a plan may be executed, but its completeness is not guaranteed
    and callers must surface the flag rather than trust the plan
    silently.
    """

    target_names: Tuple[str, ...]
    target_index: int
    target_label: str
    steps: Tuple[PlanStep, ...]
    external_inputs: Tuple[str, ...]
    missing: Tuple[str, ...]
    unsafe_reasons: Tuple[str, ...]
    total_cells: int

    @property
    def replay_steps(self) -> Tuple[PlanStep, ...]:
        return tuple(step for step in self.steps if step.kind == "replay")

    @property
    def load_steps(self) -> Tuple[PlanStep, ...]:
        return tuple(step for step in self.steps if step.kind == "load")

    @property
    def cells_replayed(self) -> int:
        return len(self.replay_steps)

    @property
    def cells_skipped(self) -> int:
        return self.total_cells - self.cells_replayed

    @property
    def is_safe(self) -> bool:
        return not self.unsafe_reasons

    @property
    def is_complete(self) -> bool:
        return not self.missing

    @property
    def estimated_cost(self) -> float:
        return sum(step.cost for step in self.steps)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-stable dict (sorted keys, pre-sorted lists)."""
        return {
            "target": {
                "names": list(self.target_names),
                "index": self.target_index,
                "label": self.target_label,
            },
            "steps": [step.to_dict() for step in self.steps],
            "external_inputs": list(self.external_inputs),
            "missing": list(self.missing),
            "unsafe_reasons": list(self.unsafe_reasons),
            "summary": {
                "total_cells": self.total_cells,
                "cells_replayed": self.cells_replayed,
                "cells_skipped": self.cells_skipped,
                "payload_loads": len(self.load_steps),
                "estimated_cost": self.estimated_cost,
                "safe": self.is_safe,
                "complete": self.is_complete,
            },
        }

    def format(self) -> str:
        """Human-oriented multi-line rendering (the ``%replay-plan`` view)."""
        lines = [
            f"replay plan for {{{', '.join(self.target_names)}}} "
            f"at {self.target_label}:"
        ]
        if not self.steps:
            lines.append("  (nothing to do)")
        for step in self.steps:
            names = ", ".join(step.names)
            if step.kind == "load":
                lines.append(
                    f"  load   [{step.index:>3}] {{{names}}} @ {step.ref}"
                    f" ({step.size_bytes} B)"
                )
            else:
                preview = step.source.strip().splitlines()
                head = preview[0][:48] if preview else ""
                lines.append(
                    f"  replay [{step.index:>3}] {step.label}: {head}"
                    f"  (cost {step.cost:.4g})"
                )
        lines.append(
            f"  = {self.cells_replayed} of {self.total_cells} cells replayed, "
            f"{len(self.load_steps)} payload load(s), "
            f"{self.cells_skipped} cell(s) skipped"
        )
        if self.external_inputs:
            lines.append(f"  external inputs: {', '.join(self.external_inputs)}")
        if self.missing:
            lines.append(f"  UNRESOLVED targets: {', '.join(self.missing)}")
        for reason in self.unsafe_reasons:
            lines.append(f"  REPLAY-UNSAFE: {reason}")
        return "\n".join(lines)


class ReplayPlanner:
    """Computes minimal ordered replay plans over a dataflow graph."""

    def __init__(
        self,
        graph: NotebookDataflowGraph,
        *,
        payload_lookup: Optional[PayloadLookup] = None,
        cost_of: Optional[CostModel] = None,
    ) -> None:
        self.graph = graph
        self.payload_lookup = payload_lookup
        self.cost_of = cost_of if cost_of is not None else ast_cost

    def plan(
        self, target_names: Iterable[str], at_index: Optional[int] = None
    ) -> ReplayPlan:
        """Plan reconstruction of ``target_names`` as of after ``at_index``.

        Walks def-use edges backward from the targets. A name whose value
        a stored version covers is satisfied by a load step (cutting the
        recursion — the stored version already embodies every mutation up
        to its anchor); otherwise its definite producer plus every later
        conditional writer and in-place mutator joins the replay set, and
        their own dependencies are resolved in turn. Escaped cells in a
        resolution window are included as producers *and* flagged in
        ``unsafe_reasons`` — never silently treated as precise.
        """
        cells = self.graph.cells
        index = at_index if at_index is not None else len(cells) - 1
        if index >= len(cells):
            raise ValueError(
                f"at_index {index} out of range for {len(cells)} cells"
            )
        targets = tuple(sorted(set(target_names)))

        replay_indices: Set[int] = set()
        loads: Dict[Tuple[FrozenSet[str], str], StoredVersion] = {}
        loaded_names: Dict[str, int] = {}  # name -> anchor index of its load
        external: Set[str] = set()
        missing: Set[str] = set()
        unsafe: Dict[int, str] = {}
        seen: Set[Tuple[str, int]] = set()
        worklist: List[Tuple[str, int, bool]] = [
            (name, index, True) for name in reversed(targets)
        ]

        while worklist:
            name, upto, is_target = worklist.pop()
            if (name, upto) in seen:
                continue
            seen.add((name, upto))
            if name in loaded_names and loaded_names[name] >= upto:
                continue  # a load at or after this point already covers it

            resolution = self.graph.resolve(name, upto)
            if resolution.unresolved:
                if is_target:
                    missing.add(name)
                elif not resolution.killed:
                    external.add(name)
                continue

            version = (
                self.payload_lookup(name, upto)
                if self.payload_lookup is not None
                else None
            )
            if version is not None:
                loads[(version.names, version.ref)] = version
                for covered in version.names:
                    anchored = loaded_names.get(covered, -1)
                    loaded_names[covered] = max(anchored, version.index)
                continue

            for producer in resolution.producers:
                cell = cells[producer]
                if cell.is_opaque and producer in resolution.escapes:
                    unsafe.setdefault(
                        producer,
                        self._unsafe_reason(cell, name),
                    )
                if producer not in replay_indices:
                    replay_indices.add(producer)
                    # Definite (eagerly executed) reads consume the state
                    # *before* the producer ran; lazy reads — names only
                    # touched inside function/lambda bodies the cell
                    # defines — are consumed at call time, i.e. against
                    # the state the plan reconstructs. Resolving them at
                    # the target index handles the def-before-data
                    # notebook pattern (the function cell precedes the
                    # cell binding its data).
                    lazy = (
                        cell.effects.conditional_reads
                        - set(cell.external_reads)
                    )
                    for dependency in sorted(cell.dependency_names):
                        at = index if dependency in lazy else producer - 1
                        worklist.append((dependency, at, False))

        steps = self._assemble_steps(replay_indices, loads)
        unsafe_reasons = tuple(
            unsafe[producer] for producer in sorted(unsafe)
        )
        external -= {name for name in external if is_builtin_name(name)}
        return ReplayPlan(
            target_names=targets,
            target_index=index,
            target_label=cells[index].label if cells else f"cell[{index}]",
            steps=steps,
            external_inputs=tuple(sorted(external)),
            missing=tuple(sorted(missing)),
            unsafe_reasons=unsafe_reasons,
            total_cells=index + 1,
        )

    def _unsafe_reason(self, cell: CellNode, name: str) -> str:
        kinds = sorted({escape.kind.value for escape in cell.effects.escapes})
        if not kinds and cell.effects.opaque_writes:
            kinds = ["opaque-writes"]
        return (
            f"{cell.label} (index {cell.index}) is an opaque producer of "
            f"{name!r} ({', '.join(kinds)}); its effects cannot be bounded "
            "statically"
        )

    def _assemble_steps(
        self,
        replay_indices: Set[int],
        loads: Dict[Tuple[FrozenSet[str], str], StoredVersion],
    ) -> Tuple[PlanStep, ...]:
        steps: List[PlanStep] = []
        for version in loads.values():
            steps.append(
                PlanStep(
                    kind="load",
                    index=version.index,
                    label=f"load@{version.index}",
                    names=tuple(sorted(version.names)),
                    ref=version.ref,
                    size_bytes=version.size_bytes,
                )
            )
        for index in sorted(replay_indices):
            cell = self.graph.cells[index]
            produced = sorted(
                cell.effects.all_writes | set(cell.mutators)
            )
            steps.append(
                PlanStep(
                    kind="replay",
                    index=index,
                    label=cell.label,
                    names=tuple(produced),
                    ref=cell.node_id,
                    cost=self.cost_of(cell),
                    source=cell.source,
                )
            )
        steps.sort(key=lambda step: step.sort_key)
        return tuple(steps)


def is_builtin_name(name: str) -> bool:
    """True for names resolvable from the interpreter's builtins."""
    return hasattr(builtins, name)
