"""Declarative library effect stubs (DESIGN.md §15).

The interprocedural summary layer (§14) stops at the user-code boundary:
a call into a module the AST pass cannot see collapses to the
conservative top (``calls_unknown``), so one ``df.merge(...)`` or
``model.fit(X)`` widens dataflow edges and escalates analysis on
library-heavy notebooks — exactly the workloads the paper's sessions are
dominated by.

This module is the effect-analysis analogue of type stubs: small,
versioned, declarative files stating what a third-party callable *may*
do, keyed by fully-qualified name:

* **purity** — ``"pure"`` calls touch neither the receiver nor the user
  namespace; ``"mutates"`` calls mutate the receiver in place;
* **parameter-position mutation** (``mutates_args``) — e.g.
  ``random.shuffle(x)`` mutates argument 0;
* **conditional mutation** (``mutates_if``) — pandas-style
  ``inplace=True`` keywords flip a call from constructing to mutating;
* **global / attribute writes** (``writes_globals``) and an optional
  **escape class** for calls that defeat tracking outright;
* **return typing** (``returns`` / ``returns_receiver``) feeding the
  local type tracker (:mod:`repro.analysis.typetrack`) so chained
  receivers keep resolving.

Stubs are *declared trust, not blind trust*: the
:class:`~repro.analysis.crossval.CrossValidator` keeps the runtime
oracle as a safety net — a stub whose declared write-set
under-approximates the observed runtime delta escalates the cell and
emits a ``stub_mismatch`` event (DESIGN.md §15.3), so a wrong stub is
detected, never silently believed.

File format (JSON always; TOML when the interpreter ships ``tomllib``)::

    {
      "stub_format": 1,
      "module": "repro.libsim.data_analysis",
      "module_version": null,
      "functions": {"read_frame": {"effect": "pure", "returns": "SimDataFrame"}},
      "types": {
        "SimDataFrame": {
          "constructor": {"effect": "pure"},
          "methods": {
            "drop_column": {"effect": "pure", "returns": "SimDataFrame"},
            "mean_of": {"effect": "pure"}
          }
        }
      },
      "attributes": {"environ": "Environ"}
    }

A file may instead carry ``"modules": [...]`` with several such objects.
Unqualified ``returns`` names resolve within the declaring module;
dotted names are fully qualified. The registry ships defaults covering
the :mod:`repro.libsim` personalities plus a small real-library starter
set; users extend it with their own files (``StubRegistry.add_file``,
``repro stubs`` CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: The stub format version this loader understands.
STUB_FORMAT_VERSION = 1

#: Directory of the stub files shipped with the package.
STUBDATA_DIR = Path(__file__).resolve().parent / "stubdata"

_EFFECTS = ("pure", "mutates")


class StubError(ValueError):
    """A stub file (or mapping) violates the format contract."""


@dataclass(frozen=True)
class MutatesIf:
    """Keyword-conditional mutation (``inplace=True`` style)."""

    #: Keyword name whose truthiness selects mutating behaviour.
    kwarg: str
    #: Behaviour when the keyword is absent (pandas defaults to False).
    default: bool = False


@dataclass(frozen=True)
class CallStub:
    """Effect model of one fully-qualified callable."""

    #: Fully-qualified name (``module.func`` or ``module.Type.method``).
    qualname: str
    #: ``"pure"`` or ``"mutates"`` (receiver mutation for methods).
    effect: str = "pure"
    #: Fully-qualified abstract type of the return value, if tracked.
    returns: Optional[str] = None
    #: The call returns its receiver (sklearn ``fit`` chaining).
    returns_receiver: bool = False
    #: The returned object aliases *into* the receiver's object graph
    #: (matplotlib ``axis_at`` style): mutations through the result are
    #: mutations of the receiver.
    returns_alias: bool = False
    #: Positional argument indices mutated in place.
    mutates_args: Tuple[int, ...] = ()
    #: Keyword-conditional mutation; overrides :attr:`effect` when set.
    mutates_if: Optional[MutatesIf] = None
    #: Module/user globals the call may write.
    writes_globals: Tuple[str, ...] = ()
    #: :class:`~repro.analysis.effects.EscapeKind` value for calls that
    #: defeat namespace tracking entirely, or ``None``.
    escape: Optional[str] = None

    @property
    def is_pure(self) -> bool:
        """No effect on the receiver, arguments, or namespace at all."""
        return (
            self.effect == "pure"
            and self.mutates_if is None
            and not self.mutates_args
            and not self.writes_globals
            and self.escape is None
        )

    def fingerprint_key(self) -> Tuple[Any, ...]:
        return (
            self.qualname,
            self.effect,
            self.returns,
            self.returns_receiver,
            self.returns_alias,
            self.mutates_args,
            (self.mutates_if.kwarg, self.mutates_if.default)
            if self.mutates_if
            else None,
            self.writes_globals,
            self.escape,
        )


@dataclass(frozen=True)
class TypeStub:
    """Effect models of one library type's constructor and methods."""

    qualname: str
    constructor: Optional[CallStub] = None
    methods: Mapping[str, CallStub] = field(default_factory=dict)


@dataclass(frozen=True)
class ModuleStubs:
    """Every stub declared for one importable module."""

    module: str
    version: Optional[str] = None
    stub_format: int = STUB_FORMAT_VERSION
    functions: Mapping[str, CallStub] = field(default_factory=dict)
    types: Mapping[str, TypeStub] = field(default_factory=dict)
    #: Module attribute name → fully-qualified abstract type
    #: (``os.environ`` → ``os.Environ``).
    attributes: Mapping[str, str] = field(default_factory=dict)
    #: When set, any call on this module not otherwise listed gets this
    #: effect (``math`` is all-pure); use sparingly.
    default_effect: Optional[str] = None
    #: Path the stub was loaded from (``None`` for programmatic stubs);
    #: surfaced by the KSH502 fix-it.
    source: Optional[str] = None


def _require_str(value: Any, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise StubError(f"{what} must be a non-empty string, got {value!r}")
    return value


def _parse_call(qualname: str, data: Any, module: str) -> CallStub:
    if not isinstance(data, dict):
        raise StubError(f"stub for {qualname} must be an object, got {data!r}")
    known = {
        "effect",
        "returns",
        "returns_receiver",
        "returns_alias",
        "mutates_args",
        "mutates_if",
        "writes_globals",
        "escape",
    }
    unknown = set(data) - known
    if unknown:
        raise StubError(f"stub for {qualname}: unknown keys {sorted(unknown)}")
    effect = data.get("effect", "pure")
    if effect not in _EFFECTS:
        raise StubError(
            f"stub for {qualname}: effect must be one of {_EFFECTS}, got {effect!r}"
        )
    mutates_if_raw = data.get("mutates_if")
    mutates_if: Optional[MutatesIf] = None
    if mutates_if_raw is not None:
        if not isinstance(mutates_if_raw, dict) or "kwarg" not in mutates_if_raw:
            raise StubError(f"stub for {qualname}: mutates_if needs a 'kwarg' key")
        mutates_if = MutatesIf(
            kwarg=_require_str(mutates_if_raw["kwarg"], f"{qualname}.mutates_if.kwarg"),
            default=bool(mutates_if_raw.get("default", False)),
        )
    mutates_args_raw = data.get("mutates_args", ())
    if not isinstance(mutates_args_raw, (list, tuple)) or not all(
        isinstance(i, int) and i >= 0 for i in mutates_args_raw
    ):
        raise StubError(
            f"stub for {qualname}: mutates_args must be non-negative positions"
        )
    writes_raw = data.get("writes_globals", ())
    if not isinstance(writes_raw, (list, tuple)):
        raise StubError(f"stub for {qualname}: writes_globals must be a list")
    returns = data.get("returns")
    returns_fq: Optional[str] = None
    if returns:
        returns_fq = _require_str(returns, f"{qualname}.returns")
        if "." not in returns_fq:
            returns_fq = f"{module}.{returns_fq}"
    return CallStub(
        qualname=qualname,
        effect=effect,
        returns=returns_fq,
        returns_receiver=bool(data.get("returns_receiver", False)),
        returns_alias=bool(data.get("returns_alias", False)),
        mutates_args=tuple(int(i) for i in mutates_args_raw),
        mutates_if=mutates_if,
        writes_globals=tuple(
            _require_str(w, f"{qualname}.writes_globals") for w in writes_raw
        ),
        escape=_require_str(data["escape"], f"{qualname}.escape")
        if data.get("escape")
        else None,
    )


def _parse_module(data: Any, source: Optional[str]) -> ModuleStubs:
    if not isinstance(data, dict):
        raise StubError(f"module stub must be an object, got {data!r}")
    module = _require_str(data.get("module"), "module")
    fmt = data.get("stub_format", STUB_FORMAT_VERSION)
    if not isinstance(fmt, int) or fmt > STUB_FORMAT_VERSION:
        raise StubError(
            f"stubs for {module}: format {fmt!r} is newer than supported "
            f"version {STUB_FORMAT_VERSION}"
        )
    functions: Dict[str, CallStub] = {}
    for name, call in (data.get("functions") or {}).items():
        qual = f"{module}.{name}"
        functions[name] = _parse_call(qual, call, module)
    types: Dict[str, TypeStub] = {}
    for tname, tdata in (data.get("types") or {}).items():
        if not isinstance(tdata, dict):
            raise StubError(f"type stub {module}.{tname} must be an object")
        tqual = f"{module}.{tname}"
        ctor = tdata.get("constructor")
        methods = {
            mname: _parse_call(f"{tqual}.{mname}", mdata, module)
            for mname, mdata in (tdata.get("methods") or {}).items()
        }
        types[tname] = TypeStub(
            qualname=tqual,
            constructor=_parse_call(tqual, ctor, module) if ctor is not None else None,
            methods=methods,
        )
    attributes: Dict[str, str] = {}
    for aname, atype in (data.get("attributes") or {}).items():
        atype_fq = _require_str(atype, f"{module}.{aname} attribute type")
        if "." not in atype_fq:
            atype_fq = f"{module}.{atype_fq}"
        attributes[_require_str(aname, f"{module} attribute name")] = atype_fq
    default_effect = data.get("default_effect")
    if default_effect is not None and default_effect not in _EFFECTS:
        raise StubError(
            f"stubs for {module}: default_effect must be one of {_EFFECTS}"
        )
    version = data.get("module_version")
    return ModuleStubs(
        module=module,
        version=_require_str(version, f"{module}.module_version")
        if version is not None
        else None,
        stub_format=fmt,
        functions=functions,
        types=types,
        attributes=attributes,
        default_effect=default_effect,
        source=source,
    )


def parse_stub_mapping(data: Any, source: Optional[str] = None) -> List[ModuleStubs]:
    """Parse one loaded stub document (single- or multi-module form)."""
    if isinstance(data, dict) and "modules" in data:
        fmt = data.get("stub_format", STUB_FORMAT_VERSION)
        if not isinstance(fmt, int) or fmt > STUB_FORMAT_VERSION:
            raise StubError(
                f"stub file format {fmt!r} is newer than supported "
                f"version {STUB_FORMAT_VERSION}"
            )
        modules = data["modules"]
        if not isinstance(modules, list):
            raise StubError("'modules' must be a list of module stub objects")
        return [_parse_module(entry, source) for entry in modules]
    return [_parse_module(data, source)]


def load_stub_file(path: Path) -> List[ModuleStubs]:
    """Load a ``.json`` (or, where ``tomllib`` exists, ``.toml``) stub file."""
    path = Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise StubError(
                f"{path}: TOML stubs need Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from exc
        with open(path, "rb") as handle:
            data: Any = tomllib.load(handle)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StubError(f"{path}: invalid JSON: {exc}") from exc
    return parse_stub_mapping(data, source=str(path))


class StubRegistry:
    """Effect stubs keyed by resolved import names.

    Lookups are by *fully-qualified* module / type / callable names as
    the type tracker resolves them from import statements — never by
    bare attribute spelling, so ``df.merge`` only resolves once ``df``'s
    binding is proven to be a stubbed type.
    """

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleStubs] = {}

    # -- construction ------------------------------------------------------

    def add(self, stubs: ModuleStubs) -> None:
        """Register one module's stubs (replacing any previous entry)."""
        self._modules[stubs.module] = stubs

    def add_mapping(self, data: Any, source: Optional[str] = None) -> None:
        for stubs in parse_stub_mapping(data, source):
            self.add(stubs)

    def add_file(self, path: Path) -> None:
        for stubs in load_stub_file(path):
            self.add(stubs)

    # -- lookups -----------------------------------------------------------

    def modules(self) -> List[ModuleStubs]:
        return [self._modules[name] for name in sorted(self._modules)]

    def module(self, name: str) -> Optional[ModuleStubs]:
        return self._modules.get(name)

    def has_module(self, name: str) -> bool:
        return name in self._modules

    def has_module_prefix(self, name: str) -> bool:
        """True when ``name`` is a registered module or a package prefix of
        one — lets ``import repro.libsim.data_analysis`` resolve attribute
        chains rooted at the top-level package binding."""
        if name in self._modules:
            return True
        prefix = name + "."
        return any(module.startswith(prefix) for module in self._modules)

    def type(self, qualname: str) -> Optional[TypeStub]:
        module, _, tname = qualname.rpartition(".")
        stubs = self._modules.get(module)
        if stubs is None:
            return None
        return stubs.types.get(tname)

    def function(self, module: str, name: str) -> Optional[CallStub]:
        """Stub for ``module.name`` as a plain function call."""
        stubs = self._modules.get(module)
        if stubs is None:
            return None
        call = stubs.functions.get(name)
        if call is not None:
            return call
        if stubs.default_effect is not None:
            return CallStub(
                qualname=f"{module}.{name}", effect=stubs.default_effect
            )
        return None

    def constructor(self, qualname: str) -> Optional[CallStub]:
        """Stub for calling type ``qualname``; defaults to a pure call
        returning an instance of the type."""
        tstub = self.type(qualname)
        if tstub is None:
            return None
        if tstub.constructor is not None:
            if tstub.constructor.returns is None:
                return CallStub(
                    qualname=tstub.constructor.qualname,
                    effect=tstub.constructor.effect,
                    returns=qualname,
                    returns_receiver=tstub.constructor.returns_receiver,
                    returns_alias=tstub.constructor.returns_alias,
                    mutates_args=tstub.constructor.mutates_args,
                    mutates_if=tstub.constructor.mutates_if,
                    writes_globals=tstub.constructor.writes_globals,
                    escape=tstub.constructor.escape,
                )
            return tstub.constructor
        return CallStub(qualname=qualname, effect="pure", returns=qualname)

    def method(self, type_qualname: str, name: str) -> Optional[CallStub]:
        tstub = self.type(type_qualname)
        if tstub is None:
            return None
        return tstub.methods.get(name)

    def callable(self, qualname: str) -> Optional[CallStub]:
        """Stub for a bare callable name: a module function or a type
        constructor (``from m import SimSeries; SimSeries(...)``)."""
        module, _, name = qualname.rpartition(".")
        if not module:
            return None
        call = self.function(module, name)
        if call is not None and name in (self._modules[module].functions or {}):
            return call
        ctor = self.constructor(qualname)
        if ctor is not None:
            return ctor
        return call

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable digest of every registered stub (cache keying)."""
        import hashlib

        parts: List[str] = []
        for stubs in self.modules():
            parts.append(f"{stubs.module}|{stubs.version}|{stubs.default_effect}")
            for fname in sorted(stubs.functions):
                parts.append(repr(stubs.functions[fname].fingerprint_key()))
            for tname in sorted(stubs.types):
                tstub = stubs.types[tname]
                if tstub.constructor is not None:
                    parts.append(repr(tstub.constructor.fingerprint_key()))
                for mname in sorted(tstub.methods):
                    parts.append(repr(tstub.methods[mname].fingerprint_key()))
            for aname in sorted(stubs.attributes):
                parts.append(f"{stubs.module}.{aname}->{stubs.attributes[aname]}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        return digest[:16]

    def version_mismatch(self, module_name: str) -> Optional[Tuple[str, str]]:
        """(declared, imported) versions when they provably disagree.

        Only fires when the stub pins a version *and* the module is
        importable *and* exposes ``__version__`` — shipped stubs leave
        the version null, so this is opt-in per user stub (KSH503).
        """
        stubs = self._modules.get(module_name)
        if stubs is None or stubs.version is None:
            return None
        import importlib
        import sys

        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = importlib.import_module(module_name)
            except Exception:
                return None
        imported = getattr(module, "__version__", None)
        if imported is None or str(imported) == stubs.version:
            return None
        return (stubs.version, str(imported))


_DEFAULT_MODULES: Optional[Tuple[ModuleStubs, ...]] = None


def shipped_stub_files() -> List[Path]:
    return sorted(STUBDATA_DIR.glob("*.json"))


def _load_default_modules() -> Tuple[ModuleStubs, ...]:
    global _DEFAULT_MODULES
    if _DEFAULT_MODULES is None:
        loaded: List[ModuleStubs] = []
        for path in shipped_stub_files():
            loaded.extend(load_stub_file(path))
        _DEFAULT_MODULES = tuple(loaded)
    return _DEFAULT_MODULES


def default_registry(extra_files: Iterable[Path] = ()) -> StubRegistry:
    """A fresh registry preloaded with the shipped stubs.

    Each call returns an independent registry so user additions never
    leak between sessions; the shipped files themselves are parsed once
    per process.
    """
    registry = StubRegistry()
    for stubs in _load_default_modules():
        registry.add(stubs)
    for path in extra_files:
        registry.add_file(Path(path))
    return registry
