"""Runtime cross-validation of Lemma 1 (DESIGN.md §8).

Lemma 1 (§4.3 of the paper) lets the delta detector skip every
co-variable without an accessed member — but only as long as the patched
namespace really observes every access. The static effect analysis gives
an independent prediction of what a cell must touch, so the two can be
cross-checked after every execution:

* if the cell contains **escape hatches** (``exec``, ``globals()``, star
  imports, frame access, …), the runtime record cannot be trusted at all;
* if the runtime record **under-reports** — a *definite* static access is
  missing from the :class:`~repro.kernel.namespace.AccessRecord` — the
  tracking pipeline demonstrably missed something (a partially executed
  cell, or a namespace patch blind spot).

Either way the cell is *escalated*: the session runs that one detection
in check-all mode (every pool member re-checked), restoring correctness
at the cost the paper's AblatedKishu baseline pays on every cell. The
discrepancy counters land in
:class:`~repro.telemetry.AnalysisStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.analysis.effects import CellEffects
from repro.kernel.namespace import AccessRecord, filter_user_names
from repro.telemetry import AnalysisStats


@dataclass(frozen=True)
class ValidationOutcome:
    """Verdict of one cell's static-vs-runtime comparison."""

    #: Whether this cell's detection must run in check-all mode.
    escalate: bool
    #: Human-readable explanations ("escape:exec-eval", "under-report: x").
    reasons: Tuple[str, ...]
    #: Definite static accesses absent from the runtime record.
    missing: FrozenSet[str]
    #: Escalation trigger classes ("escape", "opaque-writes",
    #: "under-report"), each counted once per cell however many
    #: individual findings fed it.
    kinds: Tuple[str, ...] = ()

    @property
    def confirmed(self) -> bool:
        return not self.escalate


class CrossValidator:
    """Compares static cell effects against runtime access records."""

    def __init__(self, stats: Optional[AnalysisStats] = None) -> None:
        self.stats = stats if stats is not None else AnalysisStats()

    def validate(
        self, effects: CellEffects, record: AccessRecord
    ) -> ValidationOutcome:
        """Judge one committed cell execution.

        Args:
            effects: Static analysis of the committed source (merged when
                several cells fold into one checkpoint).
            record: The runtime access record of the same execution(s).
        """
        self.stats.cells_analyzed += 1
        reasons = []
        kinds = []

        if effects.syntax_error is not None:
            # The cell never executed; there is nothing to distrust.
            return ValidationOutcome(
                escalate=False,
                reasons=("syntax-error: cell did not execute",),
                missing=frozenset(),
            )

        if effects.escapes:
            self.stats.escapes_found += len(effects.escapes)
            escape_kinds = sorted(
                {escape.kind.value for escape in effects.escapes}
            )
            reasons.extend(f"escape:{kind}" for kind in escape_kinds)
            kinds.append("escape")
        if effects.opaque_writes:
            reasons.append("opaque-writes: static write set not enumerable")
            kinds.append("opaque-writes")

        # Interprocedural summary bookkeeping (DESIGN.md §14). Deferred
        # escapes live in function summaries instead of the cell's escape
        # list; they resurface at call sites, so their presence here does
        # not force an escalation.
        self.stats.summary_expansions += effects.summary_expansions
        self.stats.summary_unknown_calls += effects.summary_unknown_calls
        self.stats.summary_deferred_escapes += len(effects.deferred_escapes)

        # Library-stub bookkeeping (DESIGN.md §15).
        self.stats.stub_expansions += effects.stub_expansions
        self.stats.stub_unknown_calls += effects.stub_unknown_calls

        # Lemma 1 check: every definite static access must have been
        # observed by the patched namespace. (Conditional accesses may
        # legitimately not have executed, so only definite ones count.)
        predicted = filter_user_names(set(effects.definite_accesses))
        missing = frozenset(predicted - record.accessed)
        if missing:
            self.stats.predictions_violated += 1
            reasons.append(
                "under-report: " + ", ".join(sorted(missing))
            )
            kinds.append("under-report")
        else:
            self.stats.predictions_confirmed += 1

        # One escalation per cell, whatever the trigger mix — the
        # per-kind split lives in the ``analysis.escalated.*`` counters.
        escalate = bool(kinds)
        if escalate:
            self.stats.escalations += 1
            for kind in kinds:
                self.stats.registry.counter(f"analysis.escalated.{kind}").inc()
        elif effects.deferred_escapes:
            # The intraprocedural analysis would have escalated this cell
            # for the escapes inside its function bodies; deferral into
            # summaries is exactly what spared it.
            self.stats.summary_deescalations += 1
        return ValidationOutcome(
            escalate=escalate,
            reasons=tuple(reasons),
            missing=missing,
            kinds=tuple(kinds),
        )

    def note_stub_mismatch(
        self, names: FrozenSet[str], *, already_escalated: bool = False
    ) -> None:
        """Record a runtime refutation of a declared-pure stub.

        Called by the session when a commit-time delta on a
        ``stub_pure_receivers`` name has no other static explanation —
        the stub lied (or its version drifted), and the detection for
        that checkpoint must run in check-all mode. Counted as at most
        one extra escalation per cell (``already_escalated`` cells were
        counted by :meth:`validate`).
        """
        self.stats.stub_mismatches += 1
        self.stats.registry.counter("analysis.escalated.stub-mismatch").inc()
        if not already_escalated:
            self.stats.escalations += 1
