"""Inter-cell (whole-notebook) lint rules — the KSH30x family.

Per-cell rules in :mod:`repro.analysis.rules` see one cell at a time;
the rules here see the :class:`~repro.analysis.dataflow.NotebookDataflowGraph`
built over the whole execution history and can therefore reason about
*relationships* between cells:

* ``KSH301`` — a cell reads a name with no definite producer anywhere
  before it (never defined, or only conditionally defined);
* ``KSH302`` — a definite write is shadowed by a later definite write
  before any cell reads it (dead write; checkpointing it wastes space);
* ``KSH303`` — execution order diverges from notebook order (the
  classic out-of-order notebook hazard that breaks top-to-bottom
  reproduction);
* ``KSH304`` — a read's value may flow through an escaped (opaque)
  cell, making any static replay plan for it unsafe.

The rules yield the same :class:`~repro.analysis.rules.Finding` type as
per-cell rules, carrying ``cell_index`` so the engine can sort globally
by (cell index, span, rule id) — the deterministic order the byte-stable
``--format json`` contract depends on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.analysis.dataflow import (
    CellNode,
    NotebookDataflowGraph,
    is_builtin_name,
)
from repro.analysis.effects import Span
from repro.analysis.rules import Finding, LintRule, Severity

__all__ = [
    "DeadWriteRule",
    "EscapedDependencyRule",
    "ExecutionOrderRule",
    "NotebookContext",
    "NotebookLintRule",
    "UseBeforeDefiniteDefRule",
    "default_notebook_rules",
]


@dataclass(frozen=True)
class NotebookContext:
    """Everything a notebook-level rule may inspect."""

    graph: NotebookDataflowGraph
    execution_counts: Optional[Tuple[int, ...]] = None

    @property
    def cells(self) -> Tuple[CellNode, ...]:
        return self.graph.cells


def _first_load_span(source: str, name: str) -> Span:
    """The span of the first Load of ``name`` in the cell, if locatable."""
    try:
        module = ast.parse(source)
    except SyntaxError:
        return Span(1, 0, 1, 0)
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            return Span.of(node)
    return Span(1, 0, 1, 0)


def _first_store_span(source: str, name: str) -> Span:
    try:
        module = ast.parse(source)
    except SyntaxError:
        return Span(1, 0, 1, 0)
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Store)
        ):
            return Span.of(node)
    return Span(1, 0, 1, 0)


class NotebookLintRule(LintRule):
    """Base class for rules that inspect the whole-notebook graph.

    The per-cell ``check`` is intentionally inert — these rules only
    participate in :meth:`~repro.analysis.rules.LintEngine.lint_notebook`.
    """

    def check(self, context: object) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        raise NotImplementedError

    def cell_finding(
        self, cell: CellNode, message: str, span: Span
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            span=span,
            label=cell.label,
            cell_index=cell.index,
        )


class UseBeforeDefiniteDefRule(NotebookLintRule):
    rule_id = "KSH301"
    severity = Severity.WARNING
    description = (
        "cell reads a name no earlier cell definitely defines"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        for cell in notebook.cells:
            if not cell.executed:
                continue
            for name in sorted(cell.external_reads):
                if is_builtin_name(name):
                    continue
                resolution = notebook.graph.resolve(name, cell.index - 1)
                if resolution.definite is not None:
                    continue
                if resolution.escapes:
                    continue  # KSH304's concern, not a missing definition
                span = _first_load_span(cell.source, name)
                if resolution.conditional:
                    producers = ", ".join(
                        notebook.cells[index].label
                        for index in resolution.conditional
                    )
                    yield self.cell_finding(
                        cell,
                        f"{name!r} is only conditionally defined before this "
                        f"cell (guarded writes in {producers}); re-execution "
                        "may raise NameError",
                        span,
                    )
                elif resolution.killed:
                    yield self.cell_finding(
                        cell,
                        f"{name!r} was deleted by an earlier cell and never "
                        "redefined; this read only worked against stale "
                        "session state",
                        span,
                    )
                else:
                    yield self.cell_finding(
                        cell,
                        f"{name!r} is read but no earlier cell defines it; "
                        "top-to-bottom re-execution will raise NameError",
                        span,
                    )


class DeadWriteRule(NotebookLintRule):
    rule_id = "KSH302"
    severity = Severity.WARNING
    description = (
        "definite write is shadowed by a later definite write before "
        "any cell reads it"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        escape_cells = set(notebook.graph.escape_cells)
        for name in notebook.graph.names():
            events = notebook.graph.events_of(name)
            if events is None:
                continue
            writes = events.definite_writes
            reads = set(events.reads)
            conditional = set(events.conditional_writes)
            mutations = set(events.mutations)
            deletes = set(events.definite_deletes) | set(
                events.conditional_deletes
            )
            for earlier, later in zip(writes, writes[1:]):
                window = range(earlier + 1, later + 1)
                if any(index in reads for index in window):
                    continue
                if any(
                    index in conditional
                    or index in mutations
                    or index in deletes
                    or index in escape_cells
                    for index in range(earlier + 1, later)
                ):
                    continue
                if earlier in escape_cells:
                    continue
                cell = notebook.cells[earlier]
                yield self.cell_finding(
                    cell,
                    f"write to {name!r} is shadowed by "
                    f"{notebook.cells[later].label} before any cell reads "
                    "it; the value is checkpointed but never used",
                    _first_store_span(cell.source, name),
                )


class ExecutionOrderRule(NotebookLintRule):
    rule_id = "KSH303"
    severity = Severity.WARNING
    description = (
        "execution order diverges from notebook order"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        counts = notebook.execution_counts
        if counts is None or len(counts) != len(notebook.cells):
            return
        previous: Optional[int] = None
        previous_cell: Optional[CellNode] = None
        for cell, count in zip(notebook.cells, counts):
            if count <= 0:
                continue  # unknown counter; nothing to compare
            if previous is not None and count <= previous:
                assert previous_cell is not None
                yield self.cell_finding(
                    cell,
                    f"executed as In[{count}] but appears after "
                    f"{previous_cell.label} (In[{previous}]); notebook "
                    "order no longer reproduces the session",
                    Span(1, 0, 1, 0),
                )
            previous = count
            previous_cell = cell


class EscapedDependencyRule(NotebookLintRule):
    rule_id = "KSH304"
    severity = Severity.WARNING
    description = (
        "read may depend on an escaped (opaque) cell; static replay "
        "through it is unsafe"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        for cell in notebook.cells:
            if not cell.executed:
                continue
            for name in sorted(cell.external_reads):
                if is_builtin_name(name):
                    continue
                resolution = notebook.graph.resolve(name, cell.index - 1)
                if not resolution.escapes:
                    continue
                producers = ", ".join(
                    notebook.cells[index].label for index in resolution.escapes
                )
                yield self.cell_finding(
                    cell,
                    f"{name!r} may have been (re)defined by opaque cell(s) "
                    f"{producers}; a static replay plan for this value is "
                    "replay-unsafe",
                    _first_load_span(cell.source, name),
                )


def default_notebook_rules() -> List[NotebookLintRule]:
    """The built-in KSH30x rule set, in rule-id order."""
    return [
        UseBeforeDefiniteDefRule(),
        DeadWriteRule(),
        ExecutionOrderRule(),
        EscapedDependencyRule(),
    ]
