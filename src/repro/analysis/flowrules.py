"""Inter-cell (whole-notebook) lint rules — the KSH30x family.

Per-cell rules in :mod:`repro.analysis.rules` see one cell at a time;
the rules here see the :class:`~repro.analysis.dataflow.NotebookDataflowGraph`
built over the whole execution history and can therefore reason about
*relationships* between cells:

* ``KSH301`` — a cell reads a name with no definite producer anywhere
  before it (never defined, or only conditionally defined);
* ``KSH302`` — a definite write is shadowed by a later definite write
  before any cell reads it (dead write; checkpointing it wastes space);
* ``KSH303`` — execution order diverges from notebook order (the
  classic out-of-order notebook hazard that breaks top-to-bottom
  reproduction);
* ``KSH304`` — a read's value may flow through an escaped (opaque)
  cell, making any static replay plan for it unsafe.

The KSH40x family reasons over the interprocedural
:class:`~repro.analysis.summaries.NotebookSummaries` table (DESIGN.md
§14) instead of the dataflow graph:

* ``KSH401`` — a call lets a helper mutate caller state in place
  (a global, or an argument bound to a parameter the body mutates);
* ``KSH402`` — a call reaches helper code that defeats namespace
  tracking (hidden global stores, ``exec``, frame access, …);
* ``KSH403`` — a rebinding invalidates a function's summary, demoting
  every later call to the conservative unknown-callee analysis.

The KSH50x family reasons over the library effect stubs and the
abstract-type environment (DESIGN.md §15) carried by a
:class:`~repro.analysis.typetrack.StubContext`:

* ``KSH501`` — a library call mutates caller state per its effect stub
  (receiver, argument position, or hidden global write);
* ``KSH502`` — a library-shaped call (receiver provably a module or a
  stubbed type's instance) has no stub entry, so the conservative
  treatment applies — with a fix-it naming the stub file to extend;
* ``KSH503`` — a user stub pins a library version that disagrees with
  the imported module's ``__version__``.

The rules yield the same :class:`~repro.analysis.rules.Finding` type as
per-cell rules, carrying ``cell_index`` so the engine can sort globally
by (cell index, span, rule id) — the deterministic order the byte-stable
``--format json`` contract depends on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.analysis.dataflow import (
    CellNode,
    NotebookDataflowGraph,
    is_builtin_name,
)
from repro.analysis.effects import EscapeKind, Span
from repro.analysis.rules import Finding, LintRule, Severity
from repro.analysis.summaries import FunctionSummary, NotebookSummaries
from repro.analysis.typetrack import StubContext, stub_call_mutates

__all__ = [
    "DeadWriteRule",
    "EscapedDependencyRule",
    "ExecutionOrderRule",
    "HelperArgumentMutationRule",
    "HelperHiddenEffectRule",
    "NotebookContext",
    "NotebookLintRule",
    "StubMutationRule",
    "StubVersionMismatchRule",
    "SummaryInvalidationRule",
    "UnstubbedLibraryCallRule",
    "UseBeforeDefiniteDefRule",
    "default_notebook_rules",
]


@dataclass(frozen=True)
class NotebookContext:
    """Everything a notebook-level rule may inspect."""

    graph: NotebookDataflowGraph
    execution_counts: Optional[Tuple[int, ...]] = None
    #: Interprocedural summary table built over the same cells, for the
    #: KSH40x rules. ``None`` disables that family (the KSH30x graph is
    #: deliberately built *without* summaries, so its findings are
    #: independent of whether the summary layer is enabled).
    summaries: Optional[NotebookSummaries] = None
    #: Stub context (registry + abstract-type env) built over the same
    #: cells, for the KSH50x rules. ``None`` disables that family.
    stubs: Optional[StubContext] = None

    @property
    def cells(self) -> Tuple[CellNode, ...]:
        return self.graph.cells


def _first_load_span(source: str, name: str) -> Span:
    """The span of the first Load of ``name`` in the cell, if locatable."""
    try:
        module = ast.parse(source)
    except SyntaxError:
        return Span(1, 0, 1, 0)
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            return Span.of(node)
    return Span(1, 0, 1, 0)


def _first_store_span(source: str, name: str) -> Span:
    try:
        module = ast.parse(source)
    except SyntaxError:
        return Span(1, 0, 1, 0)
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Store)
        ):
            return Span.of(node)
    return Span(1, 0, 1, 0)


class NotebookLintRule(LintRule):
    """Base class for rules that inspect the whole-notebook graph.

    The per-cell ``check`` is intentionally inert — these rules only
    participate in :meth:`~repro.analysis.rules.LintEngine.lint_notebook`.
    """

    def check(self, context: object) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        raise NotImplementedError

    def cell_finding(
        self, cell: CellNode, message: str, span: Span
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            span=span,
            label=cell.label,
            cell_index=cell.index,
        )


class UseBeforeDefiniteDefRule(NotebookLintRule):
    rule_id = "KSH301"
    severity = Severity.WARNING
    description = (
        "cell reads a name no earlier cell definitely defines"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        for cell in notebook.cells:
            if not cell.executed:
                continue
            for name in sorted(cell.external_reads):
                if is_builtin_name(name):
                    continue
                resolution = notebook.graph.resolve(name, cell.index - 1)
                if resolution.definite is not None:
                    continue
                if resolution.escapes:
                    continue  # KSH304's concern, not a missing definition
                span = _first_load_span(cell.source, name)
                if resolution.conditional:
                    producers = ", ".join(
                        notebook.cells[index].label
                        for index in resolution.conditional
                    )
                    yield self.cell_finding(
                        cell,
                        f"{name!r} is only conditionally defined before this "
                        f"cell (guarded writes in {producers}); re-execution "
                        "may raise NameError",
                        span,
                    )
                elif resolution.killed:
                    yield self.cell_finding(
                        cell,
                        f"{name!r} was deleted by an earlier cell and never "
                        "redefined; this read only worked against stale "
                        "session state",
                        span,
                    )
                else:
                    yield self.cell_finding(
                        cell,
                        f"{name!r} is read but no earlier cell defines it; "
                        "top-to-bottom re-execution will raise NameError",
                        span,
                    )


class DeadWriteRule(NotebookLintRule):
    rule_id = "KSH302"
    severity = Severity.WARNING
    description = (
        "definite write is shadowed by a later definite write before "
        "any cell reads it"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        escape_cells = set(notebook.graph.escape_cells)
        for name in notebook.graph.names():
            events = notebook.graph.events_of(name)
            if events is None:
                continue
            writes = events.definite_writes
            reads = set(events.reads)
            conditional = set(events.conditional_writes)
            mutations = set(events.mutations)
            deletes = set(events.definite_deletes) | set(
                events.conditional_deletes
            )
            for earlier, later in zip(writes, writes[1:]):
                window = range(earlier + 1, later + 1)
                if any(index in reads for index in window):
                    continue
                if any(
                    index in conditional
                    or index in mutations
                    or index in deletes
                    or index in escape_cells
                    for index in range(earlier + 1, later)
                ):
                    continue
                if earlier in escape_cells:
                    continue
                cell = notebook.cells[earlier]
                yield self.cell_finding(
                    cell,
                    f"write to {name!r} is shadowed by "
                    f"{notebook.cells[later].label} before any cell reads "
                    "it; the value is checkpointed but never used",
                    _first_store_span(cell.source, name),
                )


class ExecutionOrderRule(NotebookLintRule):
    rule_id = "KSH303"
    severity = Severity.WARNING
    description = (
        "execution order diverges from notebook order"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        counts = notebook.execution_counts
        if counts is None or len(counts) != len(notebook.cells):
            return
        previous: Optional[int] = None
        previous_cell: Optional[CellNode] = None
        for cell, count in zip(notebook.cells, counts):
            if count <= 0:
                continue  # unknown counter; nothing to compare
            if previous is not None and count <= previous:
                assert previous_cell is not None
                yield self.cell_finding(
                    cell,
                    f"executed as In[{count}] but appears after "
                    f"{previous_cell.label} (In[{previous}]); notebook "
                    "order no longer reproduces the session",
                    Span(1, 0, 1, 0),
                )
            previous = count
            previous_cell = cell


class EscapedDependencyRule(NotebookLintRule):
    rule_id = "KSH304"
    severity = Severity.WARNING
    description = (
        "read may depend on an escaped (opaque) cell; static replay "
        "through it is unsafe"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        for cell in notebook.cells:
            if not cell.executed:
                continue
            for name in sorted(cell.external_reads):
                if is_builtin_name(name):
                    continue
                resolution = notebook.graph.resolve(name, cell.index - 1)
                if not resolution.escapes:
                    continue
                producers = ", ".join(
                    notebook.cells[index].label for index in resolution.escapes
                )
                yield self.cell_finding(
                    cell,
                    f"{name!r} may have been (re)defined by opaque cell(s) "
                    f"{producers}; a static replay plan for this value is "
                    "replay-unsafe",
                    _first_load_span(cell.source, name),
                )


# -- KSH40x: interprocedural summary rules (DESIGN.md §14) -----------------


def _toplevel_named_calls(source: str) -> List[ast.Call]:
    """Calls ``f(...)`` with a plain-name callee, outside any function or
    lambda body (calls inside bodies belong to the callee's summary)."""
    try:
        module = ast.parse(source)
    except SyntaxError:
        return []
    calls: List[ast.Call] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass  # summary territory

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Call(self, node: ast.Call) -> None:
            if isinstance(node.func, ast.Name):
                calls.append(node)
            self.generic_visit(node)

    _Collector().visit(module)
    return calls


def _describe_argument(expression: ast.expr) -> str:
    if isinstance(expression, ast.Name):
        return repr(expression.id)
    rendered = ast.unparse(expression)
    if len(rendered) > 40:
        rendered = rendered[:37] + "..."
    return repr(rendered)


def _mutated_bindings(
    call: ast.Call, summary: FunctionSummary
) -> List[Tuple[str, str]]:
    """(parameter, argument description) pairs for arguments bound to
    parameters the callee's body may mutate in place."""
    mutated = set(summary.mutated_params)
    pairs: List[Tuple[str, str]] = []
    params = list(summary.params)
    for position, argument in enumerate(call.args):
        if isinstance(argument, ast.Starred):
            break  # later positional alignment is unknown
        parameter = (
            params[position] if position < len(params) else summary.vararg
        )
        if parameter is not None and parameter in mutated:
            pairs.append((parameter, _describe_argument(argument)))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in mutated:
            pairs.append((keyword.arg, _describe_argument(keyword.value)))
    return pairs


class HelperArgumentMutationRule(NotebookLintRule):
    rule_id = "KSH401"
    severity = Severity.WARNING
    description = (
        "call lets a helper mutate caller state in place (argument or "
        "global)"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        table = notebook.summaries
        if table is None:
            return
        for cell in notebook.cells:
            if not cell.executed:
                continue
            view = table.view_as_run(cell.index, cell.source)
            for call in _toplevel_named_calls(cell.source):
                assert isinstance(call.func, ast.Name)
                summary = view.get(call.func.id)
                if summary is None:
                    continue
                span = Span.of(call)
                for parameter, argument in _mutated_bindings(call, summary):
                    yield self.cell_finding(
                        cell,
                        f"call to {summary.name}() may mutate argument "
                        f"{argument} in place (parameter {parameter!r}); "
                        "the change is attributed to this cell's delta",
                        span,
                    )
                for name in sorted(summary.global_mutations):
                    yield self.cell_finding(
                        cell,
                        f"call to {summary.name}() may mutate global "
                        f"{name!r} in place; the change is attributed to "
                        "this cell's delta",
                        span,
                    )


class HelperHiddenEffectRule(NotebookLintRule):
    rule_id = "KSH402"
    severity = Severity.WARNING
    description = (
        "call reaches helper code that defeats namespace tracking"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        table = notebook.summaries
        if table is None:
            return
        for cell in notebook.cells:
            if not cell.executed:
                continue
            view = table.view_as_run(cell.index, cell.source)
            for call in _toplevel_named_calls(cell.source):
                assert isinstance(call.func, ast.Name)
                summary = view.get(call.func.id)
                if summary is None or not summary.escapes:
                    continue
                kinds = ", ".join(
                    sorted({escape.kind.value for escape in summary.escapes})
                )
                surfacing = any(
                    escape.kind is not EscapeKind.HIDDEN_GLOBAL_STORE
                    or summary.calls_unknown
                    for escape in summary.escapes
                )
                if surfacing:
                    tail = (
                        "this cell's detection is escalated to "
                        "check-all mode"
                    )
                else:
                    tail = (
                        "the hidden stores are bounded by the summary "
                        "and folded into this cell's write set"
                    )
                yield self.cell_finding(
                    cell,
                    f"call to {summary.name}() reaches code that defeats "
                    f"tracking ({kinds}); {tail}",
                    Span.of(call),
                )


class SummaryInvalidationRule(NotebookLintRule):
    rule_id = "KSH403"
    severity = Severity.INFO
    description = (
        "rebinding invalidates a function summary; later calls use the "
        "conservative analysis"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        table = notebook.summaries
        if table is None:
            return
        for record in table.invalidations:
            if not 0 <= record.cell_index < len(notebook.cells):
                continue
            cell = notebook.cells[record.cell_index]
            base = record.name.split(".", 1)[0]
            yield self.cell_finding(
                cell,
                f"{record.name!r} loses its function summary here "
                f"({record.reason}); later calls fall back to the "
                "conservative unknown-callee analysis",
                _first_store_span(cell.source, base),
            )


# -- KSH50x: library effect stub rules (DESIGN.md §15) ---------------------


def _toplevel_calls(source: str) -> List[ast.Call]:
    """All calls outside any function or lambda body, in source order —
    attribute callees included (the KSH50x rules care about
    ``df.sort_values(...)`` as much as ``loads(...)``)."""
    try:
        module = ast.parse(source)
    except SyntaxError:
        return []
    calls: List[ast.Call] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass  # the summaries fixpoint resolves body calls

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Call(self, node: ast.Call) -> None:
            calls.append(node)
            self.generic_visit(node)

    _Collector().visit(module)
    return calls


def _parse_or_none(source: str) -> Optional[ast.Module]:
    try:
        return ast.parse(source)
    except SyntaxError:
        return None


class StubMutationRule(NotebookLintRule):
    rule_id = "KSH501"
    severity = Severity.INFO
    description = (
        "library call mutates caller state per its effect stub"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        context = notebook.stubs
        if context is None:
            return
        for cell in notebook.cells:
            if not cell.executed:
                continue
            module = _parse_or_none(cell.source)
            if module is None:
                continue
            resolver = context.resolver_as_run(cell.index, module)
            for call in _toplevel_calls(cell.source):
                resolved = resolver.resolve_call(call)
                if resolved is None:
                    continue
                stub = resolved.stub
                span = Span.of(call)
                if resolved.receiver is not None and stub_call_mutates(
                    stub, call
                ):
                    yield self.cell_finding(
                        cell,
                        f"call to {resolved.qualname}() mutates "
                        f"{resolved.receiver!r} in place (per its effect "
                        "stub); the change is attributed to this cell's "
                        "delta",
                        span,
                    )
                for position in stub.mutates_args:
                    if position < len(call.args):
                        argument = _describe_argument(call.args[position])
                        yield self.cell_finding(
                            cell,
                            f"call to {resolved.qualname}() mutates "
                            f"argument {argument} in place (per its effect "
                            "stub)",
                            span,
                        )
                for name in stub.writes_globals:
                    yield self.cell_finding(
                        cell,
                        f"call to {resolved.qualname}() writes global "
                        f"{name!r} behind namespace tracking (per its "
                        "effect stub); the write is folded into this "
                        "cell's write set",
                        span,
                    )


class UnstubbedLibraryCallRule(NotebookLintRule):
    rule_id = "KSH502"
    severity = Severity.WARNING
    description = (
        "library-shaped call has no effect stub; the conservative "
        "treatment applies"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        context = notebook.stubs
        if context is None:
            return
        for cell in notebook.cells:
            if not cell.executed:
                continue
            module = _parse_or_none(cell.source)
            if module is None:
                continue
            resolver = context.resolver_as_run(cell.index, module)
            for call in _toplevel_calls(cell.source):
                if resolver.resolve_call(call) is not None:
                    continue
                unknown = resolver.unknown_library_call(call)
                if unknown is None:
                    continue
                if unknown.stub_file is not None:
                    fix = (
                        f"add an entry for it to {unknown.stub_file} to "
                        "tighten replay plans"
                    )
                else:
                    fix = (
                        "declare it in a stub file and load it with "
                        "StubRegistry.add_file() / `repro stubs check`"
                    )
                yield self.cell_finding(
                    cell,
                    f"no effect stub covers {unknown.qualname}(); the "
                    f"receiver is conservatively assumed mutated — {fix}",
                    Span.of(call),
                )


class StubVersionMismatchRule(NotebookLintRule):
    rule_id = "KSH503"
    severity = Severity.WARNING
    description = (
        "stub pins a library version that disagrees with the imported "
        "module"
    )

    def check_notebook(self, notebook: NotebookContext) -> Iterator[Finding]:
        context = notebook.stubs
        if context is None:
            return
        reported: set = set()
        for cell in notebook.cells:
            if not cell.executed:
                continue
            module = _parse_or_none(cell.source)
            if module is None:
                continue
            for statement in ast.walk(module):
                if isinstance(statement, ast.Import):
                    names = [alias.name for alias in statement.names]
                elif isinstance(statement, ast.ImportFrom):
                    names = [statement.module] if statement.module else []
                else:
                    continue
                for name in names:
                    if name in reported:
                        continue
                    mismatch = context.registry.version_mismatch(name)
                    if mismatch is None:
                        continue
                    reported.add(name)
                    declared, imported = mismatch
                    yield self.cell_finding(
                        cell,
                        f"effect stubs for {name!r} declare version "
                        f"{declared} but the imported module reports "
                        f"{imported}; stub effects may be stale — the "
                        "runtime mismatch oracle remains the safety net",
                        Span.of(statement),
                    )


def default_notebook_rules() -> List[NotebookLintRule]:
    """The built-in KSH30x + KSH40x + KSH50x rule set, in rule-id order."""
    return [
        UseBeforeDefiniteDefRule(),
        DeadWriteRule(),
        ExecutionOrderRule(),
        EscapedDependencyRule(),
        HelperArgumentMutationRule(),
        HelperHiddenEffectRule(),
        SummaryInvalidationRule(),
        StubMutationRule(),
        UnstubbedLibraryCallRule(),
        StubVersionMismatchRule(),
    ]
