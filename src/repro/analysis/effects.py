"""The cell effect model — what a cell *may* do to the session state.

Kishu's runtime tracking (the patched namespace, §4.3) observes the
accesses a cell actually performs. This module defines the static
counterpart: a :class:`CellEffects` value describing, from the cell's AST
alone, the sets of global names the cell reads, writes, and deletes —
split into *definite* effects (performed by every successful execution)
and *conditional* ones (guarded by branches, loops, exception handlers,
short-circuit operators, or function bodies that may never be called).

The two halves of the model serve the two consumers:

* the **write sets** (definite ∪ conditional) over-approximate every name
  a cell can rebind, which is what the lint engine and the ahead-of-time
  pruning rules need (a sound superset);
* the **definite access set** under-approximates what a successful
  execution must touch, which is what the runtime cross-validator checks
  the :class:`~repro.kernel.namespace.AccessRecord` against (Lemma 1
  says the record must contain every performed access — so a definite
  static access missing from the record is evidence of a tracking blind
  spot).

Escape hatches that defeat namespace tracking entirely — ``exec``,
``globals()``, star imports, frame introspection, … — cannot be folded
into name sets; they are reported as :class:`Escape` values with precise
source spans and a kind drawn from the :class:`EscapeKind` taxonomy.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set, Tuple


@dataclass(frozen=True)
class Span:
    """A source location range (1-based line, 0-based column, inclusive
    start / exclusive end), matching the ``ast`` position attributes."""

    line: int
    col: int
    end_line: int
    end_col: int

    @classmethod
    def of(cls, node: ast.AST) -> "Span":
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        end_line = int(getattr(node, "end_lineno", None) or line)
        end_col_raw = getattr(node, "end_col_offset", None)
        end_col = int(end_col_raw) if end_col_raw is not None else col
        return cls(line=line, col=col, end_line=end_line, end_col=end_col)

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class EscapeKind(enum.Enum):
    """Taxonomy of constructs that defeat patched-namespace tracking.

    Each kind names a distinct mechanism by which cell code can read or
    mutate session state without the mutation being attributable to a
    recorded variable-name access (DESIGN.md §8).
    """

    #: ``exec`` / ``eval`` / ``compile`` — runs code the AST cannot see.
    EXEC_EVAL = "exec-eval"
    #: ``globals()`` / ``locals()`` / ``vars()`` — hands cell code the raw
    #: namespace mapping; iteration over it bypasses ``__getitem__``.
    NAMESPACE_INTROSPECTION = "namespace-introspection"
    #: ``importlib`` / ``__import__`` — modules loaded under computed names.
    DYNAMIC_IMPORT = "dynamic-import"
    #: ``from m import *`` — binds a statically unknowable set of names.
    STAR_IMPORT = "star-import"
    #: ``setattr`` / ``delattr`` — attribute mutation under computed names.
    NAME_REFLECTION = "name-reflection"
    #: ``sys._getframe`` / ``inspect.currentframe`` / ``f_globals`` /
    #: ``__globals__`` — reaches the namespace through frame objects.
    FRAME_INTROSPECTION = "frame-introspection"
    #: Assignment to an attribute of a module imported in the same cell —
    #: module state is process-global and outside the checkpointed pool.
    MODULE_PATCH = "module-patch"
    #: A store (or delete) of a module global issued from a nested scope —
    #: a ``global``-declared assignment inside a function, or a walrus
    #: target inside a comprehension. These compile to ``STORE_GLOBAL`` /
    #: ``DELETE_GLOBAL``, which CPython does **not** route through the
    #: patched dict subclass, so the rebinding is invisible to tracking
    #: (reads are safe: ``LOAD_GLOBAL`` honours ``__getitem__``).
    HIDDEN_GLOBAL_STORE = "hidden-global-store"
    #: A call to a name whose function summary the notebook table has
    #: invalidated (rebound by a later cell, wiped by an opaque cell, or
    #: bound by a cell that raised). Unlike a never-summarized global, the
    #: callee demonstrably comes from user code — it may perform hidden
    #: global stores the runtime record cannot see, and no current summary
    #: bounds its effects, so the call site must escalate.
    STALE_SUMMARY_CALL = "stale-summary-call"


@dataclass(frozen=True)
class Escape:
    """One occurrence of a tracking escape hatch in a cell."""

    kind: EscapeKind
    span: Span
    detail: str

    def __str__(self) -> str:
        return f"{self.span} {self.kind.value}: {self.detail}"


@dataclass
class CellEffects:
    """Static read/write/delete/escape summary of one cell (or a merged
    run of cells committed as one checkpoint).

    The *definite* sets (``reads`` / ``writes`` / ``deletes``) contain
    global names touched by straight-line module-level code that every
    non-raising execution performs. The *conditional* sets contain names
    whose access is guarded — branch arms, loop bodies, ``try`` bodies and
    handlers, short-circuit tails, comprehension elements, and the bodies
    of functions or lambdas defined (but not necessarily called) by the
    cell.
    """

    reads: Set[str] = field(default_factory=set)
    conditional_reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    conditional_writes: Set[str] = field(default_factory=set)
    deletes: Set[str] = field(default_factory=set)
    conditional_deletes: Set[str] = field(default_factory=set)
    escapes: Tuple[Escape, ...] = ()
    #: A ``from m import *`` (or similar) binds names the AST cannot
    #: enumerate; the write sets are incomplete when this is set.
    opaque_writes: bool = False
    #: Parse failure message; all other fields are empty when set (the
    #: cell also cannot have executed).
    syntax_error: Optional[str] = None

    # -- interprocedural summary expansion (DESIGN.md §14) -----------------
    #: Global names read / written / deleted on behalf of helper functions
    #: the cell calls, expanded from their :class:`FunctionSummary`. These
    #: are *also* folded into the conditional sets above (downstream
    #: consumers need no special casing); the split-out copies let the
    #: dataflow layer treat summary reads as call-time-eager and let
    #: reporting attribute effects to helpers.
    summary_reads: Set[str] = field(default_factory=set)
    summary_writes: Set[str] = field(default_factory=set)
    summary_deletes: Set[str] = field(default_factory=set)
    #: Names whose object graphs a called helper may mutate in place
    #: (globals mutated by the body, or global arguments bound to
    #: parameters the body mutates).
    summary_mutations: Set[str] = field(default_factory=set)
    #: Escapes found inside summarizable function bodies at the def site.
    #: Under summary analysis they are *deferred* — the body does not run
    #: at definition time — and resurface at every call site via the
    #: function's summary. Kept for telemetry and the KSH40x lint rules.
    deferred_escapes: Tuple[Escape, ...] = ()
    #: Number of call sites expanded through a function summary.
    summary_expansions: int = 0
    #: Calls to global, non-builtin names with no available summary
    #: (undefined, rebound, or never summarizable) — the conservative top.
    summary_unknown_calls: int = 0

    # -- library effect stubs (DESIGN.md §15) ------------------------------
    #: Names whose object graphs a stubbed library call mutates in place
    #: (mutating method receivers, ``mutates_args`` argument positions).
    stub_mutations: Set[str] = field(default_factory=set)
    #: Globals a stubbed call declares it may write (``writes_globals``).
    stub_writes: Set[str] = field(default_factory=set)
    #: Receivers of calls a stub declared *pure* — the cross-validator's
    #: stub-mismatch witnesses: a runtime delta on one of these that no
    #: static write explains means the stub lied (DESIGN.md §15.3).
    stub_pure_receivers: Set[str] = field(default_factory=set)
    #: Call sites resolved through a library effect stub.
    stub_expansions: int = 0
    #: Library-shaped calls (module or stubbed-type receiver) no stub
    #: entry covers — the KSH502 fix-it feed.
    stub_unknown_calls: int = 0

    # -- derived views -----------------------------------------------------

    @property
    def all_reads(self) -> FrozenSet[str]:
        return frozenset(self.reads | self.conditional_reads)

    @property
    def all_writes(self) -> FrozenSet[str]:
        """Sound over-approximation of every name the cell can rebind."""
        return frozenset(self.writes | self.conditional_writes)

    @property
    def all_deletes(self) -> FrozenSet[str]:
        return frozenset(self.deletes | self.conditional_deletes)

    @property
    def all_accessed(self) -> FrozenSet[str]:
        return self.all_reads | self.all_writes | self.all_deletes

    @property
    def definite_accesses(self) -> FrozenSet[str]:
        """Names every successful execution must have touched — the set
        the runtime access record is validated against."""
        return frozenset(self.reads | self.writes | self.deletes)

    @property
    def has_escapes(self) -> bool:
        return bool(self.escapes)

    @property
    def is_opaque(self) -> bool:
        """True when the name sets alone cannot bound the cell's effects."""
        return bool(self.escapes) or self.opaque_writes or self.syntax_error is not None

    def escapes_of(self, kind: EscapeKind) -> Tuple[Escape, ...]:
        return tuple(escape for escape in self.escapes if escape.kind is kind)

    def merge(self, other: "CellEffects") -> "CellEffects":
        """Combine the effects of consecutively executed cells.

        Both cells ran, so definite effects stay definite; a syntax error
        in either half poisons the merge (that cell did not execute, so
        the merged definite sets would over-claim).
        """
        merged = CellEffects(
            reads=self.reads | other.reads,
            conditional_reads=self.conditional_reads | other.conditional_reads,
            writes=self.writes | other.writes,
            conditional_writes=self.conditional_writes | other.conditional_writes,
            deletes=self.deletes | other.deletes,
            conditional_deletes=self.conditional_deletes | other.conditional_deletes,
            escapes=self.escapes + other.escapes,
            opaque_writes=self.opaque_writes or other.opaque_writes,
            syntax_error=self.syntax_error or other.syntax_error,
            summary_reads=self.summary_reads | other.summary_reads,
            summary_writes=self.summary_writes | other.summary_writes,
            summary_deletes=self.summary_deletes | other.summary_deletes,
            summary_mutations=self.summary_mutations | other.summary_mutations,
            deferred_escapes=self.deferred_escapes + other.deferred_escapes,
            summary_expansions=self.summary_expansions + other.summary_expansions,
            summary_unknown_calls=(
                self.summary_unknown_calls + other.summary_unknown_calls
            ),
            stub_mutations=self.stub_mutations | other.stub_mutations,
            stub_writes=self.stub_writes | other.stub_writes,
            stub_pure_receivers=self.stub_pure_receivers | other.stub_pure_receivers,
            stub_expansions=self.stub_expansions + other.stub_expansions,
            stub_unknown_calls=self.stub_unknown_calls + other.stub_unknown_calls,
        )
        return merged
