"""Walk telemetry — counters for the per-cell VarGraph hot path.

The delta detector's cost is dominated by object-graph traversal: every
candidate co-variable is re-walked after every cell (§4.2–4.3, Table 6 /
Fig 17). The incremental construction layer (DESIGN.md §7) makes that cost
proportional to the *delta* instead of the state; this module makes the
claim measurable instead of asserted.

A :class:`WalkTelemetry` is a set of monotonically increasing counters
owned by one :class:`~repro.core.vargraph.VarGraphBuilder`:

* ``objects_visited`` — traversal-policy visits (one per object walked);
* ``cache_hits`` / ``cache_misses`` — subtree-cache lookups that spliced a
  cached segment vs. fell through to a walk;
* ``nodes_spliced`` — graph nodes copied from cached segments instead of
  being re-walked;
* ``bytes_hashed`` — raw bytes fed to the content-digest fast path
  (arrays, buffers, strings);
* ``graphs_built`` — VarGraph constructions (cold or incremental);
* ``cache_invalidations`` — cached subtrees dropped by dirty-set
  invalidation.

Callers that want per-cell numbers take a :meth:`WalkTelemetry.snapshot`
before the work and :meth:`WalkTelemetry.since` after; the resulting
:class:`WalkStats` rides on ``StateDelta`` → ``CellCheckpointMetrics`` /
``TrackingCost`` and surfaces in the CLI (``%telemetry``) and the
``benchmarks/test_ablation_incremental_walk.py`` microbenchmark.

``bytes_hashed`` is recorded at the hashing layer, which has no builder in
scope; builders declare themselves the *active* telemetry for the duration
of a build (:func:`activate` / :func:`deactivate`), and unattributed
hashing lands on the module-wide :data:`GLOBAL_TELEMETRY`.

Since the observability layer (DESIGN.md §11) this module sits *on top
of* :mod:`repro.obs`: :class:`AnalysisStats` and :class:`PlanStats` are
no longer freestanding counter bags but **views over a**
:class:`~repro.obs.metrics.MetricsRegistry` — attribute reads and writes
go straight to registry counters (``analysis.*`` / ``replay.*``), so a
session-bound stats object and ``repro stats`` always agree. A stats
object constructed bare (no registry) gets a private registry, keeping
the historical standalone behaviour. :class:`WalkTelemetry` stays a
plain slotted counter bag — it is incremented per *object visited* on
the walk hot path — and its per-commit deltas are published into the
registry in one batch via :func:`publish_walk_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

_COUNTERS = (
    "objects_visited",
    "cache_hits",
    "cache_misses",
    "nodes_spliced",
    "bytes_hashed",
    "graphs_built",
    "cache_invalidations",
)


@dataclass(frozen=True)
class WalkStats:
    """An immutable snapshot (or difference) of walk counters."""

    objects_visited: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    nodes_spliced: int = 0
    bytes_hashed: int = 0
    graphs_built: int = 0
    cache_invalidations: int = 0

    def __add__(self, other: "WalkStats") -> "WalkStats":
        return WalkStats(
            **{name: getattr(self, name) + getattr(other, name) for name in _COUNTERS}
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTERS}

    @property
    def hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class WalkTelemetry:
    """Mutable walk counters owned by one builder (or the global sink)."""

    __slots__ = _COUNTERS

    def __init__(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> WalkStats:
        return WalkStats(**{name: getattr(self, name) for name in _COUNTERS})

    def since(self, earlier: WalkStats) -> WalkStats:
        """Counter increments accumulated after ``earlier`` was taken."""
        return WalkStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in _COUNTERS
            }
        )

    def reset(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)


class RegistryStats:
    """Base for stats objects that are views over a metrics registry.

    Attribute reads and writes of names in ``_FIELDS`` resolve to the
    counter ``{_PREFIX}.{name}`` in the backing registry, so the
    historical mutation style (``stats.escalations += 1``) keeps working
    while ``repro stats`` reads the very same numbers from the registry.
    Constructed without a registry, a private one is created — the
    standalone behaviour every existing call site relies on.
    """

    _PREFIX = ""
    _FIELDS: Tuple[str, ...] = ()
    #: Field-specific metric names for counters whose registry name does
    #: not follow the ``{_PREFIX}.{field}`` pattern (dots are not valid in
    #: attribute names, so e.g. ``summary_expansions`` can back the
    #: ``analysis.summary.expansions`` counter).
    _FIELD_METRICS: Dict[str, str] = {}

    @classmethod
    def _metric_name(cls, name: str) -> str:
        return cls._FIELD_METRICS.get(name, f"{cls._PREFIX}.{name}")

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, **initial: int
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name, value in initial.items():
            if name not in self._FIELDS:
                raise TypeError(f"unknown counter {name!r}")
            setattr(self, name, value)

    def __getattr__(self, name: str) -> Any:
        # Only called for attributes not found normally — i.e. counters.
        if name in type(self)._FIELDS:
            try:
                registry = self.__dict__["registry"]
            except KeyError:
                raise AttributeError(name) from None
            return registry.counter(type(self)._metric_name(name)).value
        raise AttributeError(name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in type(self)._FIELDS:
            self.__dict__["registry"].counter(
                type(self)._metric_name(name)
            ).set(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({rendered})"


class AnalysisStats(RegistryStats):
    """Counters of the static-analysis / cross-validation layer
    (DESIGN.md §8), backed by ``analysis.*`` registry counters.

    Owned by one :class:`~repro.analysis.crossval.CrossValidator` (and
    therefore one session). ``escalations`` is the interesting number: a
    non-zero count means Lemma 1's runtime guarantee was not trusted for
    those cells and detection fell back to check-all mode for exactly
    them.

    Fields: ``cells_analyzed`` (cells statically analyzed and
    cross-validated), ``escapes_found`` (escape-hatch occurrences — one
    cell may contain several), ``predictions_confirmed`` /
    ``predictions_violated`` (runtime record contained / missed a
    definite static access), ``escalations`` (cells escalated to
    check-all detection), ``read_only_skips`` (cells skipped entirely by
    the §6.2 read-only rule).

    The ``summary_*`` fields track the interprocedural summary layer
    (DESIGN.md §14) and back ``analysis.summary.*`` registry counters:
    ``summary_expansions`` (call sites expanded through a
    :class:`~repro.analysis.summaries.FunctionSummary`),
    ``summary_unknown_calls`` (calls hitting the conservative top),
    ``summary_deferred_escapes`` (escapes deferred from def sites into
    summaries), ``summary_deescalations`` (cells that carried deferred
    escapes yet did *not* escalate — exactly the escalations the old
    intraprocedural analysis would have charged), and
    ``summary_invalidations`` (summary bindings invalidated by rebinds or
    opaque cells).

    The ``stub_*`` fields track the library-effect-stub layer
    (DESIGN.md §15) and back ``analysis.stub.*`` registry counters:
    ``stub_expansions`` (call sites bounded by a declared stub),
    ``stub_unknown_calls`` (library-shaped calls with no covering stub —
    the KSH502 feed), and ``stub_mismatches`` (declared-pure stubs
    refuted by a runtime delta — each also escalates its cell and emits
    a ``stub_mismatch`` event).
    """

    _PREFIX = "analysis"
    _FIELDS = (
        "cells_analyzed",
        "escapes_found",
        "predictions_confirmed",
        "predictions_violated",
        "escalations",
        "read_only_skips",
        "summary_expansions",
        "summary_unknown_calls",
        "summary_deferred_escapes",
        "summary_deescalations",
        "summary_invalidations",
        "stub_expansions",
        "stub_unknown_calls",
        "stub_mismatches",
    )
    _FIELD_METRICS = {
        "summary_expansions": "analysis.summary.expansions",
        "summary_unknown_calls": "analysis.summary.unknown_calls",
        "summary_deferred_escapes": "analysis.summary.deferred_escapes",
        "summary_deescalations": "analysis.summary.deescalations",
        "summary_invalidations": "analysis.summary.invalidations",
        "stub_expansions": "analysis.stub.expansions",
        "stub_unknown_calls": "analysis.stub.unknown_calls",
        "stub_mismatches": "analysis.stub.mismatches",
    }


class PlanStats(RegistryStats):
    """Counters of the static replay planner / engine (DESIGN.md §10),
    backed by ``replay.*`` registry counters.

    Owned by one :class:`~repro.core.replay.ReplayEngine` (and therefore
    one session). ``validation_mismatches`` is the interesting number: a
    non-zero count means a replayed cell's runtime access record missed a
    definite static access — the same Lemma 1 cross-check the session
    applies to live executions, applied to replays.

    Fields: ``plans_computed`` (including plans only displayed),
    ``plans_executed`` (plans that materialized a co-variable at
    checkout), ``plans_declined`` (fell back to the legacy recursion —
    each decline also carries a machine-readable reason in
    :attr:`declines`), ``cells_replayed``, ``cells_skipped`` (cells a
    full-history replay would have run), ``payload_loads`` (stored
    payloads planted instead of replaying), ``validation_mismatches``,
    ``unsafe_plans`` (plans routing through opaque cells).
    """

    _PREFIX = "replay"
    _FIELDS = (
        "plans_computed",
        "plans_executed",
        "plans_declined",
        "cells_replayed",
        "cells_skipped",
        "payload_loads",
        "validation_mismatches",
        "unsafe_plans",
    )

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, **initial: int
    ) -> None:
        super().__init__(registry, **initial)
        #: Machine-readable decline records
        #: (:class:`~repro.core.replay.PlanDecline`), newest last.
        self.declines: List[Any] = []

    @property
    def last_decline(self) -> Optional[Any]:
        return self.declines[-1] if self.declines else None

    def record_decline(self, decline: Any) -> None:
        self.declines.append(decline)
        self.plans_declined += 1
        self.registry.counter(
            f"replay.declined.{getattr(decline, 'reason_value', decline)}"
        ).inc()

    def declines_by_reason(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for decline in self.declines:
            reason = str(getattr(decline, "reason_value", decline))
            totals[reason] = totals.get(reason, 0) + 1
        return dict(sorted(totals.items()))


class HealthStats(RegistryStats):
    """Counters of the fleet-health layer (DESIGN.md §16), backed by
    ``health.*`` registry counters.

    Owned by one :class:`~repro.obs.health.HealthEngine`.
    ``alerts_fired`` is the interesting number: non-zero means at least
    one SLO's multi-window burn rate crossed its threshold during the
    run. ``backpressure_transitions`` counts commit-queue pressure-level
    changes driven by firing backpressure-flagged alerts.

    Fields: ``evaluations`` (evaluator passes over the aggregator
    windows), ``alerts_fired``, ``alerts_resolved``, and
    ``backpressure_transitions``.
    """

    _PREFIX = "health"
    _FIELDS = (
        "evaluations",
        "alerts_fired",
        "alerts_resolved",
        "backpressure_transitions",
    )


def publish_walk_stats(registry: MetricsRegistry, stats: "WalkStats") -> None:
    """Accumulate one walk-stats delta into ``walk.*`` registry counters.

    Called once per commit (with the detection's per-cell delta), not on
    the walk hot path — :class:`WalkTelemetry` stays a plain counter bag
    precisely so per-object increments never pay registry lookups.
    """
    for name in _COUNTERS:
        value = getattr(stats, name)
        if value:
            registry.counter(f"walk.{name}").inc(value)


#: Sink for hashing performed outside any builder's build (rare: direct
#: digest calls from tests or library fast paths).
GLOBAL_TELEMETRY = WalkTelemetry()

_active: WalkTelemetry = GLOBAL_TELEMETRY


def activate(telemetry: WalkTelemetry) -> WalkTelemetry:
    """Make ``telemetry`` the recipient of hashing-layer counts.

    Returns the previously active telemetry, which the caller must restore
    with :func:`deactivate` (builds never run concurrently within one
    interpreter, so a save/restore pair is sufficient and cheaper than a
    context variable on this hot path).
    """
    global _active
    previous = _active
    _active = telemetry
    return previous


def deactivate(previous: WalkTelemetry) -> None:
    global _active
    _active = previous


def count_bytes_hashed(n: int) -> None:
    """Called by the hashing layer for every buffer it digests."""
    _active.bytes_hashed += n
