"""Walk telemetry — counters for the per-cell VarGraph hot path.

The delta detector's cost is dominated by object-graph traversal: every
candidate co-variable is re-walked after every cell (§4.2–4.3, Table 6 /
Fig 17). The incremental construction layer (DESIGN.md §7) makes that cost
proportional to the *delta* instead of the state; this module makes the
claim measurable instead of asserted.

A :class:`WalkTelemetry` is a set of monotonically increasing counters
owned by one :class:`~repro.core.vargraph.VarGraphBuilder`:

* ``objects_visited`` — traversal-policy visits (one per object walked);
* ``cache_hits`` / ``cache_misses`` — subtree-cache lookups that spliced a
  cached segment vs. fell through to a walk;
* ``nodes_spliced`` — graph nodes copied from cached segments instead of
  being re-walked;
* ``bytes_hashed`` — raw bytes fed to the content-digest fast path
  (arrays, buffers, strings);
* ``graphs_built`` — VarGraph constructions (cold or incremental);
* ``cache_invalidations`` — cached subtrees dropped by dirty-set
  invalidation.

Callers that want per-cell numbers take a :meth:`WalkTelemetry.snapshot`
before the work and :meth:`WalkTelemetry.since` after; the resulting
:class:`WalkStats` rides on ``StateDelta`` → ``CellCheckpointMetrics`` /
``TrackingCost`` and surfaces in the CLI (``%telemetry``) and the
``benchmarks/test_ablation_incremental_walk.py`` microbenchmark.

``bytes_hashed`` is recorded at the hashing layer, which has no builder in
scope; builders declare themselves the *active* telemetry for the duration
of a build (:func:`activate` / :func:`deactivate`), and unattributed
hashing lands on the module-wide :data:`GLOBAL_TELEMETRY`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

_COUNTERS = (
    "objects_visited",
    "cache_hits",
    "cache_misses",
    "nodes_spliced",
    "bytes_hashed",
    "graphs_built",
    "cache_invalidations",
)


@dataclass(frozen=True)
class WalkStats:
    """An immutable snapshot (or difference) of walk counters."""

    objects_visited: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    nodes_spliced: int = 0
    bytes_hashed: int = 0
    graphs_built: int = 0
    cache_invalidations: int = 0

    def __add__(self, other: "WalkStats") -> "WalkStats":
        return WalkStats(
            **{name: getattr(self, name) + getattr(other, name) for name in _COUNTERS}
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTERS}

    @property
    def hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class WalkTelemetry:
    """Mutable walk counters owned by one builder (or the global sink)."""

    __slots__ = _COUNTERS

    def __init__(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> WalkStats:
        return WalkStats(**{name: getattr(self, name) for name in _COUNTERS})

    def since(self, earlier: WalkStats) -> WalkStats:
        """Counter increments accumulated after ``earlier`` was taken."""
        return WalkStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in _COUNTERS
            }
        )

    def reset(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)


@dataclass
class AnalysisStats:
    """Counters of the static-analysis / cross-validation layer
    (DESIGN.md §8).

    Owned by one :class:`~repro.analysis.crossval.CrossValidator` (and
    therefore one session). ``escalations`` is the interesting number: a
    non-zero count means Lemma 1's runtime guarantee was not trusted for
    those cells and detection fell back to check-all mode for exactly
    them.
    """

    #: Cells whose effects were statically analyzed and cross-validated.
    cells_analyzed: int = 0
    #: Escape-hatch occurrences found (a single cell may contain several).
    escapes_found: int = 0
    #: Cells whose runtime record contained every definite static access.
    predictions_confirmed: int = 0
    #: Cells whose runtime record missed a definite static access.
    predictions_violated: int = 0
    #: Cells escalated to check-all detection (escapes or violations).
    escalations: int = 0
    #: Cells skipped entirely by the read-only rule (§6.2).
    read_only_skips: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cells_analyzed": self.cells_analyzed,
            "escapes_found": self.escapes_found,
            "predictions_confirmed": self.predictions_confirmed,
            "predictions_violated": self.predictions_violated,
            "escalations": self.escalations,
            "read_only_skips": self.read_only_skips,
        }


@dataclass
class PlanStats:
    """Counters of the static replay planner / engine (DESIGN.md §10).

    Owned by one :class:`~repro.core.replay.ReplayEngine` (and therefore
    one session). ``validation_mismatches`` is the interesting number: a
    non-zero count means a replayed cell's runtime access record missed a
    definite static access — the same Lemma 1 cross-check the session
    applies to live executions, applied to replays.
    """

    #: Replay plans computed (including plans that were only displayed).
    plans_computed: int = 0
    #: Plans actually executed to materialize a co-variable at checkout.
    plans_executed: int = 0
    #: Plans declined (unsafe, incomplete, or failed mid-execution) —
    #: checkout fell back to recursive runtime-dependency recomputation.
    plans_declined: int = 0
    #: Cells re-executed by plan execution.
    cells_replayed: int = 0
    #: Cells a full-history replay would have run but plans skipped.
    cells_skipped: int = 0
    #: Stored payloads planted by plan execution instead of replaying.
    payload_loads: int = 0
    #: Replayed cells whose runtime record missed a definite static access.
    validation_mismatches: int = 0
    #: Plans flagged replay-unsafe because they route through opaque cells.
    unsafe_plans: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "plans_computed": self.plans_computed,
            "plans_executed": self.plans_executed,
            "plans_declined": self.plans_declined,
            "cells_replayed": self.cells_replayed,
            "cells_skipped": self.cells_skipped,
            "payload_loads": self.payload_loads,
            "validation_mismatches": self.validation_mismatches,
            "unsafe_plans": self.unsafe_plans,
        }


#: Sink for hashing performed outside any builder's build (rare: direct
#: digest calls from tests or library fast paths).
GLOBAL_TELEMETRY = WalkTelemetry()

_active: WalkTelemetry = GLOBAL_TELEMETRY


def activate(telemetry: WalkTelemetry) -> WalkTelemetry:
    """Make ``telemetry`` the recipient of hashing-layer counts.

    Returns the previously active telemetry, which the caller must restore
    with :func:`deactivate` (builds never run concurrently within one
    interpreter, so a save/restore pair is sufficient and cheaper than a
    context variable on this hot path).
    """
    global _active
    previous = _active
    _active = telemetry
    return previous


def deactivate(previous: WalkTelemetry) -> None:
    global _active
    _active = previous


def count_bytes_hashed(n: int) -> None:
    """Called by the hashing layer for every buffer it digests."""
    _active.bytes_hashed += n
