"""Simulated heavy computation for workload cells.

The paper's notebooks spend seconds-to-minutes in data loads and model
fits. Our synthetic equivalents must reproduce not just the *duration* of
that work but its *execution character*: real fits run a stream of Python
bytecode dispatching into C kernels, so instrumentation-based trackers
(IPyFlow's per-statement live resolution, §7.6) pay per executed line,
while between-cell trackers (Kishu) pay nothing.

:func:`simulate_compute` burns the requested wall-clock time in a loop
whose per-iteration C work (a 4 KiB blake2b digest) keeps the Python
line-event rate near that of numeric library code — a ``time.sleep``
would generate *no* events and unrealistically favour tracing-based
tools.
"""

from __future__ import annotations

import hashlib
import time

_PAYLOAD = b"\x00" * 4096


def simulate_compute(seconds: float) -> int:
    """Busy-execute for ``seconds``; returns the loop iteration count."""
    deadline = time.perf_counter() + seconds
    iterations = 0
    while time.perf_counter() < deadline:
        hashlib.blake2b(_PAYLOAD).digest()
        iterations += 1
    return iterations
