"""Notebook workload specifications (Table 2 / Table 8 of the paper).

A :class:`NotebookSpec` is an executable description of one evaluation
notebook: its cells (source + tags), its category metadata (final vs
in-progress, hidden states, out-of-order cells), and the cell indices the
checkout experiments target (undo cells for Fig 15, the pre-model branch
point for Fig 16).

Cell tags used by the experiments:

* ``"deterministic"`` — manual Det-replay annotation (§7.1 footnote 6);
* ``"undo-target"``   — a dataframe/plot operation §7.5.1 undoes;
* ``"model-train"``   — a model-fitting cell; the Fig 16 branch point is
  the last checkpoint before the first of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.kernel.cells import Cell


@dataclass(frozen=True)
class NotebookSpec:
    """One evaluation notebook."""

    name: str
    topic: str
    library: str
    final: bool
    hidden_states: int
    out_of_order_cells: int
    cells: Tuple[Cell, ...]

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    @property
    def undo_target_indices(self) -> List[int]:
        """0-based indices of cells tagged as undo targets (Fig 15)."""
        return [i for i, cell in enumerate(self.cells) if cell.has_tag("undo-target")]

    @property
    def primary_undo_index(self) -> Optional[int]:
        """The paper's canonical undo cell for this notebook (§7.5.1), if
        one is tagged; falls back to the last undo target (typically a
        small plot/aux operation late in the notebook)."""
        for i, cell in enumerate(self.cells):
            if cell.has_tag("undo-primary"):
                return i
        targets = self.undo_target_indices
        return targets[-1] if targets else None

    @property
    def branch_point_index(self) -> Optional[int]:
        """Index of the last cell before any model training (Fig 16):
        the state the path-exploration experiment checks out to."""
        for i, cell in enumerate(self.cells):
            if cell.has_tag("model-train"):
                return i - 1 if i > 0 else None
        return None

    @property
    def category(self) -> str:
        return "final" if self.final else "in-progress"


def make_cells(entries: Sequence[Tuple[str, Sequence[str]]]) -> Tuple[Cell, ...]:
    """Build a cell tuple from (source, tags) pairs."""
    cells = []
    for index, (source, tags) in enumerate(entries):
        cells.append(
            Cell(source=source, cell_id=f"cell-{index}", tags=frozenset(tags))
        )
    return tuple(cells)
