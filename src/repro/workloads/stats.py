"""Workload-characteristics measurements (Fig 2 / Fig 25 / Table 7).

These functions re-derive the paper's motivating statistics from our
notebooks: the fraction of state each cell accesses, the balance between
data creations and modifications, and the variable vs co-variable counts
of final states.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.covariable import CoVariablePool
from repro.core.delta import DeltaDetector
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import filter_user_names
from repro.workloads.spec import NotebookSpec


@dataclass
class CellAccessStats:
    """Fig 2-style numbers for one cell execution."""

    cell_index: int
    accessed_bytes: int
    state_bytes: int
    created_covariables: int
    modified_covariables: int
    deleted_covariables: int
    created_bytes: int = 0
    modified_bytes: int = 0

    @property
    def accessed_fraction(self) -> float:
        if self.state_bytes == 0:
            return 0.0
        return self.accessed_bytes / self.state_bytes


@dataclass
class NotebookAccessStats:
    """Aggregate Fig 2 / Fig 25 numbers for one notebook."""

    name: str
    cells: List[CellAccessStats]

    @property
    def cells_under_10_percent(self) -> int:
        """Paper: 40/44 Sklearn cells access <10% of the state."""
        return sum(1 for cell in self.cells if cell.accessed_fraction < 0.10)

    @property
    def creation_fraction(self) -> float:
        """Byte-weighted share of updates that are creations.

        Fig 2 (bottom) reports *updated data* split ~45%/55% between
        creations and modifications — a byte measure, not a count.
        """
        created = sum(cell.created_bytes for cell in self.cells)
        modified = sum(cell.modified_bytes for cell in self.cells)
        total = created + modified
        return created / total if total else 0.0


def _nominal_size(value: Any) -> int:
    try:
        return len(pickle.dumps(value, protocol=5))
    except Exception:
        return 256  # unpicklable objects are typically small handles


def measure_access_patterns(
    spec: NotebookSpec, *, scale_hint: str = ""
) -> NotebookAccessStats:
    """Run a notebook and measure per-cell access statistics."""
    kernel = NotebookKernel()
    pool = CoVariablePool()
    detector = DeltaDetector(pool)
    cells: List[CellAccessStats] = []

    for index, cell in enumerate(spec.cells):
        kernel.user_ns.begin_recording()
        kernel.run_cell(cell)
        record = kernel.user_ns.end_recording()

        items = kernel.user_variables()
        accessed = filter_user_names(record.accessed)
        accessed_bytes = sum(
            _nominal_size(items[name]) for name in accessed if name in items
        )
        state_bytes = sum(_nominal_size(value) for value in items.values())
        delta = detector.detect(record, items)

        def covariable_bytes(keys) -> int:
            return sum(
                _nominal_size(items[name])
                for key in keys
                for name in key
                if name in items
            )

        cells.append(
            CellAccessStats(
                cell_index=index,
                accessed_bytes=accessed_bytes,
                state_bytes=state_bytes,
                created_covariables=len(delta.created),
                modified_covariables=len(delta.modified),
                deleted_covariables=len(delta.deleted),
                created_bytes=covariable_bytes(delta.created),
                modified_bytes=covariable_bytes(delta.modified),
            )
        )
    return NotebookAccessStats(name=spec.name, cells=cells)


def covariable_census(spec: NotebookSpec) -> Tuple[int, int]:
    """(variable count, co-variable count) of a notebook's final state —
    one row of the paper's Table 7."""
    kernel = NotebookKernel()
    for cell in spec.cells:
        kernel.run_cell(cell)
    pool = CoVariablePool.from_namespace(kernel.user_variables())
    return len(kernel.user_variables()), len(pool)


def covariable_size_fractions(spec: NotebookSpec) -> List[float]:
    """Per-co-variable fraction of total state bytes (Fig 18's vertical
    'typical notebook' marker: 2.57% on average in the paper)."""
    kernel = NotebookKernel()
    for cell in spec.cells:
        kernel.run_cell(cell)
    items = kernel.user_variables()
    pool = CoVariablePool.from_namespace(items)
    sizes = []
    for covariable in pool.covariables():
        sizes.append(
            sum(_nominal_size(items[name]) for name in covariable.names if name in items)
        )
    total = sum(sizes)
    if total == 0:
        return [0.0 for _ in sizes]
    return [size / total for size in sizes]
