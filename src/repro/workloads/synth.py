"""Synthetic parameter-sweep workloads (§7.7 of the paper).

Two generators:

* :func:`shared_referencing_workload` — Fig 18: ten equal arrays, *k* of
  them bundled into one list (one co-variable covering k/10 of the state);
  the test cell modifies a single array inside the list. Sweeping *k*
  sweeps the fraction of state data in the updated co-variable.
* :func:`long_session_cells` — Fig 19: after one full pass over a
  notebook, randomly re-execute its cells up to 1000 times (the longest
  notebook observed on Kaggle), growing the checkpoint graph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kernel.cells import Cell
from repro.workloads.spec import NotebookSpec, make_cells


def shared_referencing_workload(
    arrays_in_covariable: int,
    *,
    n_arrays: int = 10,
    array_kb: int = 512,
    probe: str = "bundle",
) -> NotebookSpec:
    """Fig 18 workload: ``arrays_in_covariable`` of ``n_arrays`` equal
    numpy arrays are inside one list; the rest stand alone. The final cell
    modifies one array *inside the list*, so exactly one co-variable — of
    size k/n of the state — is updated.

    ``array_kb`` scales the paper's 64 MB arrays down to laptop size; the
    sweep shape depends only on the ratio.

    ``probe`` selects how the probe cell reaches the array it rewrites:

    * ``"bundle"`` (Fig 18's shape) — through the list, ``bundle[0][:] =
      ...``. The cell accesses ``bundle``, so the whole co-variable is
      dirty from the tracker's perspective.
    * ``"member"`` — through the member's own name, ``arr_0[:] = ...``.
      The cell accesses only ``arr_0``, so sub-variable dirty tracking
      (the incremental walk cache) can keep every sibling array cached —
      the ``test_ablation_incremental_walk`` microbenchmark's shape.
    """
    if not 1 <= arrays_in_covariable <= n_arrays:
        raise ValueError(
            f"arrays_in_covariable must be in [1, {n_arrays}],"
            f" got {arrays_in_covariable}"
        )
    if probe not in ("bundle", "member"):
        raise ValueError(f"probe must be 'bundle' or 'member', got {probe!r}")
    elements = array_kb * 1024 // 8
    entries = [
        ("import numpy as np", ()),
        (f"N_ELEMENTS = {elements}", ()),
    ]
    for i in range(n_arrays):
        entries.append(
            (
                f"arr_{i} = np.random.default_rng({i}).random(N_ELEMENTS)",
                (),
            )
        )
    bundled = ", ".join(f"arr_{i}" for i in range(arrays_in_covariable))
    entries.append((f"bundle = [{bundled}]", ()))
    # The probe cell: an in-place rewrite of one whole array inside the
    # bundle (the paper modifies one of the ten 64 MB arrays).
    if probe == "bundle":
        entries.append(("bundle[0][:] = bundle[0] * 1.01 + 0.5", ("probe",)))
    else:
        entries.append(("arr_0[:] = arr_0 * 1.01 + 0.5", ("probe",)))
    return NotebookSpec(
        name=f"SharedRef-{arrays_in_covariable}of{n_arrays}",
        topic="Shared-referencing sweep",
        library="numpy",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def long_session_cells(
    spec: NotebookSpec, n_executions: int, *, seed: int = 0
) -> List[Cell]:
    """Fig 19 workload: a random re-execution sequence over a notebook.

    The returned list starts with one full in-order pass (so every
    variable exists) and continues with randomly chosen cell re-executions
    until ``n_executions`` total. Import and read-only cells re-execute
    safely; cells with one-shot dependencies are skipped from the
    re-execution pool (determined by a dry run).
    """
    rng = np.random.default_rng(seed)
    full_pass = list(spec.cells)
    if n_executions <= len(full_pass):
        return full_pass[:n_executions]

    reexecutable = _reexecutable_cells(spec)
    sequence = list(full_pass)
    while len(sequence) < n_executions:
        sequence.append(reexecutable[int(rng.integers(0, len(reexecutable)))])
    return sequence


def _reexecutable_cells(spec: NotebookSpec) -> List[Cell]:
    """Cells that can safely re-run after a full pass (dry-run check)."""
    from repro.kernel.kernel import NotebookKernel

    kernel = NotebookKernel()
    for cell in spec.cells:
        kernel.run_cell(cell)
    safe: List[Cell] = []
    for cell in spec.cells:
        try:
            kernel.run_cell(cell)
            safe.append(cell)
        except Exception:
            continue
    if not safe:
        raise ValueError(f"notebook {spec.name!r} has no re-executable cells")
    return safe
