"""Evaluation workloads: the 8 notebooks of Table 2 plus synthetic sweeps."""

from repro.workloads.notebooks import (
    NOTEBOOK_BUILDERS,
    build_all,
    build_cluster,
    build_hw_lm,
    build_notebook,
    build_qiskit,
    build_ray,
    build_sklearn,
    build_storesales,
    build_torchgpu,
    build_tps,
)
from repro.workloads.spec import NotebookSpec, make_cells
from repro.workloads.stats import (
    CellAccessStats,
    NotebookAccessStats,
    covariable_census,
    covariable_size_fractions,
    measure_access_patterns,
)
from repro.workloads.synth import long_session_cells, shared_referencing_workload

__all__ = [
    "NotebookSpec",
    "make_cells",
    "NOTEBOOK_BUILDERS",
    "build_all",
    "build_notebook",
    "build_cluster",
    "build_tps",
    "build_sklearn",
    "build_hw_lm",
    "build_storesales",
    "build_qiskit",
    "build_torchgpu",
    "build_ray",
    "CellAccessStats",
    "NotebookAccessStats",
    "measure_access_patterns",
    "covariable_census",
    "covariable_size_fractions",
    "long_session_cells",
    "shared_referencing_workload",
]
