"""The eight evaluation notebooks (Table 2 / Table 8 of the paper).

Synthetic equivalents of the paper's Kaggle/GitHub notebooks, matched on
the structural traits the experiments measure:

=============  =====  ========  ==============  =========================
Notebook       Cells  Final?    Library         Distinguishing trait
=============  =====  ========  ==============  =========================
Cluster           24  final     seaborn-like    long deterministic fits
TPS               49  final     sklearn-like    feature-engineering sweep
Sklearn           44  in-prog.  sklearn-like    interleaved lists, aux-df
HW-LM             81  final     numpy           many tiny cells, prints
StoreSales        41  final     statsmodels     complex control flow cell
Qiskit            85  in-prog.  qiskit-like     unserializable hash state
TorchGPU          27  final     torch-like      on-GPU tensors (off-proc)
Ray               20  in-prog.  ray-like        remote datasets (off-proc)
=============  =====  ========  ==============  =========================

Every notebook follows the §2.2 workload traits: cells access a small
fraction of the state, and updates split roughly 45/55 between creations
and in-place modifications. ``scale`` multiplies data sizes (1.0 ≈ a few
MB to tens of MB per notebook, a laptop-friendly scaling of the paper's
1 MB–1 GB range; the relative ordering across notebooks is preserved).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.workloads.spec import NotebookSpec, make_cells

Entry = Tuple[str, Sequence[str]]


def _rows(base: int, scale: float) -> int:
    return max(64, int(base * scale))


def _work(base_seconds: float, scale: float) -> float:
    """Simulated compute time for a heavy cell, scaled with the data.

    The paper's notebooks run 13 s - 2361 s because loads and fits do
    real work; our synthetic equivalents would otherwise finish in
    microseconds, distorting every time-relative measurement (tracking
    overhead ratios, store-vs-recompute optimizers, replay costs).
    """
    return round(max(base_seconds * scale, 0.002), 4)


def build_cluster(scale: float = 1.0) -> NotebookSpec:
    """Cluster analysis: brute-force model sweep over one frame (24 cells).

    Final notebook; the hyperparameter-sweep fit cells are deterministic
    (seeded), making this the Det-replay stress case: skipping their
    checkpoints is cheap, but replaying the whole fitting sequence at
    checkout is the paper's 1050 s blow-up.
    """
    n = _rows(40_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("from repro.frame import DataFrame", ()),
        (
            "from repro.libsim.machine_learning import "
            "SimKMeans, SimPowerTransformer, SimGridSearch",
            (),
        ),
        ("from repro.libsim.visualization import SimFigure, SimHeatmap", ()),
        (
            f"df = DataFrame.from_random({n}, 12, seed=1)\n"
            f"simulate_compute({_work(0.3, scale)})",
            (),
        ),
        ("summary = df.describe()", ()),
        (
            "X = np.column_stack([df.column_array(c) for c in df.columns])",
            (),
        ),
        ("X_scaled = SimPowerTransformer().fit_transform(X)", ()),
        ("X_scaled = SimPowerTransformer().fit_transform(X_scaled)", ()),
        ("hyperparams = dict(n_init=5)", ()),
        ("models = {}", ()),
    ]
    # The brute-force sweep: one granular fit cell per k (paper Fig 24),
    # each deterministic and expensive relative to the rest.
    for k in range(2, 9):
        entries.append(
            (
                f"models[{k}] = SimKMeans(k={k}, seed=0)"
                f".fit(X_scaled[:, :2], iterations=12)\n"
                f"simulate_compute({_work(0.35, scale)})",
                ("deterministic", "model-train"),
            )
        )
    entries.extend(
        [
            (
                "inertias = {k: m.inertia for k, m in models.items()}",
                (),
            ),
            ("best_k = min(inertias, key=inertias.get)", ()),
            (
                "fig = SimFigure()\n"
                "ax = fig.add_axes()\n"
                "ax.plot(np.array(sorted(inertias)),"
                " np.array([inertias[k] for k in sorted(inertias)]), 'elbow')",
                ("undo-target",),
            ),
            ("heat = SimHeatmap(shape=(12, 12), seed=2)", ()),
            ("heat.clip(0.1, 0.9)", ("undo-target",)),
            ("fig.suptitle('bruteforce clustering')", ()),
        ]
    )
    assert len(entries) == 24, len(entries)
    return NotebookSpec(
        name="Cluster",
        topic="Cluster analysis",
        library="seaborn-like",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def build_tps(scale: float = 1.0) -> NotebookSpec:
    """Tabular playground: EDA + feature engineering + forest (49 cells)."""
    n = _rows(30_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("from repro.frame import DataFrame, Series", ()),
        (
            "from repro.libsim.machine_learning import "
            "SimRandomForest, SimStandardScaler, SimLabelEncoder",
            (),
        ),
        ("from repro.libsim.visualization import SimLinePlot, SimBarChart", ()),
        ("random_state = 42", ()),
        (
            f"train = DataFrame.from_random({n}, 10, seed=3)\n"
            f"simulate_compute({_work(0.25, scale)})",
            (),
        ),
        (
            f"test = DataFrame.from_random({n // 4}, 10, seed=4)\n"
            f"simulate_compute({_work(0.1, scale)})",
            (),
        ),
        ("train_summary = train.describe()", ()),
        ("test_summary = test.describe()", ()),
    ]
    # EDA: one inspection cell per feature, reading the (small) summary
    # rather than re-scanning the frame — granular and read-mostly.
    for i in range(10):
        entries.append((f"eda_{i} = train_summary['c{i}']['mean']", ()))
    # Feature engineering: trig expansions, one feature per cell
    # (the paper's incremental-operations trait).
    for i in range(8):
        entries.append(
            (
                f"train['fe_{i}'] = np.sin(train.column_array('c{i % 10}') * {i + 1})",
                (),
            )
        )
    entries.extend(
        [
            ("labeler = SimLabelEncoder().fit(['low', 'mid', 'high'])", ()),
            ("bands = labeler.transform(['low', 'high', 'mid', 'low'])", ()),
            ("train['band'] = np.resize(bands.astype(float), len(train))", ()),
            ("band_means = train.groupby_agg('band', 'c0', 'mean')", ()),
            ("scaler = SimStandardScaler()", ()),
            (
                "X_train = np.column_stack("
                "[train.column_array(c) for c in train.columns])",
                (),
            ),
            ("X_train = scaler.fit(X_train).transform(X_train)", ()),
            ("y_train = (train.column_array('c0') > 0.5).astype(int)", ()),
            (
                "forest = SimRandomForest(n_trees=8, seed=42)"
                ".fit(X_train[:512], y_train[:512])\n"
                f"simulate_compute({_work(0.4, scale)})",
                ("deterministic", "model-train"),
            ),
            (
                "preds = forest.predict(X_train[:512])",
                (),
            ),
            ("accuracy = float((preds == y_train[:512]).mean())", ()),
            (
                "forest_deep = SimRandomForest(n_trees=16, seed=42)"
                ".fit(X_train[:512], y_train[:512])\n"
                f"simulate_compute({_work(0.6, scale)})",
                ("deterministic", "model-train"),
            ),
            ("preds_deep = forest_deep.predict(X_train[:512])", ()),
            ("accuracy_deep = float((preds_deep == y_train[:512]).mean())", ()),
            (
                "plot_acc = SimBarChart(categories=('base', 'deep'))",
                ("undo-target",),
            ),
            ("plot_acc.normalize()", ("undo-target",)),
            (
                "curve = SimLinePlot(n=40, seed=5)",
                (),
            ),
            ("curve.restyle(color='#efb118')", ("undo-target",)),
            ("aux = train.head(200)", ()),
            ("aux = aux.drop('c9')", ("undo-target",)),
            (
                "submission = DataFrame({'id': np.arange(512),"
                " 'pred': preds_deep.astype(float)})",
                (),
            ),
            ("final_score = accuracy_deep", ()),
        ]
    )
    assert len(entries) == 49, len(entries)
    return NotebookSpec(
        name="TPS",
        topic="Random forest",
        library="sklearn-intelex-like",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def build_sklearn(scale: float = 1.0) -> NotebookSpec:
    """Text mining, in-progress (44 cells).

    Carries the paper's motivating structures: two sentiment lists built
    *interleaved* in one loop (fragmenting them on the simulated heap, the
    Fig 4 CRIU pathology); a large main frame next to a small auxiliary
    frame whose column-drop is the §7.5.1 undo test; and an out-of-order
    re-executed cell (hidden state).
    """
    n_main = _rows(180_000, scale)
    n_corpus = _rows(3_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("from repro.frame import DataFrame, Series", ()),
        (
            "from repro.libsim.nlp import "
            "SimTokenizer, SimTfIdfVectorizer, SimSentimentModel, SimStopwordFilter",
            (),
        ),
        ("from repro.libsim.machine_learning import SimLogisticRegression", ()),
        (
            f"main_df = DataFrame.from_random({n_main}, 12, seed=6)\n"
            f"simulate_compute({_work(0.4, scale)})",
            (),
        ),
        (
            f"moods = np.where(DataFrame.from_random({n_corpus}, 1, seed=7)"
            ".column_array('c0') > 0.5, 'sad', 'happy')",
            (),
        ),
        (
            "texts = ['tweet number %d about climate' % i"
            " for i in range(len(moods))]",
            (),
        ),
        ("corpus = {'mood': moods, 'txt': texts}", ()),
        ("sad_ls = []\nhappy_ls = []", ()),
        (
            # The interleaved construction of the paper's Fig 4.
            "for mood, txt in zip(corpus['mood'], corpus['txt']):\n"
            "    if mood == 'sad':\n"
            "        sad_ls.append(txt)\n"
            "    else:\n"
            "        happy_ls.append(txt)\n"
            f"simulate_compute({_work(0.25, scale)})",
            (),
        ),
        ("len_sad = len(sad_ls)", ()),
        ("len_happy = len(happy_ls)", ()),
        (
            "sad_ls = [t.replace('climate', 'weather') for t in sad_ls]\n"
            f"simulate_compute({_work(0.15, scale)})",
            ("undo-target",),
        ),
        ("tokenizer = SimTokenizer()", ()),
        ("stop = SimStopwordFilter()", ()),
        (
            "sad_tokens = [stop.filter(tokenizer.tokenize(t)) for t in sad_ls[:400]]",
            (),
        ),
        (
            "happy_tokens = [stop.filter(tokenizer.tokenize(t))"
            " for t in happy_ls[:400]]",
            (),
        ),
        ("vectorizer = SimTfIdfVectorizer()", ()),
        (
            "tfidf = vectorizer.fit_transform("
            "[' '.join(t) for t in (sad_tokens + happy_tokens)[:200]])",
            (),
        ),
        ("labels = np.array([1] * min(len(sad_tokens), 100)"
         " + [0] * min(len(happy_tokens), 100))", ()),
        (
            "clf = SimLogisticRegression(iterations=40)"
            ".fit(tfidf[:len(labels)], labels)\n"
            f"simulate_compute({_work(0.3, scale)})",
            ("model-train", "deterministic"),
        ),
        ("probs = clf.predict_proba(tfidf[:len(labels)])", ()),
        ("train_acc = float(((probs > 0.5) == labels).mean())", ()),
        ("sentiment = SimSentimentModel()", ()),
        (
            "polarity_scores = [sentiment.polarity(t) for t in sad_ls[:100]]",
            (),
        ),
        # The auxiliary dataframe of §7.5.1: small next to the main frame.
        (f"aux_df = DataFrame.from_random({max(64, n_main // 96)}, 12, seed=8)", ()),
        ("aux_df = aux_df.drop('c3')", ("undo-target", "undo-primary")),
        ("aux_summary = aux_df.describe()", ()),
        ("text_neg = [t for t in sad_ls[:500]]", ()),
        (
            "text_neg = [t.upper() for t in text_neg]",
            ("undo-target",),
        ),
        ("neg_count = len(text_neg)", ()),
        ("main_mean = float(main_df['c0'].mean())", ()),
        ("main_df['derived'] = main_df.column_array('c0') * 2.0", ()),
        ("derived_mean = float(main_df['derived'].mean())", ()),
        ("word_budget = 280", ()),
        ("summary_text = 'acc=%.3f' % train_acc", ()),
    ]
    # In-progress: one cell re-executed out of order (hidden state), plus a
    # second out-of-order adjustment cell (Table 8: 1 hidden state, 2
    # out-of-order cells).
    entries.append(("len_sad = len(sad_ls)", ()))  # re-executed earlier cell
    entries.append(("word_budget = 140", ()))  # adjusted earlier definition
    # Remaining incremental cells to reach the paper's 44.
    entries.extend(
        [
            ("happy_sample = happy_ls[:10]", ()),
            ("sad_sample = sad_ls[:10]", ()),
            ("mood_counts = {'sad': len_sad, 'happy': len_happy}", ()),
            ("checkpoint_note = 'cleaning pass done'", ()),
            ("final_report = dict(acc=train_acc, n=neg_count)", ()),
            ("del polarity_scores", ()),
        ]
    )
    assert len(entries) == 44, len(entries)
    return NotebookSpec(
        name="Sklearn",
        topic="Text mining",
        library="sklearn-like",
        final=False,
        hidden_states=1,
        out_of_order_cells=2,
        cells=make_cells(entries),
    )


def build_hw_lm(scale: float = 1.0) -> NotebookSpec:
    """Hands-on ML chapter 4, linear models (81 cells).

    Matches the paper's HW-LM: tiny data (~1 MB), very many small cells —
    the notebook where per-cell overhead dominates, and where read-only
    print cells (``y_train[:10]``) expose the tracker's worst relative
    overhead (§7.6).
    """
    n = _rows(1_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("from repro.libsim.machine_learning import SimLinearRegression", ()),
        ("from repro.libsim.visualization import SimLinePlot, SimScatterPlot", ()),
        ("rng_seed = 42", ()),
        (f"X = np.linspace(0, 2, {n}).reshape(-1, 1)", ()),
        (
            "y = 4 + 3 * X[:, 0] + "
            "np.random.default_rng(rng_seed).normal(0, 1, len(X))",
            (),
        ),
        ("X_train = X[: int(len(X) * 0.8)]", ()),
        ("X_test = X[int(len(X) * 0.8):]", ()),
        ("y_train = y[: int(len(y) * 0.8)]", ()),
        ("y_test = y[int(len(y) * 0.8):]", ()),
    ]
    # Polynomial feature cells: one degree per cell.
    for degree in range(2, 7):
        entries.append(
            (f"X_poly_{degree} = X_train ** {degree}", ())
        )
    # Model-per-configuration cells: fit, then evaluate, then inspect —
    # three granular cells per configuration, the HW-LM cell pattern.
    for degree in range(1, 7):
        features = "X_train" if degree == 1 else f"X_poly_{degree}"
        entries.append(
            (
                f"lin_reg_{degree} = SimLinearRegression()"
                f".fit({features}, y_train)\n"
                f"simulate_compute({_work(0.05, scale)})",
                ("model-train", "deterministic"),
            )
        )
        entries.append(
            (f"train_pred_{degree} = lin_reg_{degree}.predict({features})", ())
        )
        entries.append(
            (
                f"mse_{degree} = float(((train_pred_{degree} - y_train) ** 2)"
                ".mean())",
                (),
            )
        )
    # Learning-curve style incremental cells.
    for fraction in (10, 25, 50, 75):
        entries.append(
            (
                f"subset_{fraction} = SimLinearRegression().fit("
                f"X_train[: len(X_train) * {fraction} // 100],"
                f" y_train[: len(y_train) * {fraction} // 100])",
                ("deterministic",),
            )
        )
        entries.append(
            (
                f"subset_mse_{fraction} = float(((subset_{fraction}"
                f".predict(X_test) - y_test) ** 2).mean())",
                (),
            )
        )
    # Residual-analysis cells: two granular cells per configuration.
    for degree in range(1, 7):
        entries.append(
            (f"resid_{degree} = train_pred_{degree} - y_train", ())
        )
        entries.append(
            (f"resid_std_{degree} = float(resid_{degree}.std())", ())
        )
    # Regularized variants, one per strength (ridge-style shrinkage).
    for alpha_ix, alpha in enumerate((0.1, 1.0, 10.0)):
        entries.append(
            (
                f"ridge_coef_{alpha_ix} = lin_reg_1.coef / (1.0 + {alpha})",
                (),
            )
        )
        entries.append(
            (
                f"ridge_mse_{alpha_ix} = float(((X_test @ ridge_coef_{alpha_ix}"
                f" + lin_reg_1.intercept - y_test) ** 2).mean())",
                (),
            )
        )
    # Read-only inspection/print cells (the paper's §7.6 worst case).
    for i in range(12):
        entries.append((f"y_train[:{(i % 5) + 5}]", ()))
    entries.extend(
        [
            ("mses = {d: globals()['mse_%d' % d] for d in range(1, 7)}", ()),
            ("best_degree = min(mses, key=mses.get)", ()),
            ("plot_fit = SimScatterPlot(n=60, seed=9)", ("undo-target",)),
            ("plot_fit.jitter(0.02)", ("undo-target",)),
            ("plot_curve = SimLinePlot(n=50, seed=10)", ()),
            ("plot_curve.restyle(linewidth=2.0)", ("undo-target",)),
            ("theta_best = lin_reg_1.coef", ()),
            ("intercept_best = lin_reg_1.intercept", ()),
            ("report = dict(best=best_degree, mse=mses[best_degree])", ()),
            ("print('done:', report)", ()),
        ]
    )
    assert len(entries) == 81, len(entries)
    return NotebookSpec(
        name="HW-LM",
        topic="Linear regression",
        library="numpy",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def build_storesales(scale: float = 1.0) -> NotebookSpec:
    """Store-sales time-series forecasting (41 cells).

    Carries the paper's two StoreSales hallmarks: auxiliary frames created
    alongside models/plots on the second branch (the Fig 16 divergence),
    and one cell with complex looping control flow that defeats per-line
    live instrumentation (IPyFlow fails on cell 27; here the loop exceeds
    the tracker's event bound).
    """
    n = _rows(120_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("from repro.frame import DataFrame, Series", ()),
        ("from repro.libsim.data_analysis import SimTimeSeries, SimResampler", ()),
        ("from repro.libsim.machine_learning import SimLinearRegression", ()),
        ("from repro.libsim.visualization import SimLinePlot, SimFigure", ()),
        (
            f"sales = DataFrame.from_random({n}, 10, seed=11)\n"
            f"simulate_compute({_work(0.35, scale)})",
            (),
        ),
        ("sales['revenue'] = sales.column_array('c0') * 100.0", ()),
        ("series = SimTimeSeries(n=2000, seed=12)", ()),
        ("series_vals = series.values", ()),
        ("lag_1 = series.lag(1)", ()),
        ("lag_7 = series.lag(7)", ()),
        ("diffs = series.difference()", ()),
        ("resampler = SimResampler(factor=7)", ()),
        ("weekly = resampler.apply(series_vals)", ()),
        ("weekly_mean = float(weekly.mean())", ()),
        ("trend = np.polyfit(np.arange(len(weekly)), weekly, 1)", ()),
        ("holidays = DataFrame.from_random(400, 3, seed=13)", ()),
        ("oil = DataFrame.from_random(1200, 2, seed=14)", ()),
        ("oil_mean = float(oil['c0'].mean())", ()),
        ("transactions = sales.head(5000)", ()),
        ("transactions_agg = transactions.groupby_agg('c1', 'revenue', 'mean')", ()),
        ("features = np.column_stack([series_vals[7:], series.lag(7)[7:]])", ()),
        ("targets = series_vals[7:] * 1.01", ()),
        ("mask = ~np.isnan(features).any(axis=1)", ()),
        ("X_ts = features[mask]", ()),
        ("y_ts = targets[mask]", ()),
        (
            # Cell 27: the complex-control-flow cell IPyFlow chokes on.
            "acc = 0.0\n"
            "i = 0\n"
            "while i < 60000:\n"
            "    if i % 2 == 0:\n"
            "        acc += series_vals[i % len(series_vals)]\n"
            "    else:\n"
            "        acc -= 0.5\n"
            "    i += 1",
            (),
        ),
        (
            "model_ts = SimLinearRegression().fit(X_ts, y_ts)\n"
            f"simulate_compute({_work(0.3, scale)})",
            ("model-train", "deterministic"),
        ),
        ("pred_ts = model_ts.predict(X_ts)", ()),
        ("rmse = float(np.sqrt(((pred_ts - y_ts) ** 2).mean()))", ()),
        (
            "model_naive = SimLinearRegression().fit(X_ts[:, :1], y_ts)\n"
            f"simulate_compute({_work(0.2, scale)})",
            ("model-train", "deterministic"),
        ),
        ("pred_naive = model_naive.predict(X_ts[:, :1])", ()),
        ("rmse_naive = float(np.sqrt(((pred_naive - y_ts) ** 2).mean()))", ()),
        ("aux_scores = DataFrame({'model': np.arange(2),"
         " 'rmse': np.array([rmse, rmse_naive])})", ()),
        ("plot_forecast = SimLinePlot(n=64, seed=15)", ("undo-target",)),
        ("plot_forecast.restyle(color='#ff725c')", ("undo-target",)),
        ("fig_overview = SimFigure()", ()),
        ("ax_overview = fig_overview.add_axes()", ()),
        (
            "ax_overview.plot(np.arange(len(weekly)), weekly, 'weekly')",
            ("undo-target",),
        ),
        ("improvement = rmse_naive - rmse", ()),
        ("conclusion = 'lag features help: %.4f' % improvement", ()),
    ]
    assert len(entries) == 41, len(entries)
    return NotebookSpec(
        name="StoreSales",
        topic="TS analysis",
        library="statsmodels-like",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def build_qiskit(scale: float = 1.0) -> NotebookSpec:
    """Quantum computing demo, in-progress (85 cells).

    Tiny data, many small cells, heavy plot re-execution (the paper infers
    cell 140 was re-run ~5 times adjusting a drawing), and — crucially —
    an unpicklable hash object in the state, which fails DumpSession's
    bulk serialization (§7.3) while Kishu skips just that co-variable.
    """
    n_qubits = 2
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        ("import hashlib", ()),
        ("from repro.libsim.visualization import SimFigure, SimAxes", ()),
        (f"N_QUBITS = {n_qubits}", ()),
        # Circuit state is a dict of gate lists; tiny, mutated constantly.
        ("qc_alice = {'gates': [], 'qubits': N_QUBITS}", ()),
        ("qc_bob = {'gates': [], 'qubits': N_QUBITS}", ()),
        ("qc_charlie = {'gates': [], 'qubits': N_QUBITS}", ()),
        # The unserializable state: a running experiment digest.
        ("run_digest = hashlib.sha256(b'experiment-seed')", ()),
        ("statevec = np.zeros(2 ** N_QUBITS, dtype=complex)", ()),
        ("statevec[0] = 1.0", ()),
    ]

    def gate_cells(circuit: str, gates: Sequence[str]) -> List[Entry]:
        produced: List[Entry] = []
        for gate in gates:
            produced.append(
                (f"{circuit}['gates'].append('{gate}')", ())
            )
        return produced

    entries.extend(gate_cells("qc_charlie", ["h 0", "cx 0 1", "barrier"]))
    entries.append(("charlie_depth = len(qc_charlie['gates'])", ()))
    entries.extend(gate_cells("qc_alice", ["x 0", "z 0"]))
    entries.extend(gate_cells("qc_bob", ["cx 1 0", "h 1", "measure"]))
    entries.append(("run_digest.update(str(qc_bob['gates']).encode())", ()))
    # Simulation cells: apply a gate's unitary per cell.
    entries.extend(
        [
            (
                "H = np.array([[1, 1], [1, -1]]) / np.sqrt(2)",
                (),
            ),
            (
                "X_GATE = np.array([[0, 1], [1, 0]])",
                (),
            ),
            (
                "CX = np.eye(4)[[0, 1, 3, 2]]",
                (),
            ),
            ("statevec = np.kron(H, np.eye(2)) @ statevec", ()),
            ("statevec = CX @ statevec", ()),
            ("probs = np.abs(statevec) ** 2", ()),
            ("counts = {format(i, '02b'): float(p)"
             " for i, p in enumerate(probs)}", ()),
        ]
    )
    # Drawing cells with repeated re-execution: the in-progress pattern.
    # Five consecutive re-runs of the bob drawing cell (hidden states).
    for attempt in range(5):
        entries.append(
            (
                "fig_bob = SimFigure()\n"
                "ax_bob = fig_bob.add_axes()\n"
                "ax_bob.plot(np.arange(len(qc_bob['gates'])),"
                " np.arange(len(qc_bob['gates']), dtype=float), 'circuit')",
                ("undo-target",) if attempt == 4 else (),
            )
        )
    # Measurement / analysis loop: granular cells over shots.
    for shot_block in range(8):
        entries.append(
            (
                f"block_{shot_block} = np.random.default_rng({shot_block})"
                ".choice(len(probs), size=64, p=probs / probs.sum())",
                (),
            )
        )
        entries.append(
            (
                f"block_{shot_block}_counts = np.bincount(block_{shot_block},"
                " minlength=len(probs))",
                (),
            )
        )
    entries.append(
        (
            "all_counts = sum(globals()['block_%d_counts' % b]"
            " for b in range(8))",
            (),
        )
    )
    # Entanglement measure cells.
    entries.extend(
        [
            ("fidelity = float(probs[0] + probs[-1])", ()),
            ("run_digest.update(str(fidelity).encode())", ()),
            (
                "model_fit = np.polyfit(np.arange(len(all_counts)),"
                " all_counts.astype(float), 1)",
                ("model-train",),
            ),
            ("fig_counts = SimFigure()", ()),
            ("ax_counts = fig_counts.add_axes()", ()),
            (
                "ax_counts.plot(np.arange(len(all_counts)),"
                " all_counts.astype(float), 'counts')",
                ("undo-target",),
            ),
        ]
    )
    # Dense-coding exercise: many small state-manipulation cells to reach
    # the paper's 85 (the Qiskit notebook is long and granular).
    message_bits = ["00", "01", "10", "11"]
    for bits in message_bits:
        entries.append((f"message = '{bits}'", ()))
        entries.append(
            (
                "encoded = {'00': 'I', '01': 'X', '10': 'Z', '11': 'ZX'}"
                "[message]",
                (),
            )
        )
        entries.append(
            (f"qc_alice['gates'].append('encode {bits}')", ())
        )
    remaining = 85 - (len(entries) + 3)
    for i in range(remaining):
        entries.append(
            (f"note_{i} = 'step {i}: gates=%d' % len(qc_alice['gates'])", ())
        )
    entries.extend(
        [
            ("total_gates = sum(len(c['gates']) for c in"
             " (qc_alice, qc_bob, qc_charlie))", ()),
            ("experiment_log = dict(fidelity=fidelity, gates=total_gates)", ()),
            ("print('fidelity', fidelity)", ()),
        ]
    )
    assert len(entries) == 85, len(entries)
    return NotebookSpec(
        name="Qiskit",
        topic="Quant. Computing",
        library="qiskit-like",
        final=False,
        hidden_states=91,
        out_of_order_cells=1,
        cells=make_cells(entries),
    )


def build_torchgpu(scale: float = 1.0) -> NotebookSpec:
    """Image classification with on-GPU tensors (27 cells).

    The largest-data notebook. Training batches and model weights live in
    the simulated GPU store: OS-level snapshots fail (§7.2, Table 4), and
    checkpointers must go through the tensors' reductions.
    """
    batch = _rows(96, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        (
            "from repro.libsim.deep_learning import "
            "SimTorchTensorGPU, SimSequentialModel, SimOptimizerState, "
            "SimLRScheduler, SimLossHistory",
            (),
        ),
        ("from repro.libsim.computer_vision import SimImageBatch", ()),
        ("from repro.libsim.visualization import SimLinePlot", ()),
        ("device = 'cuda:0'", ()),
        (f"train_batch = SimImageBatch(n={batch}, shape=(96, 96), seed=16)", ()),
        (f"val_batch = SimImageBatch(n={batch // 4}, shape=(96, 96), seed=17)", ()),
        ("train_batch.normalize_()", ()),
        (f"gpu_train = SimTorchTensorGPU(shape=({batch * 4}, 96, 96), seed=18)", ()),
        (f"gpu_val = SimTorchTensorGPU(shape=({batch}, 96, 96), seed=19)", ()),
        ("model = SimSequentialModel(widths=(64, 32, 16, 4), seed=20)", ()),
        ("optimizer = SimOptimizerState(n_params=model.parameter_count())", ()),
        ("scheduler = SimLRScheduler(base_lr=0.05)", ()),
        ("history = SimLossHistory()", ()),
    ]
    for epoch in range(6):
        entries.append(
            (
                f"simulate_compute({_work(0.4, scale)})\n"
                "gpu_train.scale_(0.999)\n"
                "features = gpu_train.cpu().data.reshape(len(gpu_train.cpu().data), -1)[:, :64]\n"
                "logits = model.forward(features)\n"
                f"loss_{epoch} = float(np.abs(logits).mean())\n"
                f"history.record(loss_{epoch})\n"
                "optimizer.step(np.full(optimizer.momentum.shape, 0.01))\n"
                "lr = scheduler.step()",
                ("model-train", "deterministic"),
            )
        )
    entries.extend(
        [
            ("best_loss = history.best()", ()),
            ("val_features = gpu_val.cpu().data.reshape("
             "len(gpu_val.cpu().data), -1)[:, :64]", ()),
            ("val_logits = model.forward(val_features)", ()),
            ("val_loss = float(np.abs(val_logits).mean())", ()),
            ("curve = SimLinePlot(n=30, seed=21)", ("undo-target",)),
            ("curve.restyle(color='#6cc5b0')", ("undo-target",)),
            ("final_metrics = dict(best=best_loss, val=val_loss)", ()),
        ]
    )
    assert len(entries) == 27, len(entries)
    return NotebookSpec(
        name="TorchGPU",
        topic="Image classification",
        library="torch-like",
        final=True,
        hidden_states=0,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


def build_ray(scale: float = 1.0) -> NotebookSpec:
    """Distributed computing tutorial, in-progress (20 cells).

    Datasets live in the simulated remote object store: the second
    off-process notebook CRIU cannot capture (Table 4).
    """
    block_rows = _rows(40_000, scale)
    entries: List[Entry] = [
        (
            "import numpy as np\n"
            "from repro.workloads.compute import simulate_compute",
            (),
        ),
        (
            "from repro.libsim.distributed import "
            "SimRayDataset, SimRayRemoteFunction, SimTaskGraph, SimAccumulator",
            (),
        ),
        ("from repro.libsim.visualization import SimBarChart", ()),
        (
            f"ds = SimRayDataset(n_blocks=4, block_rows={block_rows}, seed=22)\n"
            f"simulate_compute({_work(0.3, scale)})",
            (),
        ),
        ("total_rows = sum(len(b.fetch()) for b in ds.blocks)", ()),
        ("remote_double = SimRayRemoteFunction(name='double')", ()),
        (
            "ds.map_blocks(lambda block: block * 2.0)\n"
            f"simulate_compute({_work(0.25, scale)})",
            (),
        ),
        ("sample = ds.take_all()[:100]", ()),
        ("sample_mean = float(sample.mean())", ()),
        ("graph = SimTaskGraph()", ()),
        ("order = graph.topological_order()", ()),
        ("acc = SimAccumulator()", ()),
        ("acc.add(sample_mean)", ()),
        (
            "ds.map_blocks(lambda block: block - block.mean())",
            ("model-train",),
        ),
        ("centered_mean = float(ds.take_all().mean())", ()),
        ("acc.add(centered_mean)", ()),
        ("chart = SimBarChart(categories=('before', 'after'))", ("undo-target",)),
        ("chart.normalize()", ("undo-target",)),
        ("run_summary = dict(rows=total_rows, mean=centered_mean)", ()),
        ("print(run_summary)", ()),
    ]
    # In-progress: one hidden state from a re-run sample cell.
    assert len(entries) == 20, len(entries)
    return NotebookSpec(
        name="Ray",
        topic="Distrib. Computing",
        library="ray-like",
        final=False,
        hidden_states=1,
        out_of_order_cells=0,
        cells=make_cells(entries),
    )


#: Builders in the paper's Table 2 order.
NOTEBOOK_BUILDERS: Dict[str, Callable[[float], NotebookSpec]] = {
    "Cluster": build_cluster,
    "TPS": build_tps,
    "Sklearn": build_sklearn,
    "HW-LM": build_hw_lm,
    "StoreSales": build_storesales,
    "Qiskit": build_qiskit,
    "TorchGPU": build_torchgpu,
    "Ray": build_ray,
}


def build_all(scale: float = 1.0) -> List[NotebookSpec]:
    return [builder(scale) for builder in NOTEBOOK_BUILDERS.values()]


def build_notebook(name: str, scale: float = 1.0) -> NotebookSpec:
    try:
        return NOTEBOOK_BUILDERS[name](scale)
    except KeyError:
        raise KeyError(
            f"unknown notebook {name!r}; expected one of {sorted(NOTEBOOK_BUILDERS)}"
        ) from None
