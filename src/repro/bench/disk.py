"""Simulated checkpoint storage device.

The paper's experiments write checkpoints to a mounted NFS with measured
519.8 MB/s read and 358.9 MB/s write (§7.1). Our substrate's stores are
in-memory, so without an I/O model every method's data movement would be
memcpy-speed and the *relative* cost of moving a lot of data (CRIU's full
images, DumpSession's full-state blobs) versus a little (Kishu's deltas)
would be understated.

:class:`SimulatedDisk` charges wall-clock time for bytes moved, at the
paper's NFS bandwidths by default. Every checkpoint method charges its
reads and writes through the same disk, so the comparison stays fair.
A ``None`` disk (the default in unit tests) charges nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: The paper's measured NFS bandwidths (§7.1), in bytes/second.
PAPER_NFS_READ_BANDWIDTH = 519.8 * 1024 * 1024
PAPER_NFS_WRITE_BANDWIDTH = 358.9 * 1024 * 1024


@dataclass
class SimulatedDisk:
    """Charges wall-clock time proportional to bytes read/written."""

    read_bandwidth: float = PAPER_NFS_READ_BANDWIDTH
    write_bandwidth: float = PAPER_NFS_WRITE_BANDWIDTH
    #: Totals, for reporting.
    bytes_read: int = 0
    bytes_written: int = 0
    seconds_charged: float = 0.0

    def charge_read(self, n_bytes: int) -> None:
        self.bytes_read += n_bytes
        self._sleep(n_bytes / self.read_bandwidth)

    def charge_write(self, n_bytes: int) -> None:
        self.bytes_written += n_bytes
        self._sleep(n_bytes / self.write_bandwidth)

    def _sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self.seconds_charged += seconds
        time.sleep(seconds)


def paper_nfs_disk() -> SimulatedDisk:
    """A disk matching the paper's NFS testbed."""
    return SimulatedDisk()
