"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in
pytest's captured output (run with ``-s`` or read the benchmark logs).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def human_bytes(n: float) -> str:
    """1536 -> '1.5KB'."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}TB"


def human_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    materialized = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence[Any], ys: Sequence[Any], *, y_format=str
) -> str:
    """One figure series as 'label: x=y, x=y, ...'."""
    points = ", ".join(f"{x}={y_format(y)}" for x, y in zip(xs, ys))
    return f"{label}: {points}"


def speedup(slower: float, faster: float) -> float:
    """How many times faster ``faster`` is than ``slower``."""
    if faster <= 0:
        return float("inf")
    return slower / faster
