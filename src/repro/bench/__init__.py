"""Benchmark harness shared by the `benchmarks/` suite."""

from repro.bench.harness import (
    BranchMeasurement,
    MethodRun,
    UndoMeasurement,
    branch_experiment,
    run_notebook_with_method,
    run_notebook_with_tracker,
    time_call,
    undo_experiment,
)
from repro.bench.report import (
    format_series,
    format_table,
    human_bytes,
    human_seconds,
    speedup,
)

__all__ = [
    "MethodRun",
    "UndoMeasurement",
    "BranchMeasurement",
    "run_notebook_with_method",
    "run_notebook_with_tracker",
    "undo_experiment",
    "branch_experiment",
    "time_call",
    "format_table",
    "format_series",
    "human_bytes",
    "human_seconds",
    "speedup",
]
