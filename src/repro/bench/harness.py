"""Shared measurement harness for the paper's experiments (§7.1).

Implements the paper's methodology: run notebook cells sequentially,
checkpoint after each cell execution, then measure checkout either into
the same kernel (Kishu, Det-replay) or into a fresh kernel (everything
else — those methods cannot restore incrementally).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.baselines.base import CheckoutCost, CheckpointMethod
from repro.kernel.cells import Cell, CellResult
from repro.kernel.kernel import NotebookKernel
from repro.tracking.base import Tracker
from repro.workloads.spec import NotebookSpec

MethodFactory = Callable[[NotebookKernel], CheckpointMethod]
TrackerFactory = Callable[[NotebookKernel], Tracker]


@dataclass
class MethodRun:
    """One notebook executed under one checkpoint method."""

    spec: NotebookSpec
    method: CheckpointMethod
    kernel: NotebookKernel
    notebook_runtime: float
    checkpoint_failures: int

    @property
    def total_checkpoint_seconds(self) -> float:
        return self.method.total_checkpoint_seconds()

    @property
    def total_storage_bytes(self) -> int:
        return self.method.total_storage_bytes()

    @property
    def checkpoint_overhead_fraction(self) -> float:
        if self.notebook_runtime <= 0:
            return 0.0
        return self.total_checkpoint_seconds / self.notebook_runtime


def run_notebook_with_method(
    spec: NotebookSpec, factory: MethodFactory, *, disk=None
) -> MethodRun:
    """Run every cell, checkpointing after each one (§7.1 methodology).

    ``disk`` (a :class:`repro.bench.disk.SimulatedDisk`) charges every
    method the same bandwidth for checkpoint I/O; None charges nothing.
    """
    kernel = NotebookKernel()
    method = factory(kernel)
    method.disk = disk
    failures = 0
    runtime = 0.0
    for cell in spec.cells:
        kernel.user_ns.begin_recording()
        result = kernel.run_cell(cell)
        record = kernel.user_ns.end_recording()
        runtime += result.duration
        cost = method.on_cell_executed(result, record)
        if cost.failed:
            failures += 1
    return MethodRun(
        spec=spec,
        method=method,
        kernel=kernel,
        notebook_runtime=runtime,
        checkpoint_failures=failures,
    )


def run_notebook_with_tracker(
    spec: NotebookSpec, factory: TrackerFactory
) -> Tuple[Tracker, float]:
    """Run every cell under a state tracker; returns (tracker, runtime)."""
    kernel = NotebookKernel()
    tracker = factory(kernel)
    runtime = 0.0
    for cell in spec.cells:
        tracker.before_cell(cell)
        kernel.user_ns.begin_recording()
        result = kernel.run_cell(cell)
        record = kernel.user_ns.end_recording()
        runtime += result.duration
        tracker.after_cell(result, record)
    return tracker, runtime


@dataclass
class UndoMeasurement:
    """One §7.5.1 undo: roll back the state across one cell execution."""

    cell_index: int
    cost: CheckoutCost


def undo_experiment(
    spec: NotebookSpec,
    factory: MethodFactory,
    *,
    max_targets: int = 3,
    disk=None,
) -> Tuple[MethodRun, List[UndoMeasurement]]:
    """Fig 15: undo tagged cells by checking out the pre-execution state.

    Follows the paper's §7.5.1 semantics: the undo happens immediately
    after the target cell executes — the user sees an undesirable result
    and rolls the session back across that one cell. Incremental methods
    are then returned to the post-cell state so the notebook can continue;
    fresh-kernel methods restore into a separate kernel, leaving the
    original session untouched.
    """
    kernel = NotebookKernel()
    method = factory(kernel)
    method.disk = disk
    failures = 0
    runtime = 0.0
    targets = set(spec.undo_target_indices[:max_targets])
    measurements: List[UndoMeasurement] = []

    for index, cell in enumerate(spec.cells):
        kernel.user_ns.begin_recording()
        result = kernel.run_cell(cell)
        record = kernel.user_ns.end_recording()
        runtime += result.duration
        cost = method.on_cell_executed(result, record)
        if cost.failed:
            failures += 1
        if index in targets and index > 0:
            undo_cost = method.checkout(index - 1)
            measurements.append(UndoMeasurement(cell_index=index, cost=undo_cost))
            if method.incremental_checkout and not undo_cost.failed:
                # Redo: return to the post-cell state to continue the run.
                method.checkout(index)

    run = MethodRun(
        spec=spec,
        method=method,
        kernel=kernel,
        notebook_runtime=runtime,
        checkpoint_failures=failures,
    )
    return run, measurements


@dataclass
class BranchMeasurement:
    """One §7.5.2 branch switch."""

    branch_point: int
    first_branch_tip: int
    switch_cost: CheckoutCost


def branch_experiment(
    spec: NotebookSpec, factory: MethodFactory, *, disk=None
) -> Tuple[MethodRun, Optional[BranchMeasurement]]:
    """Fig 16: run to the end, check out to the pre-model state, re-run the
    remainder (second branch), then measure switching back to the first
    branch's tip."""
    run = run_notebook_with_method(spec, factory, disk=disk)
    branch_point = spec.branch_point_index
    if branch_point is None or branch_point < 0:
        return run, None
    first_branch_tip = len(spec.cells) - 1

    if run.method.incremental_checkout:
        run.method.checkout(branch_point)
    # Re-run the post-branch cells, creating the second branch. For
    # fresh-kernel methods the session simply keeps evolving — they have
    # no in-place rollback, matching how a user would proceed with them.
    for cell in spec.cells[branch_point + 1 :]:
        run.kernel.user_ns.begin_recording()
        result = run.kernel.run_cell(cell, raise_on_error=False)
        record = run.kernel.user_ns.end_recording()
        run.method.on_cell_executed(result, record)

    switch_cost = run.method.checkout(first_branch_tip)
    return run, BranchMeasurement(
        branch_point=branch_point,
        first_branch_tip=first_branch_tip,
        switch_cost=switch_cost,
    )


def time_call(func: Callable[[], Any]) -> Tuple[Any, float]:
    """(result, seconds) of one call."""
    started = time.perf_counter()
    result = func()
    return result, time.perf_counter() - started
