"""SessionManager: many concurrent ``KishuSession``s over one shared store.

The manager is the service front door (DESIGN.md §13): it owns the root
store handle, one :class:`~repro.service.queue.CommitQueue`, and the
session registry semantics —

* ``create`` — register a new session (optionally bound to a notebook
  path) and attach a live :class:`~repro.core.session.KishuSession`;
* ``resume`` — blind reconnect: rebuild Friday's checkpoint graph from
  the store on Monday and reattach with full history intact;
* ``attach`` — return the live session or resume it;
* ``detach`` — unhook from the kernel, flush the session's commit lane,
  and mark it dormant in the registry;
* ``rename`` — the rename catastrophe, fixed: session identity is the
  session id, the notebook path is mutable registry metadata, so a
  live session migrates to a new path mid-history without losing it.

Every session gets its own store handle (a
:class:`~repro.service.queue.QueuedStore` unless the queue is disabled),
so concurrent kernels share the backend through the per-session
namespacing in the store schema and the one background writer.

A :class:`~repro.obs.health.HealthEngine` can ride on the manager
(``health=``): it binds to the commit queue for depth sensing and
backpressure actuation, and :meth:`SessionManager.health_tick` runs one
sample–evaluate–actuate pass (callers decide the cadence — the soak
driver ticks after every commit). A disabled engine costs one attribute
check.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.retry import RetryPolicy
from repro.core.session import KishuSession
from repro.core.storage import (
    CheckpointStore,
    InMemoryCheckpointStore,
    SessionRecord,
)
from repro.errors import StorageError
from repro.kernel.kernel import NotebookKernel
from repro.obs import EventType, Observer
from repro.service.queue import CommitQueue

__all__ = ["SessionManager"]


class SessionManager:
    """Fronts many concurrent sessions over one shared checkpoint store."""

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        *,
        observer: Optional[Observer] = None,
        retry: Optional[RetryPolicy] = None,
        queue: bool = True,
        max_batch: int = 8,
        max_depth: int = 256,
        fsync: str = "per_commit",
        session_defaults: Optional[Dict[str, object]] = None,
        health: Optional[object] = None,
    ) -> None:
        self.store = store if store is not None else InMemoryCheckpointStore()
        self.observer = observer if observer is not None else Observer()
        self.store.observer = self.observer
        self.queue: Optional[CommitQueue] = (
            CommitQueue(
                self.store,
                retry=retry,
                observer=self.observer,
                max_batch=max_batch,
                max_depth=max_depth,
                fsync=fsync,
            )
            if queue
            else None
        )
        # Lazy import keeps repro.service importable without obs.health
        # in scope until a caller actually opts into the engine.
        if health is None:
            from repro.obs.health import HealthEngine

            health = HealthEngine.disabled()
        self.health = health
        if getattr(self.health, "enabled", False) and self.queue is not None:
            self.health.attach_queue(self.queue)
        self._session_defaults = dict(session_defaults or {})
        self._sessions: Dict[str, KishuSession] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- store handles ---------------------------------------------------------

    def session_store(
        self, session_id: str, notebook_path: Optional[str] = None
    ) -> CheckpointStore:
        """A session-scoped store handle: write-ahead when the queue is
        on, the raw shared view otherwise."""
        view = self.store.for_session(session_id, notebook_path=notebook_path)
        if self.queue is None:
            return view
        from repro.service.queue import QueuedStore

        return QueuedStore(view, self.queue)

    # -- registry semantics ----------------------------------------------------

    def create(
        self,
        session_id: Optional[str] = None,
        *,
        notebook_path: Optional[str] = None,
        kernel: Optional[NotebookKernel] = None,
        **session_kwargs: object,
    ) -> KishuSession:
        """Register a brand-new session and attach it live."""
        with self._lock:
            self._check_open_locked()
            sid = session_id if session_id is not None else self._next_id_locked()
            if sid in self._sessions:
                raise StorageError(f"session {sid!r} is already attached")
            if session_id is not None and self.store.has_session(sid):
                raise StorageError(
                    f"session {sid!r} already exists; resume it instead"
                )
        store = self.session_store(sid, notebook_path)
        session = KishuSession.init(
            kernel if kernel is not None else NotebookKernel(),
            store=store,
            **{**self._session_defaults, **session_kwargs},  # type: ignore[arg-type]
        )
        with self._lock:
            self._sessions[sid] = session
        self.store.set_session_status(sid, "active")
        self.observer.event(
            EventType.SESSION_REGISTERED, session=sid, notebook_path=notebook_path
        )
        return session

    def resume(
        self,
        session_id: str,
        *,
        kernel: Optional[NotebookKernel] = None,
        **session_kwargs: object,
    ) -> KishuSession:
        """Blind reconnect: rebuild the session's graph from the store and
        reattach to a fresh kernel with history intact."""
        with self._lock:
            self._check_open_locked()
            if session_id in self._sessions:
                raise StorageError(f"session {session_id!r} is already attached")
        if not self.store.has_session(session_id):
            raise StorageError(f"unknown session {session_id!r}")
        store = self.session_store(session_id)
        session = KishuSession.resume(
            kernel if kernel is not None else NotebookKernel(),
            store,
            **{**self._session_defaults, **session_kwargs},  # type: ignore[arg-type]
        )
        with self._lock:
            self._sessions[session_id] = session
        self.store.set_session_status(session_id, "active")
        self.observer.event(
            EventType.SESSION_ATTACHED,
            session=session_id,
            checkpoints=len(store.read_nodes()),
        )
        return session

    def attach(self, session_id: str, **kwargs: object) -> KishuSession:
        """The live session if attached, otherwise :meth:`resume`."""
        with self._lock:
            live = self._sessions.get(session_id)
        if live is not None:
            return live
        return self.resume(session_id, **kwargs)  # type: ignore[arg-type]

    def detach(self, session_id: str) -> None:
        """Unhook from the kernel, flush the commit lane, mark dormant."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise StorageError(f"session {session_id!r} is not attached")
        session.detach()
        try:
            session.store.flush()
        except StorageError:
            pass
        self.store.set_session_status(session_id, "detached")
        self.observer.event(EventType.SESSION_DETACHED, session=session_id)

    def rename(self, session_id: str, notebook_path: str) -> None:
        """Migrate a session — live or dormant — to a new notebook path.

        History rides along: identity is the session id, so nothing in
        the checkpoint graph or store needs rewriting.
        """
        self.store.rename_session(session_id, notebook_path)
        self.observer.event(
            EventType.SESSION_RENAMED, session=session_id, notebook_path=notebook_path
        )

    def get(self, session_id: str) -> Optional[KishuSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def list(self, *, status: Optional[str] = None) -> List[SessionRecord]:
        records = self.store.list_sessions()
        if status is not None:
            records = [record for record in records if record.status == status]
        return records

    def attached_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- fleet health ----------------------------------------------------------

    def health_tick(self) -> List[Dict[str, object]]:
        """One health-engine pass: sample queue depth, evaluate SLOs,
        drive backpressure. No-op (one attribute check) when the engine
        is disabled."""
        if not self.health.enabled:  # type: ignore[attr-defined]
            return []
        return self.health.tick()  # type: ignore[attr-defined]

    # -- barriers --------------------------------------------------------------

    def flush(self) -> None:
        if self.queue is not None:
            self.queue.flush()

    def drain(self) -> None:
        if self.queue is not None:
            self.queue.drain()

    # -- lifecycle -------------------------------------------------------------

    def _check_open_locked(self) -> None:
        if self._closed:
            raise StorageError("session manager is closed")

    def _next_id_locked(self) -> str:
        n = len(self.store.list_sessions()) + 1
        while self.store.has_session(f"s{n}") or f"s{n}" in self._sessions:
            n += 1
        return f"s{n}"

    def close(self) -> None:
        """Detach every live session, stop the writer (draining first),
        and close the shared store."""
        if self._closed:
            return
        self._closed = True
        for session_id in list(self.attached_ids()):
            try:
                self.detach(session_id)
            except StorageError:
                pass
        if self.queue is not None:
            self.queue.stop(drain=True)
        self.store.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
