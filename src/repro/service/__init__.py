"""repro.service — multi-session checkpoint service (DESIGN.md §13).

One shared durable store, many concurrent notebook sessions:

* :class:`~repro.service.manager.SessionManager` — the front door: a
  session registry with create/attach/detach/resume/rename over
  per-session store handles.
* :class:`~repro.service.queue.CommitQueue` — the write-ahead commit
  queue; a single background writer thread owns batching, fsync policy,
  and retry, so a slow or faulting disk never blocks cell execution.
* :class:`~repro.service.queue.QueuedStore` — the session-scoped
  store handle that turns ``commit()`` into "enqueue delta".
"""

from repro.service.manager import SessionManager
from repro.service.queue import CommitQueue, QueuedStore

__all__ = ["CommitQueue", "QueuedStore", "SessionManager"]
