"""Write-ahead commit queue: enqueue deltas; a background writer persists.

``KishuSession.commit`` against a :class:`QueuedStore` becomes "enqueue
delta": the session runs the ordinary begin/write/commit protocol, but
the handle captures the whole checkpoint into one record and hands it to
the :class:`CommitQueue` at commit time. The queue's single background
writer thread owns batching, the fsync policy, and
:class:`~repro.core.retry.RetryPolicy` retry against the real store — a
slow or faulting disk therefore never blocks cell execution, and enqueue
latency stays flat regardless of write latency underneath.

Ordering and durability contract (DESIGN.md §13):

* **Per-session FIFO.** Commits persist in enqueue order through one
  writer, so any interruption leaves a valid *prefix* of each session's
  history — the same invariant the kill-point harness proves for
  synchronous stores.
* **Barriers.** :meth:`CommitQueue.flush` waits until accepted work is
  applied; :meth:`CommitQueue.drain` is flush plus surfacing recorded
  write failures. Checkout drains first so it only ever sees a
  consistent committed prefix.
* **Poisoned lanes.** A commit the store permanently refuses poisons its
  session's lane: the failure is raised once at the next ``drain()``,
  and later enqueues for that session fail synchronously so the
  session's delta-carryover machinery engages. Other sessions are
  unaffected.
* **Writer crashes.** A :class:`~repro.errors.SimulatedCrash` (or any
  fatal error) in the writer marks the queue dead after releasing the
  store lock it may hold; already-committed prefixes remain readable and
  reopening the store recovers exactly as after a process crash.
* **Adaptive backpressure (DESIGN.md §16).** Beyond the fixed
  ``max_depth`` cap, the queue exposes a three-level pressure ladder —
  ``accept`` → ``degrade_fsync`` (per-commit fsync relaxes to
  per-batch, trading durability granularity for drain throughput) →
  ``block`` (the effective cap drops to a configured ceiling so
  enqueue blocks until the writer catches up). The health engine's
  :class:`~repro.obs.health.BackpressureController` walks the ladder
  from sustained SLO burn; each transition emits a
  ``backpressure_changed`` event.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.covariable import CoVarKey
from repro.core.retry import RetryPolicy
from repro.core.storage import (
    CheckpointStore,
    RecoveryReport,
    SessionRecord,
    StoredNode,
    StoredPayload,
)
from repro.errors import PermanentStorageError, StorageError
from repro.obs import COUNT_BUCKETS, LATENCY_BUCKETS, EventType, NO_OBSERVER, Observer

__all__ = ["CommitQueue", "QueuedStore", "PRESSURE_LEVELS"]

_FSYNC_POLICIES = ("per_commit", "per_batch", "off")

#: The adaptive backpressure ladder, mildest first.
PRESSURE_LEVELS = ("accept", "degrade_fsync", "block")


class _QueuedCommit:
    """One captured checkpoint waiting for the background writer."""

    __slots__ = ("session_id", "node", "payloads")

    def __init__(
        self, session_id: str, node: StoredNode, payloads: Tuple[StoredPayload, ...]
    ) -> None:
        self.session_id = session_id
        self.node = node
        self.payloads = payloads


class CommitQueue:
    """The write-ahead queue and its single background writer thread."""

    #: Ladder exposed for controllers (see module docstring).
    PRESSURE_LEVELS = PRESSURE_LEVELS

    def __init__(
        self,
        store: CheckpointStore,
        *,
        retry: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
        max_batch: int = 8,
        max_depth: int = 256,
        fsync: str = "per_commit",
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}")
        self._store = store
        self._retry = retry if retry is not None else RetryPolicy()
        self._observer = observer if observer is not None else NO_OBSERVER
        self._max_batch = max_batch
        self._max_depth = max_depth
        self._fsync = fsync
        self._views: Dict[str, CheckpointStore] = {}
        self._active_view: Optional[CheckpointStore] = None

        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)  # writer waits here
        self._progress = threading.Condition(self._lock)  # flushers wait here
        self._pending: Deque[_QueuedCommit] = deque()
        # The batch the writer is applying. Records move from ``_pending``
        # into here under ONE lock acquisition (``_next_batch``) and leave
        # one by one as they are written or recorded failed — so a commit
        # is visible to ``flush()`` at every instant of its life. After a
        # writer crash the unapplied remainder stays here on purpose:
        # flush must not report those records as applied.
        self._in_flight: List[_QueuedCommit] = []
        self._poisoned: Dict[str, str] = {}
        self._failures: Dict[str, List[Tuple[str, str]]] = {}
        self._crashed: Optional[str] = None
        self._stopped = False

        self._enqueued = 0
        self._written = 0
        self._batches = 0
        self._write_failures = 0
        self._max_depth_seen = 0
        self._pressure = "accept"
        self._pressure_ceiling: Optional[int] = None

        self._writer = threading.Thread(
            target=self._run, name="repro-commit-writer", daemon=True
        )
        self._writer.start()

    # -- producer side ---------------------------------------------------------

    def check_writable(self, session_id: str) -> None:
        """Raise if this session's lane cannot accept a commit — called at
        ``begin_checkpoint`` so a session fails fast into delta carryover
        instead of building a checkpoint the queue will refuse."""
        with self._lock:
            self._check_writable_locked(session_id)

    def _check_writable_locked(self, session_id: str) -> None:
        if self._crashed is not None:
            raise StorageError(f"commit queue writer crashed: {self._crashed}")
        if self._stopped:
            raise StorageError("commit queue is stopped")
        error = self._poisoned.get(session_id)
        if error is not None:
            raise PermanentStorageError(
                f"commit lane for session {session_id!r} poisoned by an"
                f" earlier failed write: {error}"
            )

    def enqueue(
        self,
        session_id: str,
        node: StoredNode,
        payloads: List[StoredPayload],
    ) -> None:
        """Accept one checkpoint for asynchronous persistence. Returns as
        soon as the record is queued; blocks only when the queue is at
        ``max_depth`` (bounded-memory backpressure)."""
        record = _QueuedCommit(session_id, node, tuple(payloads))
        with self._lock:
            self._check_writable_locked(session_id)
            while (
                len(self._pending) >= self._effective_cap_locked()
                and self._crashed is None
                and not self._stopped
            ):
                self._progress.wait(0.05)
            self._check_writable_locked(session_id)
            self._pending.append(record)
            depth = len(self._pending)
            self._enqueued += 1
            if depth > self._max_depth_seen:
                self._max_depth_seen = depth
            self._wakeup.notify()
        self._observer.event(
            EventType.COMMIT_ENQUEUED,
            node=node.node_id,
            session=session_id,
            depth=depth,
        )
        self._observer.gauge("service.queue_depth", depth)

    def flush(
        self, session_id: Optional[str] = None, *, timeout: Optional[float] = None
    ) -> None:
        """Barrier: block until every accepted commit (for one session, or
        all) has been applied or recorded as failed. Returns — rather than
        hanging — if the writer has crashed; ``drain`` reports that."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._outstanding_locked(session_id) and self._crashed is None:
                if deadline is not None and time.monotonic() >= deadline:
                    raise StorageError(
                        f"flush timed out after {timeout}s with"
                        f" {len(self._pending)} commit(s) still queued"
                    )
                self._progress.wait(0.05)

    def drain(self, session_id: Optional[str] = None) -> None:
        """:meth:`flush`, then raise any recorded write failures (each is
        reported exactly once) or the writer's crash."""
        self.flush(session_id)
        with self._lock:
            failures: List[Tuple[str, str, str]] = []
            if session_id is None:
                for sid in sorted(self._failures):
                    failures.extend(
                        (sid, node_id, error)
                        for node_id, error in self._failures[sid]
                    )
                self._failures.clear()
            else:
                failures.extend(
                    (session_id, node_id, error)
                    for node_id, error in self._failures.pop(session_id, [])
                )
            crashed = self._crashed
        if failures:
            detail = "; ".join(
                f"{sid}/{node_id}: {error}" for sid, node_id, error in failures
            )
            raise StorageError(
                f"{len(failures)} queued commit(s) failed to persist: {detail}"
            )
        if crashed is not None:
            raise StorageError(f"commit queue writer crashed: {crashed}")

    def _outstanding_locked(self, session_id: Optional[str]) -> bool:
        if session_id is None:
            return bool(self._pending) or bool(self._in_flight)
        return any(
            record.session_id == session_id
            for record in (*self._pending, *self._in_flight)
        )

    def depth(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._in_flight)

    # -- adaptive backpressure -------------------------------------------------

    def _effective_cap_locked(self) -> int:
        """The enqueue cap at the current pressure level. ``block``
        lowers the fixed ``max_depth`` cap to the configured ceiling;
        the milder levels keep it."""
        if self._pressure == "block" and self._pressure_ceiling is not None:
            return min(self._max_depth, self._pressure_ceiling)
        return self._max_depth

    def _effective_fsync_locked(self) -> str:
        """Under pressure, per-commit fsync relaxes to per-batch so the
        writer drains faster; explicit ``per_batch``/``off`` policies
        are already at least that relaxed and stay untouched."""
        if self._pressure != "accept" and self._fsync == "per_commit":
            return "per_batch"
        return self._fsync

    @property
    def pressure(self) -> str:
        with self._lock:
            return self._pressure

    def set_pressure(
        self,
        level: str,
        *,
        ceiling: Optional[int] = None,
        reason: str = "",
    ) -> None:
        """Move the queue to a backpressure level (see module docstring).

        Idempotent per level; every actual transition emits a
        ``backpressure_changed`` event and updates the
        ``service.backpressure`` gauge (the ladder index). Waiting
        producers are woken so a *relaxed* cap admits them promptly.
        """
        if level not in PRESSURE_LEVELS:
            raise ValueError(
                f"pressure must be one of {PRESSURE_LEVELS}, got {level!r}"
            )
        if ceiling is not None and ceiling < 1:
            raise ValueError("ceiling must be >= 1")
        with self._lock:
            previous = self._pressure
            if ceiling is not None:
                self._pressure_ceiling = ceiling
            if level == previous:
                return
            self._pressure = level
            self._progress.notify_all()
            self._wakeup.notify()
        self._observer.event(
            EventType.BACKPRESSURE_CHANGED,
            level=level,
            previous=previous,
            reason=reason,
        )
        self._observer.gauge(
            "service.backpressure", PRESSURE_LEVELS.index(level)
        )

    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._crashed is not None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enqueued": self._enqueued,
                "written": self._written,
                "batches": self._batches,
                "write_failures": self._write_failures,
                "max_depth": self._max_depth_seen,
                "poisoned_sessions": sorted(self._poisoned),
                "crashed": self._crashed is not None,
                "pressure": self._pressure,
            }

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the writer; with ``drain`` (default) the queue empties
        first so no accepted commit is lost on a clean shutdown."""
        if drain:
            try:
                self.flush(timeout=timeout)
            except StorageError:
                pass
        with self._lock:
            self._stopped = True
            self._wakeup.notify_all()
            self._progress.notify_all()
        self._writer.join(timeout=timeout)

    # -- background writer -----------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                self._write_batch(batch)
        except BaseException as exc:  # SimulatedCrash included, by design
            self._on_writer_crash(exc)

    def _next_batch(self) -> Optional[List[_QueuedCommit]]:
        with self._lock:
            while not self._pending and not self._stopped:
                self._wakeup.wait()
            if not self._pending:
                return None
            batch = []
            while self._pending and len(batch) < self._max_batch:
                batch.append(self._pending.popleft())
            # Same lock acquisition as the pop: no instant exists where a
            # record is in neither _pending nor _in_flight.
            self._in_flight = list(batch)
            return batch

    def _write_batch(self, batch: List[_QueuedCommit]) -> None:
        written = 0
        with self._lock:
            fsync = self._effective_fsync_locked()
        for record in batch:
            try:
                if record.session_id in self._poisoned:
                    # FIFO integrity: once a lane lost a commit, later
                    # commits of that session would orphan themselves on
                    # the missing parent — record them as failed too.
                    raise PermanentStorageError(
                        f"lane poisoned: {self._poisoned[record.session_id]}"
                    )
                started = time.perf_counter()
                self._write_record(record)
                elapsed = time.perf_counter() - started
                written += 1
                if fsync == "per_commit":
                    self._try_sync()
                with self._lock:
                    self._written += 1
                    self._in_flight.remove(record)
                    self._progress.notify_all()
                self._observer.observe(
                    "service.write_latency_seconds", elapsed, LATENCY_BUCKETS
                )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    self._poisoned.setdefault(record.session_id, error)
                    self._failures.setdefault(record.session_id, []).append(
                        (record.node.node_id, error)
                    )
                    self._write_failures += 1
                    self._in_flight.remove(record)
                    self._progress.notify_all()
                self._observer.event(
                    EventType.QUEUE_WRITE_FAILED,
                    node=record.node.node_id,
                    session=record.session_id,
                    error=error,
                )
            # BaseException (SimulatedCrash) escapes with this record (and
            # the batch remainder) still in _in_flight: flush() must not
            # report them as applied.
        if written and fsync == "per_batch":
            self._try_sync()
        with self._lock:
            depth = len(self._pending)
        self._observer.event(
            EventType.QUEUE_BATCH_WRITTEN,
            batch_size=len(batch),
            sessions=sorted({record.session_id for record in batch}),
        )
        self._observer.observe("service.batch_size", len(batch), COUNT_BUCKETS)
        self._observer.gauge("service.queue_depth", depth)
        with self._lock:
            self._batches += 1

    def _write_record(self, record: _QueuedCommit) -> None:
        """Persist one checkpoint with the same protocol, retry, and
        tombstone degradation the synchronous session path uses."""
        view = self._view(record.session_id)
        self._active_view = view
        node = record.node
        try:
            self._retry.run(lambda: view.begin_checkpoint(node.node_id))
            for payload in record.payloads:
                self._write_payload_or_tombstone(view, payload)
            self._retry.run(lambda: view.write_node(node))
            self._retry.run(lambda: view.commit_checkpoint(node.node_id))
        except Exception:
            try:
                view.rollback_checkpoint(node.node_id)
            except Exception:
                pass  # recovery-on-open sweeps whatever rollback couldn't
            raise

    def _write_payload_or_tombstone(
        self, view: CheckpointStore, payload: StoredPayload
    ) -> None:
        try:
            self._retry.run(lambda: view.write_payload(payload))
        except StorageError:
            if payload.data is None:
                raise  # it already was a tombstone; nothing left to shed
            tombstone = StoredPayload(
                node_id=payload.node_id,
                key=payload.key,
                data=None,
                serializer=None,
            )
            self._retry.run(lambda: view.write_payload(tombstone))
            self._observer.event(
                EventType.TOMBSTONE_DEGRADED,
                node=payload.node_id,
                covariable=sorted(payload.key),
                bytes_dropped=payload.size_bytes,
            )

    def _view(self, session_id: str) -> CheckpointStore:
        view = self._views.get(session_id)
        if view is None:
            view = self._store.for_session(session_id)
            self._views[session_id] = view
        return view

    def _try_sync(self) -> None:
        try:
            self._store.sync()
        except Exception:
            pass  # durability barrier is best-effort on faulting disks

    def _on_writer_crash(self, exc: BaseException) -> None:
        error = f"{type(exc).__name__}: {exc}"
        # Lock hygiene before anything else: the dying writer may hold
        # the store's checkpoint lock; releasing it (with rollback) keeps
        # the rest of the process deadlock-free while leaving durable
        # state identical to a real process crash.
        view = self._active_view
        try:
            (view if view is not None else self._store).release_crashed_checkpoint()
        except Exception:
            pass
        with self._lock:
            self._crashed = error
            pending = len(self._pending) + len(self._in_flight)
            self._wakeup.notify_all()
            self._progress.notify_all()
        self._observer.event(
            EventType.QUEUE_WRITER_CRASHED, error=error, pending=pending
        )
        self._observer.count("service.writer_crashes")


class QueuedStore(CheckpointStore):
    """Session-scoped write-ahead handle over a shared store.

    The checkpoint protocol captures writes locally and enqueues the
    whole checkpoint at ``commit_checkpoint`` — so the session's commit
    path returns at memory speed. Reads flush the session's lane first,
    so a session always observes its own accepted commits
    (read-your-writes); checkout calls :meth:`drain` for the stronger
    "consistent committed prefix or an error" guarantee.
    """

    def __init__(self, view: CheckpointStore, queue: CommitQueue) -> None:
        self._view = view
        self._queue = queue
        self.session_id = view.session_id
        self._observer = view.observer
        self._txn_node: Optional[str] = None
        self._staged_node: Optional[StoredNode] = None
        self._staged_payloads: List[StoredPayload] = []
        self.last_recovery = view.last_recovery

    # The session rebinds ``store.observer``; forward it to the durable
    # view so recovery scans and write-side events publish there too.
    @property
    def observer(self) -> Observer:  # type: ignore[override]
        return self._observer

    @observer.setter
    def observer(self, value: Observer) -> None:
        self._observer = value
        self._view.observer = value

    # -- atomic checkpoint protocol (capture side) -----------------------------

    def begin_checkpoint(self, node_id: str) -> None:
        if self._txn_node is not None:
            raise StorageError(
                f"checkpoint {self._txn_node!r} already in progress"
            )
        self._queue.check_writable(self.session_id)
        self._txn_node = node_id
        self._staged_node = None
        self._staged_payloads = []

    def commit_checkpoint(self, node_id: str) -> None:
        if self._txn_node != node_id:
            raise StorageError(
                f"commit_checkpoint({node_id!r}) without matching begin"
            )
        if self._staged_node is None:
            raise StorageError(
                f"checkpoint {node_id!r} has no node row to commit"
            )
        node, payloads = self._staged_node, self._staged_payloads
        self._clear_stage()
        self._queue.enqueue(self.session_id, node, payloads)

    def rollback_checkpoint(self, node_id: str) -> None:
        self._clear_stage()

    def release_crashed_checkpoint(self) -> None:
        self._clear_stage()

    def _clear_stage(self) -> None:
        self._txn_node = None
        self._staged_node = None
        self._staged_payloads = []

    @property
    def in_checkpoint(self) -> bool:
        return self._txn_node is not None

    # -- writes ----------------------------------------------------------------

    def write_node(self, node: StoredNode) -> None:
        if self._txn_node is not None:
            self._staged_node = node
            return
        # Standalone writes stay ordered behind queued commits.
        self._queue.flush(self.session_id)
        self._view.write_node(node)

    def write_payload(self, payload: StoredPayload) -> None:
        if self._txn_node is not None:
            self._staged_payloads.append(payload)
            return
        self._queue.flush(self.session_id)
        self._view.write_payload(payload)

    # -- reads (behind the barrier) --------------------------------------------

    def read_nodes(self) -> List[StoredNode]:
        self._queue.flush(self.session_id)
        return self._view.read_nodes()

    def read_payload(self, node_id: str, key: CoVarKey) -> StoredPayload:
        self._queue.flush(self.session_id)
        return self._view.read_payload(node_id, key)

    def payloads_of(self, node_id: str) -> List[StoredPayload]:
        self._queue.flush(self.session_id)
        return self._view.payloads_of(node_id)

    def total_payload_bytes(self) -> int:
        self._queue.flush(self.session_id)
        return self._view.total_payload_bytes()

    def recover(self) -> RecoveryReport:
        self._queue.flush(self.session_id)
        report = self._view.recover()
        self.last_recovery = self._view.last_recovery
        return report

    # -- barriers --------------------------------------------------------------

    def flush(self) -> None:
        self._queue.flush(self.session_id)

    def drain(self) -> None:
        self._queue.drain(self.session_id)

    def sync(self) -> None:
        self._view.sync()

    # -- session registry (delegated) ------------------------------------------

    def for_session(
        self, session_id: str, *, notebook_path: Optional[str] = None
    ) -> "QueuedStore":
        return QueuedStore(
            self._view.for_session(session_id, notebook_path=notebook_path),
            self._queue,
        )

    def list_sessions(self) -> List[SessionRecord]:
        return self._view.list_sessions()

    def register_session(
        self,
        session_id: str,
        notebook_path: Optional[str] = None,
        *,
        status: str = "detached",
    ) -> None:
        self._view.register_session(session_id, notebook_path, status=status)

    def rename_session(self, session_id: str, notebook_path: str) -> None:
        self._view.rename_session(session_id, notebook_path)

    def set_session_status(self, session_id: str, status: str) -> None:
        self._view.set_session_status(session_id, status)

    def has_session(self, session_id: str) -> bool:
        return self._view.has_session(session_id)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush this session's lane; the shared backend stays open (the
        service owns it). An open capture is rolled back, never abandoned."""
        if self._txn_node is not None:
            open_node = self._txn_node
            self._clear_stage()
            self._emit_rollback_on_close(open_node, self.session_id)
        try:
            self._queue.flush(self.session_id)
        except StorageError:
            pass
