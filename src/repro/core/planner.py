"""Checkout planning: turning a state difference into load/delete work.

The planner sits between the checkpoint graph's Definition-6 classification
and the state loader: it resolves, for every diverged co-variable of the
target state, whether its payload was stored (load it) or skipped at
checkpoint time (schedule fallback recomputation), and estimates the bytes
that will move — the quantity incremental checkout minimizes (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.covariable import CoVarKey
from repro.core.graph import CheckpointGraph, StateDifference


@dataclass(frozen=True)
class PlannedLoad:
    """One diverged co-variable scheduled for restoration."""

    key: CoVarKey
    node_id: str
    stored: bool
    size_bytes: int


@dataclass(frozen=True)
class CheckoutPlan:
    """Everything the state loader must do to reach the target state."""

    current_id: str
    target_id: str
    lca_id: str
    identical: frozenset
    loads: Tuple[PlannedLoad, ...]
    delete_names: frozenset

    @property
    def bytes_to_load(self) -> int:
        return sum(load.size_bytes for load in self.loads if load.stored)

    @property
    def needs_recomputation(self) -> bool:
        return any(not load.stored for load in self.loads)

    @property
    def is_noop(self) -> bool:
        return not self.loads and not self.delete_names


class CheckoutPlanner:
    """Builds checkout plans from the checkpoint graph."""

    def __init__(self, graph: CheckpointGraph) -> None:
        self.graph = graph

    def plan(self, current_id: str, target_id: str) -> CheckoutPlan:
        difference: StateDifference = self.graph.state_difference(
            current_id, target_id
        )
        loads: List[PlannedLoad] = []
        for key, node_id in difference.to_load:
            info = self.graph.get(node_id).updated.get(key)
            if info is None:
                # Defensive: the state metadata references a version the
                # node does not record — treat as unstored so the restorer
                # attempts recomputation rather than failing outright.
                loads.append(
                    PlannedLoad(key=key, node_id=node_id, stored=False, size_bytes=0)
                )
            else:
                loads.append(
                    PlannedLoad(
                        key=key,
                        node_id=node_id,
                        stored=info.stored,
                        size_bytes=info.size_bytes,
                    )
                )
        return CheckoutPlan(
            current_id=current_id,
            target_id=target_id,
            lca_id=difference.lca_id,
            identical=difference.identical,
            loads=tuple(loads),
            delete_names=difference.to_delete_names,
        )
