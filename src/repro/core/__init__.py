"""Core Kishu machinery: VarGraphs, co-variables, delta detection, the
checkpoint graph, incremental checkout, and fallback recomputation."""

from repro.core.covariable import (
    CoVariable,
    CoVariablePool,
    CoVarKey,
    covar_key,
    group_into_components,
)
from repro.core.delta import DeltaDetector, StateDelta, fold_deltas
from repro.core.graph import (
    CheckpointGraph,
    CheckpointNode,
    PayloadInfo,
    ROOT_ID,
    StateDifference,
)
from repro.core.hashing import digest_array, digest_bytes, fnv1a64
from repro.core.objectwalk import DEFAULT_POLICY, TraversalPolicy, Visit
from repro.core.planner import CheckoutPlan, CheckoutPlanner, PlannedLoad
from repro.core.restore import CheckoutReport, DataRestorer, StateLoader
from repro.core.retry import NO_RETRY, RetryPolicy
from repro.core.rules import ReadOnlyCellAnalyzer
from repro.core.serialization import (
    Blocklist,
    FallbackPickler,
    PrimaryPickler,
    SerializerChain,
)
from repro.core.session import CellCheckpointMetrics, KishuSession, LogEntry
from repro.core.storage import (
    CheckpointStore,
    InMemoryCheckpointStore,
    RecoveryReport,
    SQLiteCheckpointStore,
    StoredNode,
    StoredPayload,
)
from repro.core.vargraph import (
    GraphNode,
    SubtreeCache,
    VarGraph,
    VarGraphBuilder,
    graphs_equal,
)
from repro.core.versioning import SessionState, VersionedCoVariable

__all__ = [
    "CoVariable",
    "CoVariablePool",
    "CoVarKey",
    "covar_key",
    "group_into_components",
    "DeltaDetector",
    "StateDelta",
    "fold_deltas",
    "CheckpointGraph",
    "CheckpointNode",
    "PayloadInfo",
    "ROOT_ID",
    "StateDifference",
    "digest_array",
    "digest_bytes",
    "fnv1a64",
    "DEFAULT_POLICY",
    "TraversalPolicy",
    "Visit",
    "CheckoutPlan",
    "CheckoutPlanner",
    "PlannedLoad",
    "CheckoutReport",
    "DataRestorer",
    "StateLoader",
    "NO_RETRY",
    "RetryPolicy",
    "ReadOnlyCellAnalyzer",
    "Blocklist",
    "FallbackPickler",
    "PrimaryPickler",
    "SerializerChain",
    "CellCheckpointMetrics",
    "KishuSession",
    "LogEntry",
    "CheckpointStore",
    "InMemoryCheckpointStore",
    "RecoveryReport",
    "SQLiteCheckpointStore",
    "StoredNode",
    "StoredPayload",
    "GraphNode",
    "SubtreeCache",
    "VarGraph",
    "VarGraphBuilder",
    "graphs_equal",
    "SessionState",
    "VersionedCoVariable",
]
