"""Reachability traversal of arbitrary Python objects.

This module answers one question for the VarGraph builder (§4.2 of the
paper): *given an object, what are its children and how should its node be
summarised?* Reachability is defined reference-wise, matching the paper's
§4.1 — subscripting (containers), class members (``__dict__`` /
``__slots__``), and, as a generic fallback, the object's pickle reduction
(§6.1: "object ``y`` is reachable from ``x`` if ``pickle(x)`` includes
``y``").

Three kinds of nodes come out of a visit:

* **primitive** — immutable leaf (int, str, ...). Carries its value.
  Primitives do not participate in co-variable connectivity: CPython interns
  small ints and strings, so id-sharing of immutables is not aliasing.
* **array** — array-like leaf summarised by a content digest (the paper's
  hash fast path, §6.2).
* **composite** — traversed object with children.
* **opaque** — object that cannot be traversed into (e.g. generators, §4.2);
  conservatively assumed updated whenever accessed.
"""

from __future__ import annotations

import marshal
import re
import types
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.hashing import digest_array, digest_bytes

PRIMITIVE_TYPES = (type(None), bool, int, float, complex, str, bytes)

#: Types that can never be traversed into and have no stable value: their
#: presence makes the whole graph opaque (assumed updated on access).
OPAQUE_TYPES = (
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
)


@dataclass(frozen=True)
class Visit:
    """Result of visiting one object during traversal.

    Attributes:
        kind: "primitive", "array", "composite", or "opaque".
        value: Primitive value or digest for leaf kinds, else None.
        children: Child objects, in deterministic order, for composites.
    """

    kind: str
    value: Any = None
    children: Tuple[Any, ...] = ()


#: A handler takes an object and returns a Visit, or None to decline.
Handler = Callable[[Any], Optional[Visit]]


class TraversalPolicy:
    """Pluggable per-type traversal rules.

    The default policy implements the paper's behaviour for the Python data
    model; library-specific fast paths (e.g. hashing tensors instead of
    walking them) register themselves with :meth:`register`.

    Policies layer: a policy constructed with a ``parent`` consults its own
    handlers first and falls back to the parent chain. Builders walk with a
    private layer over the shared :data:`DEFAULT_POLICY`, so
    :meth:`register` on a builder's policy never leaks into other sessions
    (or test runs) sharing the process.
    """

    def __init__(self, parent: Optional["TraversalPolicy"] = None) -> None:
        self._handlers: List[Tuple[type, Handler]] = []
        self.parent = parent

    def register(self, type_: type, handler: Handler) -> None:
        """Register a handler consulted for instances of ``type_``.

        Handlers registered later win over earlier ones, so callers can
        override defaults. Layered handlers win over the parent chain's.
        """
        self._handlers.insert(0, (type_, handler))

    def layer(self) -> "TraversalPolicy":
        """A fresh policy that inherits this one's rules without sharing
        its mutable handler list."""
        return TraversalPolicy(parent=self)

    def visit(self, obj: Any) -> Visit:
        """Classify one object and enumerate its children."""
        visit = self._handled(obj)
        if visit is not None:
            return visit
        return self._default_visit(obj)

    def _handled(self, obj: Any) -> Optional[Visit]:
        for type_, handler in self._handlers:
            if isinstance(obj, type_):
                visit = handler(obj)
                if visit is not None:
                    return visit
        if self.parent is not None:
            return self.parent._handled(obj)
        return None

    # -- default rules -------------------------------------------------------

    def _default_visit(self, obj: Any) -> Visit:
        if isinstance(obj, PRIMITIVE_TYPES):
            return Visit(kind="primitive", value=obj)
        if isinstance(obj, OPAQUE_TYPES):
            return Visit(kind="opaque")
        if isinstance(obj, np.ndarray):
            return Visit(kind="array", value=digest_array(obj))
        if isinstance(obj, bytearray):
            return Visit(kind="array", value=digest_bytes(obj))
        if isinstance(obj, memoryview):
            return Visit(kind="array", value=digest_bytes(obj.tobytes()))
        if isinstance(obj, dict):
            return Visit(kind="composite", children=_dict_children(obj))
        if isinstance(obj, (list, tuple)):
            return Visit(kind="composite", children=tuple(obj))
        if isinstance(obj, (set, frozenset)):
            return Visit(kind="composite", children=_set_children(obj))
        if isinstance(obj, (type, types.ModuleType)):
            # Classes and modules are code, not session data: imported
            # modules are restored by re-import, and walking into a module's
            # globals would pull the entire library into every graph.
            return Visit(kind="primitive", value=_code_identity(obj))
        if isinstance(obj, (types.FunctionType, types.MethodType, types.BuiltinFunctionType)):
            return _function_visit(obj)
        if isinstance(obj, range):
            return Visit(kind="primitive", value=(obj.start, obj.stop, obj.step))
        return _instance_visit(obj)


def _dict_children(obj: dict) -> Tuple[Any, ...]:
    children: List[Any] = []
    for key, value in obj.items():
        children.append(key)
        children.append(value)
    return tuple(children)


def _set_children(obj: Iterable[Any]) -> Tuple[Any, ...]:
    # Sets have no stable order; sort by a stable per-element key so graph
    # comparison does not flag a re-hash as a modification.
    return tuple(sorted(obj, key=_set_sort_key))


_HEX_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _set_sort_key(element: Any) -> Tuple[str, str]:
    return (type(element).__qualname__, _stable_repr(element))


def _stable_repr(element: Any) -> str:
    """An address-free, process-stable ordering string for set elements.

    ``repr`` of a default-repr object embeds its memory address, which
    differs across processes (and across equal runs), so raw ``repr`` makes
    set-child ordering — and hence graph digests — nondeterministic.
    Primitives and their immutable containers have value-determined reprs;
    everything else has hex addresses masked out. Two distinct elements
    with identical masked reprs tie, which only perturbs their relative
    order, never the set's membership digest.
    """
    if isinstance(element, PRIMITIVE_TYPES):
        return repr(element)
    if isinstance(element, tuple):
        return "(" + ",".join(_stable_repr(item) for item in element) + ")"
    if isinstance(element, frozenset):
        return "{" + ",".join(sorted(_stable_repr(item) for item in element)) + "}"
    return _HEX_ADDRESS.sub("0x", repr(element))


def _code_identity(obj: Any) -> str:
    module = getattr(obj, "__module__", "")
    name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}.{name}"


def _function_visit(obj: Any) -> Visit:
    """Functions: identity is their code; closures are reachable children.

    A closure cell can alias mutable session state, so closure contents
    participate in connectivity; default values likewise.
    """
    children: List[Any] = []
    closure = getattr(obj, "__closure__", None)
    if closure:
        children.extend(cell.cell_contents for cell in closure)
    defaults = getattr(obj, "__defaults__", None)
    if defaults:
        children.extend(defaults)
    bound_self = getattr(obj, "__self__", None)
    if bound_self is not None and not isinstance(bound_self, types.ModuleType):
        children.append(bound_self)
    if not children:
        identity = (_code_identity(obj), _code_digest(getattr(obj, "__code__", None)))
        return Visit(kind="primitive", value=identity)
    return Visit(kind="composite", children=tuple(children))


def _code_digest(code: Optional[types.CodeType]) -> int:
    """Content digest of a code object — process-stable function identity.

    ``id(code)`` (the former identity) is a memory address: it differs
    across processes for identical code and made function-node digests
    depend on allocation order. Marshal serializes the full code object
    (bytecode, constants, nested code) deterministically for a given
    interpreter version, so redefining an *identical* function is no longer
    reported as a modification while any body change still is.
    """
    if code is None:
        return 0
    try:
        return digest_bytes(marshal.dumps(code))
    except ValueError:
        return digest_bytes(code.co_code)


def _instance_visit(obj: Any) -> Visit:
    """Generic instances: attributes via ``__dict__`` / ``__slots__``,
    falling back to the pickle reduction, else opaque."""
    children: List[Any] = []
    instance_dict = getattr(obj, "__dict__", None)
    if isinstance(instance_dict, dict):
        children.extend(_dict_children(instance_dict))
    for slot_value in _slot_values(obj):
        children.append(slot_value)
    if children:
        return Visit(kind="composite", children=tuple(children))
    reduction_visit = _reduce_visit(obj)
    if reduction_visit is not None:
        return reduction_visit
    return Visit(kind="opaque")


def _slot_values(obj: Any) -> List[Any]:
    values: List[Any] = []
    for klass in type(obj).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots:
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                values.append(getattr(obj, slot))
            except AttributeError:
                continue
    return values


def _reduce_visit(obj: Any) -> Optional[Visit]:
    """Traverse an object through its pickle reduction (§6.1).

    The reduction's constructor arguments and state are exactly the objects
    a checkpoint would persist, so they are the reachable children.
    """
    try:
        reduction = obj.__reduce_ex__(2)
    except Exception:
        return None
    if isinstance(reduction, str):
        return Visit(kind="primitive", value=reduction)
    if not isinstance(reduction, tuple) or len(reduction) < 2:
        return None
    children: List[Any] = []
    args = reduction[1]
    if isinstance(args, tuple):
        children.extend(args)
    if len(reduction) > 2 and reduction[2] is not None:
        children.append(reduction[2])
    return Visit(kind="composite", children=tuple(children))


#: Shared default policy instance. Library fast paths (e.g. libsim tensors)
#: register on this at import time.
DEFAULT_POLICY = TraversalPolicy()
