"""Co-variable granularity state delta detection (§4.2–4.3 of the paper).

After each cell execution the :class:`DeltaDetector`:

1. takes the access record captured by the patched namespace,
2. identifies the *possibly updated* co-variables — those with at least one
   accessed member (Lemma 1 guarantees all others were definitely not
   updated),
3. re-generates VarGraphs for the members of those candidates (plus any
   newly created names),
4. compares new against old graphs to confirm modifications, and
5. re-groups the candidates' names into connected components to catch
   merges and splits.

The result is a :class:`StateDelta` — the set of co-variables updated by
the execution (Definition 2's "updates" = modifications + creations +
deletions) — which is exactly what an incremental checkpoint must store.

Setting ``check_all=True`` disables the access-based pruning (step 2),
producing the paper's *AblatedKishu (Check all)* baseline of §7.6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.covariable import (
    CoVariable,
    CoVariablePool,
    CoVarKey,
    covar_key,
    group_into_components,
)
from repro.kernel.namespace import AccessRecord, filter_user_names
from repro.telemetry import WalkStats


@dataclass
class StateDelta:
    """Updates made to the co-variable partition by one cell execution.

    Attributes:
        created: Co-variables that did not exist before (includes the
            products of merges and splits, per Definition 2).
        modified: Co-variables whose membership is unchanged but whose
            object graphs differ.
        deleted: Keys of co-variables that no longer exist.
        accessed_keys: Keys (pre-execution grouping) of every co-variable
            the cell accessed — recorded in the checkpoint node as the
            cell's dependencies for fallback recomputation (§5.1).
        checked_names: Names whose VarGraphs were re-generated; the size of
            this set is the work the access pruning saves.
        detection_seconds: Wall-clock cost of detection (tracking overhead,
            the quantity reported in Table 6 / Fig 17).
        walk: Walk-telemetry counters attributable to this detection
            (objects visited, cache hits/misses, nodes spliced, bytes
            hashed, graphs built) — the §7.6-style evidence that tracking
            cost tracks the delta, not the state.
    """

    created: Dict[CoVarKey, CoVariable] = field(default_factory=dict)
    modified: Dict[CoVarKey, CoVariable] = field(default_factory=dict)
    deleted: Set[CoVarKey] = field(default_factory=set)
    accessed_keys: Set[CoVarKey] = field(default_factory=set)
    checked_names: Set[str] = field(default_factory=set)
    detection_seconds: float = 0.0
    walk: WalkStats = field(default_factory=WalkStats)

    @property
    def updated(self) -> Dict[CoVarKey, CoVariable]:
        """Co-variables whose data must be written to the checkpoint."""
        merged = dict(self.created)
        merged.update(self.modified)
        return merged

    @property
    def is_empty(self) -> bool:
        return not (self.created or self.modified or self.deleted)


def fold_deltas(older: StateDelta, newer: StateDelta) -> StateDelta:
    """Combine two consecutive deltas into one equivalent delta.

    Used when a checkpoint write failed and its delta must be carried
    into the next checkpoint: the detector's pool was already advanced,
    so the older delta cannot be re-detected — it is folded under the
    newer one instead. The newer delta wins on conflicts; a co-variable
    the newer delta re-created stops being deleted, and one it deleted
    stops being updated.
    """
    folded = StateDelta()
    folded.created = dict(older.created)
    folded.modified = dict(older.modified)
    for key in set(newer.updated) | newer.deleted:
        folded.created.pop(key, None)
        folded.modified.pop(key, None)
    folded.created.update(newer.created)
    folded.modified.update(newer.modified)
    folded.deleted = (older.deleted - set(newer.updated)) | newer.deleted
    folded.accessed_keys = older.accessed_keys | newer.accessed_keys
    folded.checked_names = older.checked_names | newer.checked_names
    folded.detection_seconds = older.detection_seconds + newer.detection_seconds
    folded.walk = older.walk + newer.walk
    return folded


class DeltaDetector:
    """Detects co-variable updates after each cell execution."""

    def __init__(self, pool: CoVariablePool, *, check_all: bool = False) -> None:
        self.pool = pool
        self.check_all = check_all

    def needs_full_check(
        self, record: Optional[AccessRecord], *, escalate: bool = False
    ) -> bool:
        """The single fallback decision: can access pruning be trusted?

        Pruning (Lemma 1) is sound only when a complete access record
        exists and nothing has challenged its completeness. Three things
        disable it, all funneled through here so every consumer — the
        candidate-selection step and the walk-cache invalidation — agrees:

        * ``check_all`` — the detector-wide ablation switch (the paper's
          AblatedKishu baseline, §7.6);
        * ``record is None`` — no access information at all (e.g. a lost
          or never-opened recording window); every pool member plus every
          current name must be treated as accessed;
        * ``escalate`` — a per-cell escalation requested by the runtime
          cross-validator (DESIGN.md §8): the record exists but is not
          trusted, because the cell contained tracking escape hatches or
          under-reported a definite static access.
        """
        return self.check_all or escalate or record is None

    def detect(
        self,
        record: Optional[AccessRecord],
        namespace_items: Dict[str, Any],
        *,
        escalate: bool = False,
    ) -> StateDelta:
        """Compute the state delta and update the pool to the new partition.

        Args:
            record: Accesses captured during the cell execution. ``None``
                (no information) is treated as "everything accessed", the
                conservative fallback.
            namespace_items: Current user variables, post-execution.
            escalate: Force check-all behaviour for this one detection
                without flipping the detector-wide ``check_all`` switch —
                the cross-validator's per-cell escalation path.
        """
        started = time.perf_counter()
        before = self.pool.builder.telemetry.snapshot()
        delta = self._detect_inner(record, namespace_items, escalate)
        delta.walk = self.pool.builder.telemetry.since(before)
        delta.detection_seconds = time.perf_counter() - started
        return delta

    def _detect_inner(
        self,
        record: Optional[AccessRecord],
        namespace_items: Dict[str, Any],
        escalate: bool,
    ) -> StateDelta:
        delta = StateDelta()
        known_names = self.pool.all_names()
        current_names = set(namespace_items)

        if self.needs_full_check(record, escalate=escalate):
            accessed_names = known_names | current_names
        else:
            accessed_names = filter_user_names(record.accessed)

        # Candidate co-variables: any with an accessed member (Lemma 1).
        candidate_keys: Set[CoVarKey] = set()
        for name in accessed_names:
            key = self.pool.key_of(name)
            if key is not None:
                candidate_keys.add(key)
        delta.accessed_keys = set(candidate_keys)

        new_names = current_names - known_names
        candidate_names: Set[str] = set(new_names)
        for key in candidate_keys:
            candidate_names |= key

        if not candidate_names:
            return delta

        # Incremental walk cache: a cell can only mutate objects it could
        # reach, and it reaches objects only through accessed names (Lemma 1
        # below variable granularity) — so exactly the subtrees intersecting
        # the accessed names' previous id-sets are dirty; everything else
        # splices from cache. Without access information (check-all mode,
        # lost records) or with an under-approximated id-set (opaque or
        # truncated prior graph) the whole cache is conservatively dropped.
        self._invalidate_cache(accessed_names, record, escalate)

        # Re-generate VarGraphs for all candidates still present (§4.3
        # step 1). Names that vanished show up as absent here.
        new_graphs = self.pool.rebuild_for_names(candidate_names, namespace_items)
        delta.checked_names = set(candidate_names)

        # Re-group candidates into connected components (§4.3 step 3):
        # merges and splits can only involve accessed co-variables.
        new_components = group_into_components(new_graphs)

        old_graphs: Dict[str, Any] = {}
        for key in candidate_keys:
            covariable = self.pool.get(key)
            if covariable is not None:
                old_graphs.update(covariable.graphs)

        new_covariables: List[CoVariable] = []
        surviving_keys: Set[CoVarKey] = set()
        for member_names in new_components:
            key = covar_key(member_names)
            covariable = CoVariable(
                names=key, graphs={name: new_graphs[name] for name in member_names}
            )
            new_covariables.append(covariable)
            if key in candidate_keys:
                surviving_keys.add(key)
                if self._graphs_changed(covariable, old_graphs):
                    delta.modified[key] = covariable
            else:
                delta.created[key] = covariable

        delta.deleted = candidate_keys - surviving_keys
        self.pool.replace(candidate_keys, new_covariables)
        return delta

    def _invalidate_cache(
        self,
        accessed_names: Set[str],
        record: Optional[AccessRecord],
        escalate: bool,
    ) -> None:
        """Drop cached subtrees the cell could have mutated (the dirty set)."""
        builder = self.pool.builder
        if getattr(builder, "cache", None) is None:
            return
        if self.needs_full_check(record, escalate=escalate):
            builder.invalidate_all()
            return
        dirty: Set[int] = set()
        for name in accessed_names:
            graph = self.pool.graph_of(name)
            if graph is None:
                continue
            if graph.opaque or graph.truncated:
                # The graph's id-set under-approximates what the cell could
                # reach through this name; no sound dirty set exists.
                builder.invalidate_all()
                return
            dirty |= graph.id_set
        builder.invalidate_ids(dirty)

    @staticmethod
    def _graphs_changed(covariable: CoVariable, old_graphs: Dict[str, Any]) -> bool:
        for name, graph in covariable.graphs.items():
            old = old_graphs.get(name)
            if old is None or graph.differs_from(old):
                return True
        return False
