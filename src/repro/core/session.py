"""KishuSession — the user-facing façade (§3 of the paper).

Attaching a session to a kernel wires up the full workflow of Fig 5:

* the kernel namespace is access-tracked (the *Patched Namespace*),
* after each cell execution the *Delta Detector* computes the co-variable
  granularity state delta,
* the delta is written as an incremental checkpoint node on the
  *Checkpoint Graph* (payloads go to the checkpoint store),
* ``checkout(checkpoint_id)`` incrementally restores any past state via the
  *State Loader*, with the *Data Restorer* reconstructing anything that
  failed to serialize.

Mirrors the paper's command palette: ``init`` (attach), ``log``,
``checkout``.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.crossval import CrossValidator
from repro.analysis.dataflow import in_place_mutation_targets
from repro.analysis.effects import CellEffects
from repro.analysis.summaries import NotebookSummaries
from repro.analysis.typetrack import StubContext
from repro.analysis.visitor import analyze_cell
from repro.core.covariable import CoVariablePool, CoVarKey
from repro.core.delta import DeltaDetector, StateDelta, fold_deltas
from repro.core.graph import CheckpointGraph, CheckpointNode, PayloadInfo, ROOT_ID
from repro.core.planner import CheckoutPlanner
from repro.core.refs import RefManager
from repro.core.replay import session_cost_model
from repro.core.restore import CheckoutReport, StateLoader
from repro.core.retry import RetryPolicy
from repro.core.serialization import Blocklist, SerializerChain
from repro.core.storage import (
    CheckpointStore,
    InMemoryCheckpointStore,
    StoredNode,
    StoredPayload,
)
from repro.core.vargraph import VarGraphBuilder
from repro.errors import KishuError, SerializationError, StorageError
from repro.obs import BYTE_BUCKETS, EventType, NO_OBSERVER, Observer
from repro.telemetry import (
    AnalysisStats,
    PlanStats,
    WalkStats,
    publish_walk_stats,
)
from repro.kernel.cells import Cell, CellResult
from repro.kernel.events import POST_RUN_CELL, PRE_RUN_CELL, ExecutionInfo
from repro.kernel.kernel import NotebookKernel
from repro.kernel.namespace import AccessRecord


@dataclass
class CellCheckpointMetrics:
    """Per-checkpoint costs, the raw material of Figs 13–17 / Table 6."""

    node_id: str
    execution_count: int
    cell_duration: float
    detect_seconds: float
    serialize_seconds: float
    write_seconds: float
    bytes_written: int
    updated_covariables: int
    skipped_unserializable: int
    #: Payloads degraded to tombstones because storage permanently
    #: refused them; checkout recomputes these (§5.3).
    degraded_payloads: int = 0
    #: Walk-telemetry counters of this checkpoint's delta detection:
    #: objects visited, cache hits/misses, nodes spliced, bytes hashed,
    #: graphs built (DESIGN.md §7).
    walk: WalkStats = field(default_factory=WalkStats)
    #: True when the cross-validator distrusted this cell's access record
    #: (escape hatches or an under-reported definite access) and detection
    #: ran in check-all mode for this one cell (DESIGN.md §8).
    escalated: bool = False
    #: Total serialized payload bytes, *before* tombstone degradation
    #: dropped anything (≥ ``bytes_written``) — the per-cell checkpoint
    #: size of Fig 13, populated from the ``commit.serialize`` span.
    serialized_bytes: int = 0
    #: Store write+commit wall seconds, from the ``commit.persist`` span
    #: (equal to ``write_seconds`` when tracing is disabled).
    store_write_seconds: float = 0.0

    @property
    def checkpoint_seconds(self) -> float:
        """Total checkpoint cost: tracking plus data writing (§7.1)."""
        return self.detect_seconds + self.serialize_seconds + self.write_seconds

    @property
    def tracking_seconds(self) -> float:
        return self.detect_seconds


@dataclass
class LogEntry:
    """One row of ``kishu log``."""

    node_id: str
    parent_id: Optional[str]
    execution_count: int
    code_preview: str
    is_head: bool
    refs: List[str] = field(default_factory=list)


class KishuSession:
    """Time-traveling controller attached to one notebook kernel."""

    def __init__(
        self,
        kernel: NotebookKernel,
        store: Optional[CheckpointStore] = None,
        *,
        auto_checkpoint: bool = True,
        check_all: bool = False,
        serializer: Optional[SerializerChain] = None,
        blocklist: Optional[Blocklist] = None,
        builder: Optional[VarGraphBuilder] = None,
        rule_analyzer: Optional["ReadOnlyCellAnalyzer"] = None,
        retry: Optional[RetryPolicy] = None,
        incremental: bool = True,
        cross_validate: bool = True,
        use_summaries: bool = True,
        use_stubs: bool = True,
        stub_registry: Optional[Any] = None,
        observe: Union[bool, Observer] = True,
    ) -> None:
        self.kernel = kernel
        self.store = store if store is not None else InMemoryCheckpointStore()
        self.serializer = serializer if serializer is not None else SerializerChain()
        self.blocklist = blocklist if blocklist is not None else Blocklist()
        self.auto_checkpoint = auto_checkpoint
        #: Observability sinks (DESIGN.md §11): lifecycle tracer, metrics
        #: registry, and structured event log. ``observe=False`` swaps in
        #: the shared no-op observer (near-zero overhead — every verb
        #: bails on one attribute check); passing an :class:`Observer`
        #: shares sinks across sessions.
        if isinstance(observe, Observer):
            self.observer = observe
        else:
            self.observer = Observer() if observe else NO_OBSERVER
        # Stats views (analysis.* / replay.*) share the observer's registry
        # when observing; a disabled session gets private per-view
        # registries so counting still works without leaking into the
        # process-wide NO_OBSERVER sinks shared by every disabled session.
        stats_registry = self.observer.metrics if self.observer.enabled else None
        #: Optional §6.2 extension: skip delta detection entirely for cells
        #: the analyzer proves read-only (e.g. bare prints, `df.head()`).
        self.rule_analyzer = rule_analyzer
        #: Backoff schedule for transient storage faults, applied to every
        #: store operation issued while checkpointing or restoring.
        self.retry = retry if retry is not None else RetryPolicy()
        self.retry.observer = self.observer
        self.store.observer = self.observer
        #: Runtime cross-validation of Lemma 1 (DESIGN.md §8): after each
        #: cell the static effect prediction is compared against the
        #: runtime access record; cells with tracking escape hatches or
        #: under-reported records are escalated to check-all detection.
        #: Its stats are a view over the session registry (``analysis.*``).
        self.validator = (
            CrossValidator(stats=AnalysisStats(registry=stats_registry))
            if cross_validate
            else None
        )
        self.analysis_stats = (
            self.validator.stats
            if self.validator is not None
            else AnalysisStats(registry=stats_registry)
        )
        self._pending_effects: Optional[CellEffects] = None
        self._installed_analyzer = False
        #: Interprocedural function-effect summaries (DESIGN.md §14). The
        #: table is fed every committed cell in execution order; the
        #: pre-run analyzer consults its current view so call sites expand
        #: through helper summaries and escape-carrying helper bodies are
        #: charged to the cells that call them, not the cells that define
        #: them. ``use_summaries=False`` reverts to the PR 3/4
        #: intraprocedural analysis (the benchmark baseline).
        #: Library effect stubs (DESIGN.md §15): declarative third-party
        #: call models plus the notebook's abstract-type environment. The
        #: session owns the lifecycle — it advances the environment once
        #: per executed cell in ``_on_post_run`` and resyncs it at
        #: checkout. ``use_stubs=False`` reverts library calls to the
        #: conservative treatment (the benchmark baseline);
        #: ``stub_registry`` substitutes a custom
        #: :class:`~repro.analysis.stubs.StubRegistry` (user stub files).
        self.stubs: Optional[StubContext] = (
            StubContext(registry=stub_registry) if use_stubs else None
        )
        self.summaries: Optional[NotebookSummaries] = (
            NotebookSummaries(stubs=self.stubs) if use_summaries else None
        )
        #: Receivers of stub-declared-pure calls in the cells of the
        #: pending checkpoint — the runtime mismatch witnesses: a
        #: commit-time delta on one of these with no other static
        #: explanation refutes the stub (DESIGN.md §15.3).
        self._pending_stub_pure: Set[str] = set()

        # The session's DeltaDetector observes every cell's access record
        # and invalidates dirty subtrees before rebuilding, which is what
        # makes the incremental walk cache sound — so the session-owned
        # builder enables it (a caller-supplied builder is used as-is).
        if builder is None:
            builder = VarGraphBuilder(incremental=incremental)
        self.pool = CoVariablePool(builder)
        self.detector = DeltaDetector(self.pool, check_all=check_all)
        self.graph = CheckpointGraph()
        self.loader = StateLoader(
            self.graph, self.store, self.serializer, self.pool,
            retry=self.retry,
            observer=self.observer,
            plan_stats=PlanStats(registry=stats_registry),
            use_summaries=use_summaries,
            use_stubs=use_stubs,
            stub_registry=stub_registry,
        )
        self.planner = CheckoutPlanner(self.graph)
        self.refs = RefManager()

        self.metrics: List[CellCheckpointMetrics] = []
        self.checkout_reports: List[CheckoutReport] = []
        self._attached = False
        self._pending_record: Optional[AccessRecord] = None
        #: Effects of the cell currently between pre- and post-run hooks,
        #: kept un-merged so the summary table can observe cells one at a
        #: time even when several fold into one checkpoint.
        self._cell_effects: Optional[CellEffects] = None
        self._pending_sources: List[str] = []
        self._pending_execution_count = 0
        self._pending_tags: Set[str] = set()
        #: Delta of a checkpoint whose store write failed, folded into the
        #: next successful checkpoint so the history loses no state.
        self._carryover: Optional[Tuple[StateDelta, str]] = None

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def init(cls, kernel: NotebookKernel, **kwargs) -> "KishuSession":
        """Create a session and attach it — the paper's ``init`` command."""
        session = cls(kernel, **kwargs)
        session.attach()
        return session

    @classmethod
    def resume(
        cls, kernel: NotebookKernel, store: CheckpointStore, **kwargs
    ) -> "KishuSession":
        """Reattach to a durable checkpoint store after a kernel restart.

        Rebuilds the checkpoint graph from the store, attaches to the
        (fresh) kernel, and restores the stored head state into it — the
        durability story the SQLite backend (§6.1) exists for.
        """
        session = cls(kernel, store=store, **kwargs)
        session.graph = CheckpointGraph.from_store(store)
        session.loader = StateLoader(
            session.graph,
            session.store,
            session.serializer,
            session.pool,
            retry=session.retry,
            observer=session.observer,
            plan_stats=PlanStats(
                registry=session.observer.metrics
                if session.observer.enabled
                else None
            ),
            use_summaries=session.summaries is not None,
            use_stubs=session.stubs is not None,
            stub_registry=(
                session.stubs.registry if session.stubs is not None else None
            ),
        )
        session.planner = CheckoutPlanner(session.graph)
        session.attach()
        head = session.graph.head_id
        if head != ROOT_ID:
            # The fresh kernel's actual state is empty (the root state);
            # point the head there so the checkout diff loads everything
            # the stored head state contains.
            session.graph.move_head(ROOT_ID)
            session.checkout(head)
        return session

    def attach(self) -> None:
        """Hook into the kernel and checkpoint any pre-existing state."""
        if self._attached:
            raise KishuError("session already attached")
        self.kernel.events.register(PRE_RUN_CELL, self._on_pre_run)
        self.kernel.events.register(POST_RUN_CELL, self._on_post_run)
        self.kernel.observer = self.observer
        if self.validator is not None and self.kernel.cell_analyzer is None:
            # Install the pre-execution static-analysis hook so every
            # cell's effects are computed before it runs. The bound
            # method consults the session's summary table, making the
            # analysis interprocedural when summaries are enabled.
            self.kernel.cell_analyzer = self._analyze_cell
            self._installed_analyzer = True
        self._attached = True
        existing = self.kernel.user_variables()
        if existing:
            # Capture whatever the user created before attaching as an
            # initial synthetic checkpoint so every later state is reachable.
            self._pending_record = AccessRecord()
            self._pending_record.sets |= set(existing)
            self._pending_sources = ["# state at kishu attach"]
            self._pending_execution_count = self.kernel.execution_count
            self.commit()

    def detach(self) -> None:
        if not self._attached:
            return
        self.kernel.events.unregister(PRE_RUN_CELL, self._on_pre_run)
        self.kernel.events.unregister(POST_RUN_CELL, self._on_post_run)
        self.kernel.observer = NO_OBSERVER
        if self._installed_analyzer:
            self.kernel.cell_analyzer = None
            self._installed_analyzer = False
        self._attached = False

    # -- hooks -------------------------------------------------------------------

    def _analyze_cell(self, source: str) -> CellEffects:
        """Static analysis of one cell, through the summary view when
        interprocedural summaries are enabled (DESIGN.md §14) and the
        stub context when library effect stubs are enabled (§15)."""
        view = (
            self.summaries.view_for_cell(source)
            if self.summaries is not None
            else None
        )
        return analyze_cell(source, view, stubs=self.stubs)

    def _on_pre_run(self, info: ExecutionInfo) -> None:
        if (
            self.validator is not None
            or self.summaries is not None
            or self.stubs is not None
        ):
            effects = info.analysis
            if not isinstance(effects, CellEffects):
                # No analyzer on the kernel (or a foreign one): analyze
                # here so cross-validation still sees every cell.
                effects = self._analyze_cell(info.cell.source)
            self._cell_effects = effects
            self._pending_effects = (
                effects
                if self._pending_effects is None
                else self._pending_effects.merge(effects)
            )
        if not self.kernel.user_ns.recording:
            self.kernel.user_ns.begin_recording()

    def _on_post_run(self, result: CellResult) -> None:
        record = self.kernel.user_ns.end_recording()
        self.observer.annotate(
            accesses=len(record.accessed), writes=len(record.sets)
        )
        effects = self._cell_effects
        self._cell_effects = None
        if effects is None and (
            self.summaries is not None or self.stubs is not None
        ):
            effects = self._analyze_cell(result.cell.source)
        if self.summaries is not None:
            invalidated_before = len(self.summaries.invalidations)
            self.summaries.observe_cell(
                result.cell.source, effects, executed=result.error is None
            )
            self.analysis_stats.summary_invalidations += (
                len(self.summaries.invalidations) - invalidated_before
            )
            # Summary-informed record completion: ``STORE_GLOBAL`` and
            # ``DELETE_GLOBAL`` executed inside a called helper bypass the
            # patched dict, so rebinds/deletes the summaries attribute to
            # a call site never reach the runtime record — and, with the
            # escape deferred, no escalation catches them either. Folding
            # them in keeps Lemma-1 candidate selection sound; the
            # detector's graph comparison discards any that did not
            # actually change (e.g. a call guarded by a false branch).
            record.sets |= effects.summary_writes | effects.summary_mutations
            record.deletes |= effects.summary_deletes
        if self.stubs is not None and effects is not None:
            # Stub-informed record completion, mirroring the summary
            # fold above: stub-declared receiver/argument mutations and
            # hidden global writes never hit the patched dict, so they
            # must join the Lemma-1 candidate set by hand.
            record.sets |= effects.stub_mutations | effects.stub_writes
            if result.error is None and effects.syntax_error is None:
                self._pending_stub_pure |= self._stub_pure_witnesses(
                    result.cell.source, effects
                )
            # The session owns the stub env lifecycle: exactly one
            # observation per executed cell, after analysis used the
            # pre-cell environment.
            self.stubs.observe_cell(
                result.cell.source,
                executed=result.error is None,
                opaque=effects.opaque_writes,
            )
        if self._pending_record is None:
            self._pending_record = record
        else:
            self._pending_record.merge(record)
        self._pending_sources.append(result.cell.source)
        self._pending_tags |= set(result.cell.tags)
        self._pending_execution_count = result.execution_count
        self._last_cell_duration = result.duration
        if self.auto_checkpoint:
            self.commit()

    def _stub_pure_witnesses(self, source: str, effects: CellEffects) -> Set[str]:
        """Receivers this cell touched *only* through declared-pure stub
        calls — the names a commit-time delta can refute (§15.3).

        A receiver some other statement legitimately mutates (a stubbed
        mutator, an aug-assign, an unstubbed method the conservative
        walk flags) is excluded: a runtime change there proves nothing
        about the pure stub.
        """
        pure = set(effects.stub_pure_receivers)
        pure -= effects.stub_mutations | effects.stub_writes
        if not pure:
            return pure
        try:
            module = ast.parse(source)
        except SyntaxError:
            return set()
        assert self.stubs is not None
        resolver = self.stubs.resolver(module)
        pure -= set(
            in_place_mutation_targets(module, method_effect=resolver.method_effect)
        )
        return pure

    def _refuted_stub_purity(
        self,
        delta: StateDelta,
        record: AccessRecord,
        effects: Optional[CellEffects],
    ) -> Set[str]:
        """Pure-stub witnesses the runtime delta refutes.

        A co-variable counts as refuting evidence only when it contains
        a witness AND none of its members has another static explanation
        (a recorded rebind/delete, or a summary/stub-declared write) —
        shared object graphs make any explained member an alternative
        cause for the whole co-variable's change.
        """
        explained = set(record.sets) | set(record.deletes)
        if effects is not None:
            explained |= (
                effects.summary_writes
                | effects.summary_mutations
                | effects.summary_deletes
                | effects.stub_mutations
                | effects.stub_writes
            )
        refuted: Set[str] = set()
        for key, _covariable in delta.updated.items():
            members = set(key)
            witnesses = members & self._pending_stub_pure
            if witnesses and not (members & explained):
                refuted |= witnesses
        return refuted

    # -- checkpointing --------------------------------------------------------------

    def commit(self) -> Optional[CheckpointNode]:
        """Write pending cell execution(s) as one incremental checkpoint."""
        if self._pending_record is None:
            return None
        record = self._pending_record
        sources = "\n".join(self._pending_sources)
        execution_count = self._pending_execution_count
        cell_duration = getattr(self, "_last_cell_duration", 0.0)
        tags = self._pending_tags
        effects = self._pending_effects
        self._pending_record = None
        self._pending_sources = []
        self._pending_tags = set()
        self._pending_effects = None
        #: Kept for subclasses whose should_store_delta needs the record
        #: (e.g. cost-based Det-replay's dependency-cost estimate).
        self._last_commit_record = record

        obs = self.observer
        with obs.span("commit", execution_count=execution_count) as commit_span:
            # Cross-validate Lemma 1 (DESIGN.md §8): compare the static
            # prediction against what the patched namespace recorded. Cells
            # containing escape hatches, and cells whose record misses a
            # definite static access, run this one detection in check-all
            # mode — correctness is restored at AblatedKishu's per-cell
            # cost.
            escalate = False
            if self.validator is not None and effects is not None:
                with obs.span("commit.crossval") as crossval_span:
                    outcome = self.validator.validate(effects, record)
                    crossval_span.set("escalate", outcome.escalate)
                escalate = outcome.escalate
                if escalate:
                    obs.event(
                        EventType.CROSSVAL_ESCALATION,
                        execution_count=execution_count,
                        reasons=list(outcome.reasons),
                        missing=sorted(outcome.missing),
                    )

            if (
                self.rule_analyzer is not None
                and not escalate
                and self.rule_analyzer.is_read_only(sources)
            ):
                # Rule-based fast path (§6.2): a provably read-only cell
                # cannot have updated any co-variable — write an empty
                # checkpoint without any VarGraph work.
                delta = StateDelta()
                self.analysis_stats.read_only_skips += 1
            else:
                with obs.span("commit.detect", escalate=escalate) as detect_span:
                    delta = self.detector.detect(
                        record, self.kernel.user_variables(), escalate=escalate
                    )
                    detect_span.update(
                        {
                            "updated": len(delta.updated),
                            "deleted": len(delta.deleted),
                            "objects_visited": delta.walk.objects_visited,
                            "bytes_hashed": delta.walk.bytes_hashed,
                        }
                    )
            # Stub-mismatch safety net (DESIGN.md §15.3): the delta
            # detector is the runtime oracle for stub truthfulness. A
            # changed co-variable containing a declared-pure receiver,
            # with no other static explanation for the change, means a
            # stub lied (or drifted across library versions). The delta
            # itself already captured the change — correctness of *this*
            # checkpoint is intact — so the response is observational:
            # count the mismatch, emit events, and mark the checkpoint
            # escalated so downstream consumers distrust the cell.
            if self.stubs is not None and self._pending_stub_pure:
                refuted = self._refuted_stub_purity(delta, record, effects)
                if refuted:
                    if self.validator is not None:
                        self.validator.note_stub_mismatch(
                            frozenset(refuted), already_escalated=escalate
                        )
                    obs.event(
                        EventType.STUB_MISMATCH,
                        names=sorted(refuted),
                        execution_count=execution_count,
                    )
                    obs.event(
                        EventType.CROSSVAL_ESCALATION,
                        execution_count=execution_count,
                        reasons=[
                            "stub-mismatch: " + ", ".join(sorted(refuted))
                        ],
                        missing=[],
                    )
                    escalate = True
                self._pending_stub_pure = set()

            if obs.enabled:
                publish_walk_stats(obs.metrics, delta.walk)

            if self._carryover is not None:
                # A previous checkpoint's store write failed after the pool
                # was already advanced; fold its delta under this one so no
                # state update is lost from the history.
                carried_delta, carried_sources = self._carryover
                self._carryover = None
                delta = fold_deltas(carried_delta, delta)
                sources = (
                    f"{carried_sources}\n{sources}" if sources else carried_sources
                )
                obs.event(
                    EventType.DELTA_CARRYOVER,
                    action="folded",
                    execution_count=execution_count,
                    carried_updates=len(carried_delta.updated),
                )

            try:
                node = self._write_checkpoint(
                    delta, sources, execution_count, cell_duration,
                    store_payloads=self.should_store_delta(tags),
                    escalated=escalate,
                )
            except StorageError as exc:
                self._carryover = (delta, sources)
                obs.event(
                    EventType.DELTA_CARRYOVER,
                    action="stashed",
                    execution_count=execution_count,
                    updates=len(delta.updated),
                    error=type(exc).__name__,
                )
                raise
            commit_span.update(
                {"node": node.node_id, "updated": len(delta.updated)}
            )
        metric = self.metrics[-1]
        obs.event(
            EventType.COMMIT,
            node=node.node_id,
            execution_count=execution_count,
            updated=metric.updated_covariables,
            bytes_written=metric.bytes_written,
            skipped=metric.skipped_unserializable,
            degraded=metric.degraded_payloads,
            escalated=escalate,
        )
        obs.count("commit.count")
        self.refs.advance_active_branch(node.node_id)
        return node

    def should_store_delta(self, tags: Set[str]) -> bool:
        """Whether this cell's updated co-variables should be serialized.

        Always True for plain Kishu. The Det-replay variant (§7.1) overrides
        this to skip storage for deterministic-annotated cells, relying on
        replay (fallback recomputation) at checkout.
        """
        return True

    def _write_checkpoint(
        self,
        delta: StateDelta,
        cell_source: str,
        execution_count: int,
        cell_duration: float,
        *,
        store_payloads: bool = True,
        escalated: bool = False,
    ) -> CheckpointNode:
        parent_id = self.graph.head_id
        parent_state = self.graph.head.state
        node_id = self.graph.new_node_id()
        timestamp = self.graph.next_timestamp

        obs = self.observer
        serialize_seconds = 0.0
        bytes_written = 0
        skipped = 0
        updated_infos: Dict[CoVarKey, PayloadInfo] = {}
        payloads: List[StoredPayload] = []

        with obs.span("commit.serialize") as serialize_span:
            for key, covariable in delta.updated.items():
                data: Optional[bytes] = None
                serializer_name: Optional[str] = None
                if store_payloads and not self.blocklist.blocks_any(
                    covariable.type_names()
                ):
                    values = {
                        name: self.kernel.user_ns.peek(name) for name in key
                    }
                    started = time.perf_counter()
                    try:
                        data, serializer_name = self.serializer.serialize(key, values)
                    except SerializationError:
                        data = None
                    serialize_seconds += time.perf_counter() - started
                if data is None:
                    skipped += 1
                else:
                    bytes_written += len(data)
                    obs.observe("store.payload_bytes", len(data), BYTE_BUCKETS)
                updated_infos[key] = PayloadInfo(
                    key=key,
                    stored=data is not None,
                    serializer=serializer_name if data is not None else None,
                    size_bytes=len(data) if data is not None else 0,
                )
                payloads.append(
                    StoredPayload(
                        node_id=node_id,
                        key=key,
                        data=data,
                        serializer=serializer_name if data is not None else None,
                    )
                )
            serialize_span.update(
                {"payloads": len(payloads), "bytes": bytes_written}
            )

        dependencies: Dict[CoVarKey, str] = {}
        for key in delta.accessed_keys:
            version = parent_state.get(key)
            if version is not None:
                dependencies[key] = version

        stored_node = StoredNode(
            node_id=node_id,
            parent_id=parent_id,
            timestamp=timestamp,
            execution_count=execution_count,
            cell_source=cell_source,
            deleted_keys=tuple(delta.deleted),
            dependencies=tuple(dependencies.items()),
        )

        # Persist first, under the store's atomic commit protocol; the
        # in-memory graph node is added only once the store committed, so
        # a storage failure leaves both graph and store at the parent.
        started = time.perf_counter()
        with obs.span("commit.persist", node=node_id) as persist_span:
            degraded, dropped_bytes = self._persist_atomically(
                stored_node, payloads, updated_infos
            )
        write_seconds = time.perf_counter() - started
        serialized_bytes = bytes_written
        skipped += degraded
        bytes_written -= dropped_bytes
        persist_span.update({"bytes": bytes_written, "degraded": degraded})

        node = self.graph.add_node(
            cell_source=cell_source,
            execution_count=execution_count,
            updated=updated_infos,
            deleted=delta.deleted,
            dependencies=dependencies,
            parent_id=parent_id,
        )

        if obs.enabled:
            # Storage accounting (registry, ``store.*``): written vs
            # reused payloads, and the incremental-vs-monolithic size
            # comparison — a monolithic checkpointer would re-write every
            # stored co-variable of the head state each commit.
            obs.count("store.bytes_written", bytes_written)
            obs.count("store.payloads_stored", len(payloads) - skipped)
            obs.count("store.tombstones", skipped)
            state = node.state
            reused = sum(
                1 for _, version in state.items() if version != node.node_id
            )
            obs.count("store.dedup_hits", reused)
            obs.count("store.incremental_bytes", bytes_written)
            monolithic = 0
            for key, version in state.items():
                info = self.graph.get(version).updated.get(key)
                if info is not None:
                    monolithic += info.size_bytes
            obs.count("store.monolithic_bytes", monolithic)
            obs.gauge("store.state_covariables", len(state))

        self.metrics.append(
            CellCheckpointMetrics(
                node_id=node.node_id,
                execution_count=execution_count,
                cell_duration=cell_duration,
                detect_seconds=delta.detection_seconds,
                serialize_seconds=serialize_seconds,
                write_seconds=write_seconds,
                bytes_written=bytes_written,
                updated_covariables=len(delta.updated),
                skipped_unserializable=skipped,
                degraded_payloads=degraded,
                walk=delta.walk,
                escalated=escalated,
                serialized_bytes=serialized_bytes,
                store_write_seconds=persist_span.duration or write_seconds,
            )
        )
        return node

    def _persist_atomically(
        self,
        stored_node: StoredNode,
        payloads: List[StoredPayload],
        updated_infos: Dict[CoVarKey, PayloadInfo],
    ) -> Tuple[int, int]:
        """Write one checkpoint under begin/commit, with retry and
        graceful degradation.

        Every store call runs under the session's retry policy (transient
        faults back off and retry). A payload that storage permanently
        refuses is degraded to a tombstone — checkout will recompute it
        (§5.3) — and ``updated_infos`` is amended to say so. A node write
        or commit that fails permanently aborts the checkpoint: the open
        transaction is rolled back and the error propagates.

        A :class:`~repro.errors.SimulatedCrash` is a BaseException and
        escapes without rollback — by design: a crashed process cannot
        clean up, and recovery-on-open must cope with whatever remains.

        Returns (degraded payload count, bytes not written due to
        degradation).
        """
        store = self.store
        node_id = stored_node.node_id
        degraded = 0
        dropped_bytes = 0
        try:
            self.retry.run(lambda: store.begin_checkpoint(node_id))
            for payload in payloads:
                written = self._write_payload_or_tombstone(payload)
                if written is not payload:
                    degraded += 1
                    dropped_bytes += payload.size_bytes
                    updated_infos[payload.key] = PayloadInfo(
                        key=payload.key, stored=False
                    )
                    self.observer.event(
                        EventType.TOMBSTONE_DEGRADED,
                        node=node_id,
                        covariable=sorted(payload.key),
                        bytes_dropped=payload.size_bytes,
                    )
            self.retry.run(lambda: store.write_node(stored_node))
            self.retry.run(lambda: store.commit_checkpoint(node_id))
        except Exception:
            try:
                store.rollback_checkpoint(node_id)
            except Exception:
                pass  # recovery-on-open sweeps whatever rollback couldn't
            raise
        return degraded, dropped_bytes

    def _write_payload_or_tombstone(self, payload: StoredPayload) -> StoredPayload:
        """Write a payload, degrading to a tombstone if storage refuses it."""
        try:
            self.retry.run(lambda: self.store.write_payload(payload))
            return payload
        except StorageError:
            if payload.data is None:
                raise  # it already was a tombstone; nothing left to shed
            tombstone = StoredPayload(
                node_id=payload.node_id,
                key=payload.key,
                data=None,
                serializer=None,
            )
            self.retry.run(lambda: self.store.write_payload(tombstone))
            return tombstone

    # -- time-traveling -----------------------------------------------------------

    def checkout(self, ref: str) -> CheckoutReport:
        """Incrementally restore a past state (§5.2).

        ``ref`` may be a checkpoint id (``t7``), a branch name, or a tag
        name. Checking out a branch makes it active (subsequent commits
        advance it); anything else leaves the head detached.
        """
        resolved = self.refs.resolve(ref)
        checkpoint_id = resolved if resolved is not None else ref
        report = self.loader.checkout(checkpoint_id, self.kernel.user_ns)
        self._discard_carryover_after_checkout(checkpoint_id, report)
        self._resync_summaries(checkpoint_id)
        self.checkout_reports.append(report)
        if ref in self.refs.branches():
            self.refs.activate_branch(ref)
        else:
            self.refs.activate_branch(None)
        return report

    def _resync_summaries(self, target_id: str) -> None:
        """Rebuild the summary table and stub type environment for the
        checked-out timeline.

        Function bindings — and, for stubs, import/constructor bindings —
        are session state like any other: a checkout moves to the state
        *as of* the target node, so summaries and abstract types from the
        abandoned timeline (defs executed after the target, rebinds,
        invalidation events) must not leak into analyses of cells run
        from here on. Rebuilding from the target's chain sources is
        exactly the replay both tables would have observed live.
        """
        self._pending_stub_pure = set()
        if self.summaries is None and self.stubs is None:
            return
        sources = [
            self.graph.get(ancestor).cell_source
            for ancestor in reversed(self.graph.path_to_root(target_id))
            if ancestor != ROOT_ID
        ]
        if self.stubs is not None:
            self.stubs.reset()
        if self.summaries is not None:
            # from_sources drives the shared stub context's env forward
            # alongside the table, keeping the two in lockstep.
            self.summaries = NotebookSummaries.from_sources(
                sources, stubs=self.stubs
            )
        elif self.stubs is not None:
            for source in sources:
                self.stubs.observe_cell(source)

    def _discard_carryover_after_checkout(
        self, target_id: str, report: CheckoutReport
    ) -> None:
        """A checkout abandons state that never reached the store.

        When a checkpoint write fails, its delta is stashed as a
        carryover to be folded under the next commit. A checkout moves
        to a *recorded* state, so the carried delta belongs to the
        abandoned timeline — and the checkout plan, which diffs
        committed states only, cannot see names the failed cell
        created. Without this pass those names would survive time
        travel in both the namespace and the pool.
        """
        if self._carryover is None:
            return
        carried_delta, _ = self._carryover
        self._carryover = None
        target_names = self.graph.get(target_id).state.names()
        for key, covariable in carried_delta.created.items():
            stale = [name for name in key if name not in target_names]
            if not stale:
                continue
            for name in stale:
                self.kernel.user_ns.uproot(name)
                report.deleted_names.append(name)
            # Any member the target does know was repartitioned by the
            # checkout resync; a key of only-stale names lingers whole.
            pool_key = self.pool.key_of(stale[0])
            if pool_key is not None and not (set(pool_key) & target_names):
                self.pool.replace([pool_key], [])
        self.observer.event(
            EventType.DELTA_CARRYOVER,
            action="discarded",
            target=target_id,
            carried_updates=len(carried_delta.updated),
        )

    def plan_replay(self, names, ref: Optional[str] = None):
        """Compute (without executing) the minimal replay plan that would
        reconstruct ``names`` at ``ref`` (default: the head) — the
        ``%replay-plan`` command (DESIGN.md §10).

        Cost estimates prefer measured cell durations from
        :class:`CellCheckpointMetrics`, falling back to a deterministic
        AST-size proxy for nodes without metrics (e.g. after resume).
        """
        node_id = self._resolve_or_head(ref)
        durations = {
            metric.node_id: metric.cell_duration for metric in self.metrics
        }
        plan, _ = self.loader.replay_engine.plan_for(
            names, node_id, cost_of=session_cost_model(durations)
        )
        return plan

    @property
    def plan_stats(self):
        """Replay-planner telemetry (plans, cells replayed vs skipped,
        validation mismatches) — surfaced by ``%telemetry``."""
        return self.loader.replay_engine.stats

    # -- refs (kishu branch / kishu tag) -----------------------------------------

    def tag(self, name: str, ref: Optional[str] = None) -> str:
        """Create an immutable tag at ``ref`` (default: the head)."""
        node_id = self._resolve_or_head(ref)
        self.refs.create_tag(name, node_id)
        return node_id

    def branch(
        self, name: str, ref: Optional[str] = None, *, switch: bool = True
    ) -> str:
        """Create a branch at ``ref`` (default: the head).

        With ``switch`` (default) the new branch becomes active, so the
        next cell executions advance it — `git checkout -b` semantics.
        """
        node_id = self._resolve_or_head(ref)
        self.refs.create_branch(name, node_id)
        if switch and node_id == self.graph.head_id:
            self.refs.activate_branch(name)
        return node_id

    def _resolve_or_head(self, ref: Optional[str]) -> str:
        if ref is None:
            return self.graph.head_id
        resolved = self.refs.resolve(ref)
        node_id = resolved if resolved is not None else ref
        self.graph.get(node_id)  # raises CheckpointNotFoundError if bad
        return node_id

    def log(self) -> List[LogEntry]:
        """All checkpoints, oldest first — the paper's ``log`` command."""
        entries = []
        for node in sorted(self.graph.all_nodes(), key=lambda n: n.timestamp):
            if node.node_id == ROOT_ID:
                continue
            first_line = node.cell_source.strip().splitlines()
            preview = first_line[0][:60] if first_line else ""
            entries.append(
                LogEntry(
                    node_id=node.node_id,
                    parent_id=node.parent_id,
                    execution_count=node.execution_count,
                    code_preview=preview,
                    is_head=node.node_id == self.graph.head_id,
                    refs=self.refs.names_of(node.node_id),
                )
            )
        return entries

    @property
    def head_id(self) -> str:
        return self.graph.head_id

    @property
    def session_id(self) -> str:
        """Which session's rows this session reads and writes in the
        (possibly shared) store."""
        return self.store.session_id

    # -- write-ahead barrier -------------------------------------------------------

    def flush(self) -> None:
        """Wait until every accepted commit is applied to the store.

        A no-op for synchronous stores; against a write-ahead
        :class:`~repro.service.queue.QueuedStore` this is the barrier
        the service's durability contract is stated in terms of.
        """
        self.store.flush()

    def drain(self) -> None:
        """:meth:`flush`, then raise any asynchronous write failures."""
        self.store.drain()

    # -- convenience ---------------------------------------------------------------

    def run_cell(self, cell, **kwargs) -> CellResult:
        """Run a cell on the attached kernel (checkpointing via hooks)."""
        return self.kernel.run_cell(cell, **kwargs)

    # -- aggregate metrics -----------------------------------------------------------

    def total_checkpoint_seconds(self) -> float:
        return sum(metric.checkpoint_seconds for metric in self.metrics)

    def total_walk_stats(self) -> WalkStats:
        """Cumulative walk-telemetry counters across all checkpoints."""
        total = WalkStats()
        for metric in self.metrics:
            total = total + metric.walk
        return total

    def total_tracking_seconds(self) -> float:
        return sum(metric.tracking_seconds for metric in self.metrics)

    def total_checkpoint_bytes(self) -> int:
        return self.store.total_payload_bytes()
