"""Statically planned replay — checkout's preferred fallback path (§5.3).

When a checkout needs a co-variable whose payload is missing (skipped as
unserializable, degraded, corrupt, or deliberately unstored by the
Det-replay baseline), the legacy :class:`~repro.core.restore.DataRestorer`
recursion re-runs the producing cell on its *runtime-recorded*
dependencies. That recursion is correct but blind: it replays whole
dependency chains cell by cell, cannot skip over stored intermediate
versions it passes, and cannot see lazy (call-time) reads the runtime
record missed.

The :class:`ReplayEngine` here does the same job through the static
dataflow lens of :mod:`repro.analysis.dataflow`: it lifts the checkpoint
chain leading to the target node into a
:class:`~repro.analysis.dataflow.NotebookDataflowGraph`, asks the
:class:`~repro.analysis.dataflow.ReplayPlanner` for the minimal ordered
cell subset reconstructing the co-variable — consulting stored payloads
and the checkout's materialization cache as shortcut versions — and
executes the plan in a scratch :class:`~repro.kernel.namespace.PatchedNamespace`,
cross-validating every replayed cell's runtime access record against its
static effects exactly the way the session's
:class:`~repro.analysis.crossval.CrossValidator` validates live cells.

The engine is deliberately fail-safe: any plan that is incomplete,
replay-unsafe (routes through an opaque cell), needs inputs the chain
cannot produce, or fails mid-execution is *declined* — the caller falls
back to the legacy recursion, so correctness never depends on the static
analysis being right, only the saved work does (DESIGN.md §10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.dataflow import (
    CellNode,
    NotebookDataflowGraph,
    ReplayPlan,
    ReplayPlanner,
    StoredVersion,
    ast_cost,
    make_cell_node,
)
from repro.analysis.summaries import NotebookSummaries
from repro.analysis.typetrack import StubContext
from repro.core.covariable import CoVarKey
from repro.core.graph import ROOT_ID, CheckpointGraph, CheckpointNode
from repro.kernel.namespace import PatchedNamespace, filter_user_names
from repro.obs import NO_OBSERVER, EventType, Observer
from repro.telemetry import PlanStats

#: Loads the value dict of versioned co-variable (key, node_id) from
#: storage, or None when the payload is absent/unloadable.
ValueLoader = Callable[[CoVarKey, str], Optional[Dict[str, Any]]]


class DeclineReason(enum.Enum):
    """Why the engine refused (or abandoned) a replay plan.

    Every decline path of :meth:`ReplayEngine.try_materialize` maps onto
    exactly one of these — the checkout report, the event log, and the
    ``replay.declined.<reason>`` counters all carry the same value, so a
    declined checkout is explainable after the fact instead of being one
    anonymous tick of ``plans_declined``.
    """

    #: The target node is not in the checkpoint graph at all.
    NO_CHAIN = "no-chain"
    #: The plan routes through an opaque (escaped) cell — replay-unsafe.
    UNSAFE = "unsafe"
    #: The plan cannot produce every target name (missing producers).
    INCOMPLETE = "incomplete"
    #: The plan needs inputs the chain cannot produce (external reads).
    EXTERNAL_INPUTS = "external-inputs"
    #: The plan has no replay steps (nothing to execute — a pure-load
    #: plan is the stored-payload path's job, not the engine's).
    EMPTY_PLAN = "empty-plan"
    #: A replayed cell raised, or a load step failed mid-execution.
    EXEC_FAILED = "exec-failed"
    #: Execution finished but did not produce every target name.
    MISSING_OUTPUT = "missing-output"


@dataclass(frozen=True)
class PlanDecline:
    """One machine-readable decline record (reason + human detail)."""

    reason: DeclineReason
    detail: str
    names: Tuple[str, ...]
    node_id: str

    @property
    def reason_value(self) -> str:
        return self.reason.value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason.value,
            "detail": self.detail,
            "names": list(self.names),
            "node": self.node_id,
        }


class ReplayEngine:
    """Plans and executes minimal static replays over a checkpoint chain."""

    def __init__(
        self,
        graph: CheckpointGraph,
        *,
        stats: Optional[PlanStats] = None,
        validate: bool = True,
        observer: Optional[Observer] = None,
        use_summaries: bool = True,
        use_stubs: bool = True,
        stub_registry: Optional[Any] = None,
    ) -> None:
        self.graph = graph
        self.stats = stats if stats is not None else PlanStats()
        self.validate = validate
        self.observer = observer if observer is not None else NO_OBSERVER
        self.use_summaries = use_summaries
        self.use_stubs = use_stubs
        self.stub_registry = stub_registry
        # Memoized per (chain position, prefix fingerprint, source): tests
        # tamper with node sources in place, so keying on the node id
        # alone would serve stale analyses — and under summary analysis a
        # cell's effects depend on every cell before it (a helper defined
        # upstream expands at this cell's call sites), so the key also
        # covers the chain prefix.
        self._cells: Dict[Tuple[int, int, str], CellNode] = {}

    # -- chain and graph construction ---------------------------------------

    def chain_to(self, node_id: str) -> List[CheckpointNode]:
        """Checkpoint nodes from the first cell to ``node_id``, in
        execution order (the root's empty pseudo-cell is excluded)."""
        path = self.graph.path_to_root(node_id)
        return [
            self.graph.get(ancestor)
            for ancestor in reversed(path)
            if ancestor != ROOT_ID
        ]

    def _cell_nodes(self, chain: List[CheckpointNode]) -> List[CellNode]:
        cells: List[CellNode] = []
        # The summary table is built lazily, on the first memo miss: a
        # fully memoized chain (the common case for repeated
        # materializations at one checkout) costs zero re-analysis. On a
        # miss the table catches up by observing the already-analyzed
        # prefix — observation needs only each cell's source and effects,
        # both carried by the memoized CellNode.
        table: Optional[NotebookSummaries] = None
        stubs: Optional[StubContext] = None
        analyses_started = False
        chain_sensitive = self.use_summaries or self.use_stubs
        prefix_fp = 0
        for index, node in enumerate(chain):
            prefix_fp = hash((prefix_fp, node.cell_source))
            key = (index, prefix_fp if chain_sensitive else 0, node.cell_source)
            cell = self._cells.get(key)
            if cell is None:
                if chain_sensitive and not analyses_started:
                    analyses_started = True
                    if self.use_stubs:
                        stubs = StubContext(registry=self.stub_registry)
                    if self.use_summaries:
                        table = NotebookSummaries(stubs=stubs)
                    for done in cells:
                        if table is not None:
                            table.observe_cell(done.source, done.effects)
                        if stubs is not None:
                            stubs.observe_cell(
                                done.source, opaque=done.effects.opaque_writes
                            )
                cell = make_cell_node(
                    index,
                    node.cell_source,
                    label=node.node_id,
                    execution_count=node.execution_count,
                    node_id=node.node_id,
                    summaries=(
                        table.view_for_cell(node.cell_source)
                        if table is not None
                        else None
                    ),
                    stubs=stubs,
                )
                self._cells[key] = cell
            if table is not None:
                table.observe_cell(cell.source, cell.effects)
            if stubs is not None:
                stubs.observe_cell(cell.source, opaque=cell.effects.opaque_writes)
            cells.append(cell)
        return cells

    def dataflow_graph(self, node_id: str) -> NotebookDataflowGraph:
        return NotebookDataflowGraph(self._cell_nodes(self.chain_to(node_id)))

    # -- planning ------------------------------------------------------------

    def _payload_lookup(
        self,
        chain: List[CheckpointNode],
        *,
        exclude: Optional[Tuple[CoVarKey, str]] = None,
        cache: Optional[Dict[Tuple[CoVarKey, str], Dict[str, Any]]] = None,
    ) -> Callable[[str, int], Optional[StoredVersion]]:
        """Stored-version resolver over the chain's session states.

        A name at chain index *i* is coverable by a load iff the session
        state of chain[i] maps the name's co-variable to a version whose
        payload is stored (or already materialized in the checkout
        cache). The version being reconstructed right now is excluded —
        its load already failed, which is why we are planning at all.
        """

        # A version's payload holds values as of after the node that
        # *created* it; anchoring the load there (not at the query
        # index) keeps it ordered before any replayed cell that reads
        # the loaded names.
        positions = {node.node_id: index for index, node in enumerate(chain)}

        def lookup(name: str, upto: int) -> Optional[StoredVersion]:
            if upto < 0 or upto >= len(chain):
                return None
            state = chain[upto].state
            for key, version in state.items():
                if name not in key:
                    continue
                if exclude is not None and (key, version) == exclude:
                    return None
                anchor = positions.get(version, upto)
                if cache is not None and (key, version) in cache:
                    return StoredVersion(
                        names=key, ref=version, index=anchor, size_bytes=0
                    )
                if version not in self.graph:
                    return None
                info = self.graph.get(version).updated.get(key)
                if info is not None and info.stored:
                    return StoredVersion(
                        names=key,
                        ref=version,
                        index=anchor,
                        size_bytes=info.size_bytes,
                    )
                return None
            return None

        return lookup

    def plan_for(
        self,
        names: Any,  # Iterable[str]
        node_id: str,
        *,
        exclude: Optional[Tuple[CoVarKey, str]] = None,
        cache: Optional[Dict[Tuple[CoVarKey, str], Dict[str, Any]]] = None,
        cost_of: Optional[Callable[[CellNode], float]] = None,
    ) -> Tuple[ReplayPlan, List[CheckpointNode]]:
        """Compute (but do not execute) a replay plan for ``names`` at
        ``node_id``. Returns the plan together with the chain it is
        relative to (plan step indices are chain positions)."""
        with self.observer.span(
            "replay.plan", node=node_id, targets=sorted(names)
        ) as span:
            chain = self.chain_to(node_id)
            graph = NotebookDataflowGraph(self._cell_nodes(chain))
            planner = ReplayPlanner(
                graph,
                payload_lookup=self._payload_lookup(
                    chain, exclude=exclude, cache=cache
                ),
                cost_of=cost_of,
            )
            plan = planner.plan(sorted(names), len(chain) - 1 if chain else -1)
            self.stats.plans_computed += 1
            if not plan.is_safe:
                self.stats.unsafe_plans += 1
            span.set("chain_cells", len(chain))
            span.set("replay_cells", plan.cells_replayed)
            span.set("load_steps", len(plan.load_steps))
            span.set("safe", plan.is_safe)
            span.set("complete", plan.is_complete)
        return plan, chain

    # -- execution -----------------------------------------------------------

    def try_materialize(
        self,
        key: CoVarKey,
        node_id: str,
        *,
        cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]],
        load_values: ValueLoader,
        report: Optional[Any] = None,
    ) -> Optional[Dict[str, Any]]:
        """Reconstruct versioned co-variable (key, node_id) by planned
        replay, or return None to decline (caller falls back to the
        legacy recursion).

        Declines when the plan is incomplete, needs external inputs the
        chain cannot produce, is replay-unsafe, or fails mid-execution.
        Every decline records a :class:`PlanDecline` (reason enum +
        detail) on :attr:`PlanStats.declines`, the checkout report, and
        the event log — the counter alone never tells the story.
        On success the checkout ``cache`` has been populated with every
        versioned co-variable the replay produced along the way, so
        sibling materializations reuse (and alias with) these objects.
        """
        if not chain_has(self.graph, node_id):
            return self._decline(
                DeclineReason.NO_CHAIN,
                f"node {node_id} not in checkpoint graph",
                key,
                node_id,
                report,
            )
        plan, chain = self.plan_for(
            key, node_id, exclude=(key, node_id), cache=cache
        )
        if not plan.is_safe:
            return self._decline(
                DeclineReason.UNSAFE,
                "; ".join(plan.unsafe_reasons) or "plan routes through opaque cells",
                key,
                node_id,
                report,
            )
        if not plan.is_complete:
            return self._decline(
                DeclineReason.INCOMPLETE,
                "no producer for: " + ", ".join(plan.missing),
                key,
                node_id,
                report,
            )
        if plan.external_inputs:
            return self._decline(
                DeclineReason.EXTERNAL_INPUTS,
                "chain cannot produce: " + ", ".join(plan.external_inputs),
                key,
                node_id,
                report,
            )
        if not plan.replay_steps:
            return self._decline(
                DeclineReason.EMPTY_PLAN,
                "plan has no replay steps",
                key,
                node_id,
                report,
            )
        with self.observer.span(
            "replay.execute", node=node_id, covariable=sorted(key)
        ) as span:
            values, failure = self._execute(
                plan, chain, cache=cache, load_values=load_values, report=report
            )
            span.set("ok", values is not None)
        if values is None:
            return self._decline(
                DeclineReason.EXEC_FAILED, failure, key, node_id, report
            )
        missing = [name for name in key if name not in values]
        if missing:
            return self._decline(
                DeclineReason.MISSING_OUTPUT,
                "replay did not produce: " + ", ".join(sorted(missing)),
                key,
                node_id,
                report,
            )
        self.stats.plans_executed += 1
        self.stats.cells_skipped += plan.cells_skipped
        self.observer.event(
            EventType.REPLAY_PLAN_EXECUTED,
            covariable=sorted(key),
            node=node_id,
            cells_replayed=plan.cells_replayed,
            cells_skipped=plan.cells_skipped,
            loads=len(plan.load_steps),
        )
        return {name: values[name] for name in key}

    def _decline(
        self,
        reason: DeclineReason,
        detail: str,
        key: CoVarKey,
        node_id: str,
        report: Optional[Any],
    ) -> None:
        """Record one decline everywhere it must be visible, return None."""
        decline = PlanDecline(
            reason=reason, detail=detail, names=tuple(sorted(key)), node_id=node_id
        )
        self.stats.record_decline(decline)
        if report is not None and hasattr(report, "declines"):
            report.declines.append(decline)
        self.observer.event(
            EventType.REPLAY_PLAN_DECLINED,
            reason=reason.value,
            detail=detail,
            covariable=sorted(key),
            node=node_id,
        )
        return None

    def _execute(
        self,
        plan: ReplayPlan,
        chain: List[CheckpointNode],
        *,
        cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]],
        load_values: ValueLoader,
        report: Optional[Any],
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Run the plan in a scratch patched namespace.

        Returns ``(user variables, "")`` on success, or ``(None,
        detail)`` on any failure (a failed load, a raising cell, an
        incomplete result) — the detail feeds the decline record.
        """
        cells = self._cell_nodes(chain)
        scratch = PatchedNamespace({"__builtins__": __builtins__})
        for step in plan.steps:
            if step.kind == "load":
                covar = frozenset(step.names)
                assert step.ref is not None
                values = cache.get((covar, step.ref))
                if values is None:
                    values = load_values(covar, step.ref)
                    if values is None or not set(covar) <= set(values):
                        return None, (
                            f"load of {sorted(covar)} @ {step.ref} failed"
                        )
                    cache[(covar, step.ref)] = values
                for name in sorted(covar):
                    scratch.plant(name, values[name])
                self.stats.payload_loads += 1
                if report is not None:
                    report.loaded_keys.append(covar)
                    report.bytes_loaded += step.size_bytes
            else:
                node = chain[step.index]
                cell = cells[step.index]
                if self.validate:
                    scratch.begin_recording()
                try:
                    code = compile(
                        node.cell_source, f"<replay:{node.node_id}>", "exec"
                    )
                    exec(code, scratch)
                except Exception as exc:
                    if self.validate and scratch.recording:
                        scratch.end_recording()
                    return None, (
                        f"replayed cell {node.node_id} raised {exc!r}"
                    )
                if self.validate:
                    record = scratch.end_recording()
                    predicted = filter_user_names(
                        set(cell.effects.definite_accesses)
                    )
                    if predicted - record.accessed:
                        self.stats.validation_mismatches += 1
                self.stats.cells_replayed += 1
                self._cache_products(node, scratch, cache, report)
        return scratch.user_items(), ""

    def _cache_products(
        self,
        node: CheckpointNode,
        scratch: PatchedNamespace,
        cache: Dict[Tuple[CoVarKey, str], Dict[str, Any]],
        report: Optional[Any],
    ) -> None:
        """Record co-variables a replayed cell (re)produced.

        Caching them under the same (key, version) scheme the
        DataRestorer memoizes with lets sibling materializations in the
        same checkout reuse these exact objects — preserving aliasing
        across separately requested co-variables, exactly like the
        legacy recursion's memoization does.
        """
        for key in node.updated:
            if all(scratch.peek(name, _ABSENT) is not _ABSENT for name in key):
                cache.setdefault(
                    (key, node.node_id),
                    {name: scratch.peek(name) for name in key},
                )
                if report is not None and key not in report.recomputed_keys:
                    report.recomputed_keys.append(key)


_ABSENT = object()


def chain_has(graph: CheckpointGraph, node_id: str) -> bool:
    return node_id in graph


def session_cost_model(
    durations: Dict[str, float],
) -> Callable[[CellNode], float]:
    """Cost model preferring measured cell durations, falling back to the
    deterministic AST-size proxy for cells without metrics."""

    def cost(cell: CellNode) -> float:
        if cell.node_id is not None:
            measured = durations.get(cell.node_id, 0.0)
            if measured > 0.0:
                return measured
        return ast_cost(cell)

    return cost


__all__ = [
    "DeclineReason",
    "PlanDecline",
    "ReplayEngine",
    "ValueLoader",
    "session_cost_model",
]
