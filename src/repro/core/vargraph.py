"""VarGraphs — per-variable reachability graphs (§4.2 of the paper).

A VarGraph captures, for one variable, every object reachable from it. Each
node records the object's (1) type, (2) memory address, and (3) child
pointers for non-primitives or (4) value for primitives — exactly the four
attributes the paper lists. Two uses:

* **Update detection** — comparing a variable's VarGraph before and after a
  cell execution; any structural difference or node attribute change (address
  or type) indicates the co-variable was modified (Definition 2).
* **Membership detection** — intersecting the mutable-object id-sets of two
  VarGraphs; a non-empty intersection means the variables share reachable
  objects and belong to one co-variable (Definition 1).

The graph is stored as a flat node table with child indices, so comparison
is a linear scan and intersection is a set operation, both independent of
Python object identity semantics at compare time (the referenced objects may
already be gone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.hashing import combine, digest_bytes
from repro.core.objectwalk import DEFAULT_POLICY, TraversalPolicy

#: Guard against pathological graphs (e.g. million-node linked structures):
#: past this many nodes the graph is truncated and marked opaque, which is
#: conservative — the co-variable is then assumed updated whenever accessed.
DEFAULT_MAX_NODES = 200_000


@dataclass(frozen=True)
class GraphNode:
    """One reachable object.

    Attributes:
        obj_id: The object's memory address (``id``) at build time.
        type_name: Qualified type name; a changed type at the same address
            is a modification (the paper's robustness addition over
            ElasticNotebook's ID graph).
        kind: "primitive", "array", "composite", or "opaque".
        value: Primitive value / array digest for leaves; None otherwise.
        children: Indices into the owning graph's node table.
    """

    obj_id: int
    type_name: str
    kind: str
    value: Any
    children: Tuple[int, ...]


class VarGraph:
    """Immutable snapshot of one variable's reachable object graph."""

    __slots__ = ("name", "nodes", "id_set", "opaque", "truncated", "_fingerprint")

    def __init__(
        self,
        name: str,
        nodes: List[GraphNode],
        id_set: FrozenSet[int],
        opaque: bool,
        truncated: bool,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.id_set = id_set
        self.opaque = opaque
        self.truncated = truncated
        self._fingerprint: Optional[int] = None

    # -- comparison (update detection, Definition 2) --------------------------

    @property
    def fingerprint(self) -> int:
        """Digest of the full graph: structure, addresses, types, values.

        Equal fingerprints with equal node counts are treated as "no
        modification observed". Graph roots are compared pairwise in
        :func:`graphs_equal` to rule out digest collisions on small graphs.
        """
        if self._fingerprint is None:
            digests = []
            for node in self.nodes:
                digests.append(
                    combine(
                        node.obj_id,
                        digest_bytes(node.type_name.encode()),
                        _value_digest(node.value),
                        *node.children,
                    )
                )
            self._fingerprint = combine(len(self.nodes), *digests)
        return self._fingerprint

    def differs_from(self, other: "VarGraph") -> bool:
        """True if an update must be reported between the two snapshots.

        Opaque or truncated graphs cannot be compared and are conservatively
        reported as differing (the paper's "assumed updated on access").
        """
        if self.opaque or other.opaque or self.truncated or other.truncated:
            return True
        return not graphs_equal(self, other)

    # -- membership (Definition 1) ---------------------------------------------

    def shares_objects_with(self, other: "VarGraph") -> bool:
        """True if any mutable reachable object is common to both graphs."""
        if len(self.id_set) > len(other.id_set):
            return not other.id_set.isdisjoint(self.id_set)
        return not self.id_set.isdisjoint(other.id_set)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"VarGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"opaque={self.opaque}, truncated={self.truncated})"
        )


def graphs_equal(a: VarGraph, b: VarGraph) -> bool:
    """Exact node-table comparison of two graphs built for the same name."""
    if len(a.nodes) != len(b.nodes):
        return False
    if a.fingerprint != b.fingerprint:
        return False
    return a.nodes == b.nodes


def _value_digest(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, int):
        return value & 0xFFFFFFFFFFFFFFFF
    try:
        return hash(value) & 0xFFFFFFFFFFFFFFFF
    except TypeError:
        return digest_bytes(repr(value).encode())


class VarGraphBuilder:
    """Builds VarGraphs by breadth-first reachability traversal."""

    def __init__(
        self,
        policy: TraversalPolicy = None,
        max_nodes: int = DEFAULT_MAX_NODES,
    ) -> None:
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.max_nodes = max_nodes

    def build(self, name: str, obj: Any) -> VarGraph:
        """Construct the VarGraph for variable ``name`` bound to ``obj``."""
        nodes: List[GraphNode] = []
        id_set: set = set()
        index_of: Dict[int, int] = {}
        opaque = False
        truncated = False

        # Worklist of (object, slot-filler). Children indices are patched in
        # after each node's children have been assigned indices.
        pending: List[Any] = [obj]
        pending_parent: List[Optional[Tuple[int, int]]] = [None]
        child_slots: Dict[int, List[int]] = {}

        while pending:
            current = pending.pop()
            parent_slot = pending_parent.pop()
            obj_id = id(current)
            existing = index_of.get(obj_id)
            if existing is not None:
                if parent_slot is not None:
                    child_slots[parent_slot[0]][parent_slot[1]] = existing
                continue
            if len(nodes) >= self.max_nodes:
                truncated = True
                break

            visit = self.policy.visit(current)
            node_index = len(nodes)
            index_of[obj_id] = node_index
            if parent_slot is not None:
                child_slots[parent_slot[0]][parent_slot[1]] = node_index
            if visit.kind != "primitive":
                id_set.add(obj_id)
            if visit.kind == "opaque":
                opaque = True

            slots = [-1] * len(visit.children)
            child_slots[node_index] = slots
            nodes.append(
                GraphNode(
                    obj_id=obj_id,
                    type_name=type(current).__qualname__,
                    kind=visit.kind,
                    value=visit.value,
                    children=(),  # patched below
                )
            )
            for position, child in enumerate(visit.children):
                pending.append(child)
                pending_parent.append((node_index, position))

        # Patch children tuples now that all indices are known. Unfilled
        # slots (truncation) are dropped.
        final_nodes = [
            GraphNode(
                obj_id=node.obj_id,
                type_name=node.type_name,
                kind=node.kind,
                value=node.value,
                children=tuple(i for i in child_slots[index] if i >= 0),
            )
            for index, node in enumerate(nodes)
        ]
        return VarGraph(
            name=name,
            nodes=final_nodes,
            id_set=frozenset(id_set),
            opaque=opaque or truncated,
            truncated=truncated,
        )

    def build_many(self, items: Dict[str, Any]) -> Dict[str, VarGraph]:
        """Build graphs for a mapping of variable names to objects."""
        return {name: self.build(name, obj) for name, obj in items.items()}
