"""VarGraphs — per-variable reachability graphs (§4.2 of the paper).

A VarGraph captures, for one variable, every object reachable from it. Each
node records the object's (1) type, (2) memory address, and (3) child
pointers for non-primitives or (4) value for primitives — exactly the four
attributes the paper lists. Two uses:

* **Update detection** — comparing a variable's VarGraph before and after a
  cell execution; any structural difference or node attribute change (address
  or type) indicates the co-variable was modified (Definition 2).
* **Membership detection** — intersecting the mutable-object id-sets of two
  VarGraphs; a non-empty intersection means the variables share reachable
  objects and belong to one co-variable (Definition 1).

The graph is stored as a flat node table with child indices, so comparison
is a linear scan and intersection is a set operation, both independent of
Python object identity semantics at compare time (the referenced objects may
already be gone).

Incremental construction (DESIGN.md §7)
---------------------------------------

Rebuilding a candidate co-variable after every cell re-walks the *entire*
reachable graph, even when the cell touched one element of a huge shared
structure. The :class:`SubtreeCache` removes that: while walking, the
builder captures every self-contained subtree segment of the node table;
a later build that reaches the same (unchanged) object splices the cached
segment instead of re-walking and re-hashing it. Validity follows Lemma 1
extended below variable granularity: a cell can only mutate objects it
obtained references to, and every obtainable object is reachable from an
accessed name — so the delta detector invalidates exactly the cached
subtrees intersecting the accessed names' previous id-sets (the *dirty
set*) and everything else splices verbatim. Spliced builds are
node-table-identical to cold builds by construction: a segment is captured
only when it is the contiguous, self-contained run of nodes a cold
traversal emits for that subtree, and it is spliced only when the cold
traversal would emit it at that exact position (first encounter, no
overlap with already-visited nodes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro import telemetry as telemetry_mod
from repro.core.hashing import combine, digest_bytes
from repro.core.objectwalk import DEFAULT_POLICY, TraversalPolicy, _stable_repr
from repro.telemetry import WalkTelemetry

#: Guard against pathological graphs (e.g. million-node linked structures):
#: past this many nodes the graph is truncated and marked opaque, which is
#: conservative — the co-variable is then assumed updated whenever accessed.
DEFAULT_MAX_NODES = 200_000

#: Subtree segments larger than this are never cached: splicing them is
#: cheap but capturing every nested giant segment would make the walk
#: quadratic; their *children* still cache individually.
DEFAULT_MAX_ENTRY_NODES = 4096

#: Total node budget across all cached segments of one builder; oldest
#: entries are evicted beyond it.
DEFAULT_MAX_CACHED_NODES = 1_000_000

#: Per-build ceiling on nodes copied into new cache entries, bounding the
#: capture overhead of deeply nested structures (single-node array entries
#: are exempt — they are the hashing fast path).
DEFAULT_CAPTURE_BUDGET = 65_536


@dataclass(frozen=True)
class GraphNode:
    """One reachable object.

    Attributes:
        obj_id: The object's memory address (``id``) at build time.
        type_name: Qualified type name; a changed type at the same address
            is a modification (the paper's robustness addition over
            ElasticNotebook's ID graph).
        kind: "primitive", "array", "composite", or "opaque".
        value: Primitive value / array digest for leaves; None otherwise.
        children: Indices into the owning graph's node table.
    """

    obj_id: int
    type_name: str
    kind: str
    value: Any
    children: Tuple[int, ...]


_KIND_CODE = {"primitive": 1, "array": 2, "composite": 3, "opaque": 4}


class VarGraph:
    """Immutable snapshot of one variable's reachable object graph."""

    __slots__ = ("name", "nodes", "id_set", "opaque", "truncated", "_fingerprint")

    def __init__(
        self,
        name: str,
        nodes: List[GraphNode],
        id_set: FrozenSet[int],
        opaque: bool,
        truncated: bool,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.id_set = id_set
        self.opaque = opaque
        self.truncated = truncated
        self._fingerprint: Optional[int] = None

    # -- comparison (update detection, Definition 2) --------------------------

    @property
    def fingerprint(self) -> int:
        """Digest of the graph's structure, types, kinds, and values.

        Deliberately excludes node addresses (``obj_id``) and uses only
        process-stable value digests, so equal session states produce equal
        fingerprints across interpreter runs and ``PYTHONHASHSEED`` values.
        Address changes are still detected: :func:`graphs_equal` follows an
        equal fingerprint with an exact node-table comparison, which
        includes ``obj_id``.
        """
        if self._fingerprint is None:
            digests = []
            for node in self.nodes:
                digests.append(
                    combine(
                        _KIND_CODE.get(node.kind, 0),
                        digest_bytes(node.type_name.encode()),
                        _value_digest(node.value),
                        *node.children,
                    )
                )
            self._fingerprint = combine(len(self.nodes), *digests)
        return self._fingerprint

    def differs_from(self, other: "VarGraph") -> bool:
        """True if an update must be reported between the two snapshots.

        Opaque or truncated graphs cannot be compared and are conservatively
        reported as differing (the paper's "assumed updated on access").
        """
        if self.opaque or other.opaque or self.truncated or other.truncated:
            return True
        return not graphs_equal(self, other)

    # -- membership (Definition 1) ---------------------------------------------

    def shares_objects_with(self, other: "VarGraph") -> bool:
        """True if any mutable reachable object is common to both graphs."""
        if len(self.id_set) > len(other.id_set):
            return not other.id_set.isdisjoint(self.id_set)
        return not self.id_set.isdisjoint(other.id_set)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"VarGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"opaque={self.opaque}, truncated={self.truncated})"
        )


def graphs_equal(a: VarGraph, b: VarGraph) -> bool:
    """Exact node-table comparison of two graphs built for the same name."""
    if len(a.nodes) != len(b.nodes):
        return False
    if a.fingerprint != b.fingerprint:
        return False
    return a.nodes == b.nodes


def _value_digest(value: Any) -> int:
    """Process-stable digest of a node value.

    Never routes through builtin ``hash()``: string hashing is randomized
    by ``PYTHONHASHSEED``, which made graph fingerprints differ across
    processes for identical state. Each branch mixes a type tag so equal
    byte patterns of different types cannot collide.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return combine(7, int(value))
    if isinstance(value, int):
        return value & 0xFFFFFFFFFFFFFFFF
    if isinstance(value, str):
        return combine(1, digest_bytes(value.encode("utf-8", "surrogatepass")))
    if isinstance(value, bytes):
        return combine(2, digest_bytes(value))
    if isinstance(value, float):
        return combine(3, digest_bytes(struct.pack("<d", value)))
    if isinstance(value, complex):
        return combine(4, digest_bytes(struct.pack("<dd", value.real, value.imag)))
    if isinstance(value, tuple):
        return combine(5, *(_value_digest(item) for item in value))
    return combine(6, digest_bytes(_stable_repr(value).encode()))


class _CacheEntry:
    """One cached subtree: a self-contained, segment-relative node table.

    Holds a strong reference to the subtree's root. While the entry is
    valid the root is by definition unmodified, so it transitively pins
    every object in the segment — which is what makes id-keyed lookup
    sound (a pinned object's address cannot be recycled)."""

    __slots__ = ("root", "nodes", "ids", "mutable_ids", "contains_opaque")

    def __init__(
        self,
        root: Any,
        nodes: Tuple[GraphNode, ...],
        ids: FrozenSet[int],
        mutable_ids: FrozenSet[int],
        contains_opaque: bool,
    ) -> None:
        self.root = root
        self.nodes = nodes
        self.ids = ids
        self.mutable_ids = mutable_ids
        self.contains_opaque = contains_opaque

    @property
    def size(self) -> int:
        return len(self.nodes)


class SubtreeCache:
    """Identity-keyed store of reusable node-table segments.

    Entries are keyed by the root object's ``id`` and indexed in reverse by
    every member id, so dirty-set invalidation is one dictionary lookup per
    dirty object. Total size is bounded; the oldest entries evict first
    (insertion order, refreshed on re-store).
    """

    def __init__(self, max_total_nodes: int = DEFAULT_MAX_CACHED_NODES) -> None:
        self.max_total_nodes = max_total_nodes
        self._entries: Dict[int, _CacheEntry] = {}
        self._owners: Dict[int, Set[int]] = {}
        self.total_nodes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, obj_id: int) -> Optional[_CacheEntry]:
        return self._entries.get(obj_id)

    def store(self, entry: _CacheEntry) -> None:
        root_id = id(entry.root)
        if root_id in self._entries:
            self._discard(root_id)
        self._entries[root_id] = entry
        for member in entry.ids:
            self._owners.setdefault(member, set()).add(root_id)
        self.total_nodes += entry.size
        while self.total_nodes > self.max_total_nodes and self._entries:
            self._discard(next(iter(self._entries)))

    def invalidate_ids(self, ids: Iterable[int]) -> int:
        """Drop every entry whose segment contains any of ``ids``.

        Returns the number of entries dropped."""
        dropped = 0
        for obj_id in ids:
            owners = self._owners.get(obj_id)
            if owners:
                for root_id in list(owners):
                    self._discard(root_id)
                    dropped += 1
        return dropped

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._owners.clear()
        self.total_nodes = 0
        return dropped

    def _discard(self, root_id: int) -> None:
        entry = self._entries.pop(root_id, None)
        if entry is None:
            return
        self.total_nodes -= entry.size
        for member in entry.ids:
            owners = self._owners.get(member)
            if owners is not None:
                owners.discard(root_id)
                if not owners:
                    del self._owners[member]


class VarGraphBuilder:
    """Builds VarGraphs by breadth-first reachability traversal.

    With ``incremental=True`` the builder memoizes self-contained subtree
    segments in a :class:`SubtreeCache` and splices them into later builds.
    The cache is sound only when every mutation is reported to it before
    the next build: callers that observe mutations (the delta detector,
    the checkout resync) feed the dirty set to :meth:`invalidate_ids` /
    :meth:`invalidate_all` before rebuilding. A bare builder has no such
    observer, so the default is ``incremental=False`` (every build walks
    cold); :class:`~repro.core.session.KishuSession` and the trackers opt
    in because their :class:`~repro.core.delta.DeltaDetector` derives the
    dirty set from the patched namespace's access records (Lemma 1).

    The builder's traversal policy is a private layer over the shared
    :data:`~repro.core.objectwalk.DEFAULT_POLICY` (or over the policy
    passed in), so handler registrations through ``builder.policy`` never
    leak across sessions or test runs.
    """

    def __init__(
        self,
        policy: Optional[TraversalPolicy] = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        *,
        incremental: bool = False,
        max_entry_nodes: int = DEFAULT_MAX_ENTRY_NODES,
        max_cached_nodes: int = DEFAULT_MAX_CACHED_NODES,
        capture_budget: int = DEFAULT_CAPTURE_BUDGET,
        telemetry: Optional[WalkTelemetry] = None,
    ) -> None:
        base = policy if policy is not None else DEFAULT_POLICY
        self.policy = base.layer()
        self.max_nodes = max_nodes
        self.max_entry_nodes = max_entry_nodes
        self.capture_budget = capture_budget
        self.incremental = incremental
        self._cache: Optional[SubtreeCache] = (
            SubtreeCache(max_cached_nodes) if incremental else None
        )
        self.telemetry = telemetry if telemetry is not None else WalkTelemetry()

    # -- cache control (dirty-set invalidation) --------------------------------

    @property
    def cache(self) -> Optional[SubtreeCache]:
        return self._cache

    def invalidate_ids(self, ids: Iterable[int]) -> int:
        """Drop cached subtrees containing any of the (possibly mutated)
        object ids. Called with the dirty set before a rebuild cycle."""
        if self._cache is None:
            return 0
        dropped = self._cache.invalidate_ids(ids)
        self.telemetry.cache_invalidations += dropped
        return dropped

    def invalidate_all(self) -> int:
        """Drop the whole cache — the conservative fallback when no access
        information exists (``check_all`` / lost records) or when a prior
        graph was opaque or truncated (its id-set under-approximates
        reachability, so the dirty set would too)."""
        if self._cache is None:
            return 0
        dropped = self._cache.clear()
        self.telemetry.cache_invalidations += dropped
        return dropped

    # -- construction -----------------------------------------------------------

    def build(self, name: str, obj: Any) -> VarGraph:
        """Construct the VarGraph for variable ``name`` bound to ``obj``."""
        previous = telemetry_mod.activate(self.telemetry)
        try:
            return self._build(name, obj)
        finally:
            telemetry_mod.deactivate(previous)

    def _build(self, name: str, obj: Any) -> VarGraph:
        telemetry = self.telemetry
        telemetry.graphs_built += 1
        cache = self._cache
        policy = self.policy

        nodes: List[GraphNode] = []
        id_set: set = set()
        index_of: Dict[int, int] = {}
        opaque = False
        truncated = False

        # Worklist of (object, slot-filler). Children indices are patched in
        # after each node's children have been assigned indices. Spliced
        # nodes never enter ``child_slots``: their children are final.
        pending: List[Any] = [obj]
        pending_parent: List[Optional[Tuple[int, int]]] = [None]
        child_slots: Dict[int, List[int]] = {}

        # Open subtree spans, innermost last: (root object, segment start
        # index, worklist watermark). A span closes — its subtree fully
        # emitted — when the worklist shrinks back to its watermark.
        spans: List[Tuple[Any, int, int]] = []
        captured_nodes = 0

        while pending:
            current = pending.pop()
            parent_slot = pending_parent.pop()
            obj_id = id(current)
            existing = index_of.get(obj_id)
            if existing is not None:
                if parent_slot is not None:
                    child_slots[parent_slot[0]][parent_slot[1]] = existing
                captured_nodes += self._close_spans(
                    spans, len(pending), nodes, child_slots, captured_nodes
                )
                continue
            if len(nodes) >= self.max_nodes:
                truncated = True
                break

            if cache is not None:
                entry = cache.lookup(obj_id)
                if (
                    entry is not None
                    and len(nodes) + entry.size <= self.max_nodes
                    and entry.ids.isdisjoint(index_of)
                ):
                    offset = len(nodes)
                    for position, cached in enumerate(entry.nodes):
                        nodes.append(
                            GraphNode(
                                obj_id=cached.obj_id,
                                type_name=cached.type_name,
                                kind=cached.kind,
                                value=cached.value,
                                children=tuple(
                                    child + offset for child in cached.children
                                ),
                            )
                        )
                        index_of[cached.obj_id] = offset + position
                    id_set |= entry.mutable_ids
                    opaque = opaque or entry.contains_opaque
                    if parent_slot is not None:
                        child_slots[parent_slot[0]][parent_slot[1]] = offset
                    telemetry.cache_hits += 1
                    telemetry.nodes_spliced += entry.size
                    captured_nodes += self._close_spans(
                        spans, len(pending), nodes, child_slots, captured_nodes
                    )
                    continue
                telemetry.cache_misses += 1

            visit = policy.visit(current)
            telemetry.objects_visited += 1
            node_index = len(nodes)
            index_of[obj_id] = node_index
            if parent_slot is not None:
                child_slots[parent_slot[0]][parent_slot[1]] = node_index
            if visit.kind != "primitive":
                id_set.add(obj_id)
            if visit.kind == "opaque":
                opaque = True

            slots = [-1] * len(visit.children)
            child_slots[node_index] = slots
            nodes.append(
                GraphNode(
                    obj_id=obj_id,
                    type_name=type(current).__qualname__,
                    kind=visit.kind,
                    value=visit.value,
                    children=(),  # patched below
                )
            )
            if cache is not None:
                spans.append((current, node_index, len(pending)))
            for position, child in enumerate(visit.children):
                pending.append(child)
                pending_parent.append((node_index, position))
            captured_nodes += self._close_spans(
                spans, len(pending), nodes, child_slots, captured_nodes
            )

        # Patch children tuples now that all indices are known. Unfilled
        # slots (truncation) are dropped; spliced segments are already final.
        final_nodes: List[GraphNode] = []
        for index, node in enumerate(nodes):
            slots = child_slots.get(index)
            if slots is None:
                final_nodes.append(node)
            else:
                final_nodes.append(
                    GraphNode(
                        obj_id=node.obj_id,
                        type_name=node.type_name,
                        kind=node.kind,
                        value=node.value,
                        children=tuple(i for i in slots if i >= 0),
                    )
                )
        return VarGraph(
            name=name,
            nodes=final_nodes,
            id_set=frozenset(id_set),
            opaque=opaque or truncated,
            truncated=truncated,
        )

    def _close_spans(
        self,
        spans: List[Tuple[Any, int, int]],
        pending_len: int,
        nodes: List[GraphNode],
        child_slots: Dict[int, List[int]],
        captured_so_far: int,
    ) -> int:
        """Close every span whose subtree is fully emitted; returns nodes
        newly copied into the cache."""
        captured = 0
        while spans and pending_len <= spans[-1][2]:
            root, start, _ = spans.pop()
            captured += self._maybe_capture(
                root, start, nodes, child_slots, captured_so_far + captured
            )
        return captured

    def _maybe_capture(
        self,
        root: Any,
        start: int,
        nodes: List[GraphNode],
        child_slots: Dict[int, List[int]],
        captured_so_far: int,
    ) -> int:
        """Capture the closed span's segment (``nodes[start:]``) as a cache
        entry if it is self-contained and within budget. Returns the number
        of nodes copied (0 if skipped)."""
        end = len(nodes)
        size = end - start
        root_kind = nodes[start].kind
        if size == 1 and root_kind == "primitive":
            return 0  # re-visiting a lone primitive is cheaper than caching
        if size > self.max_entry_nodes:
            return 0
        if size > 1 and captured_so_far + size > self.capture_budget:
            return 0  # keep capture overhead linear on deep nestings
        segment: List[GraphNode] = []
        segment_ids: List[int] = []
        mutable_ids: List[int] = []
        contains_opaque = False
        for index in range(start, end):
            node = nodes[index]
            slots = child_slots.get(index)
            children_abs = slots if slots is not None else node.children
            relative: List[int] = []
            for child in children_abs:
                if child < start:
                    return 0  # back-edge out of the segment: context-dependent
                relative.append(child - start)
            segment.append(
                GraphNode(
                    obj_id=node.obj_id,
                    type_name=node.type_name,
                    kind=node.kind,
                    value=node.value,
                    children=tuple(relative),
                )
            )
            segment_ids.append(node.obj_id)
            if node.kind != "primitive":
                mutable_ids.append(node.obj_id)
            if node.kind == "opaque":
                contains_opaque = True
        self._cache.store(
            _CacheEntry(
                root=root,
                nodes=tuple(segment),
                ids=frozenset(segment_ids),
                mutable_ids=frozenset(mutable_ids),
                contains_opaque=contains_opaque,
            )
        )
        return size

    def build_many(self, items: Dict[str, Any]) -> Dict[str, VarGraph]:
        """Build graphs for a mapping of variable names to objects.

        Within one call the namespace is quiescent, so subtrees cached by
        earlier builds splice into later ones even without any dirty-set
        information — shared structures are walked once per cycle, not once
        per referencing variable."""
        return {name: self.build(name, obj) for name, obj in items.items()}
