"""The Checkpoint Graph (§5.1–5.2 of the paper).

A directed tree of incremental checkpoints, analogous to Git's commit
graph. Each node corresponds to one cell execution *CE t* and stores:

1. the state delta of CE *t* — which co-variables it updated (payloads live
   in the checkpoint store) and which it deleted,
2. the cell's code, and
3. the versioned co-variables CE *t* accessed — its dependencies, enabling
   fallback recomputation (§5.3),

plus (footnote 5) the session-state metadata snapshot at *t*.

The graph answers the two queries checkout needs: the **lowest common
ancestor** of two nodes, and the **state difference** between two states —
which co-variables are *identical* (no update on either side of the LCA,
Definition 6) and which have *diverged* and must be loaded or deleted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.covariable import CoVarKey
from repro.core.versioning import SessionState
from repro.errors import CheckpointNotFoundError

ROOT_ID = "t0"


@dataclass
class PayloadInfo:
    """Where one updated co-variable's data ended up.

    ``stored`` is False when serialization failed and the payload was
    skipped (§5.1 "Handling Unserializable Data") — checkout must then
    reconstruct it via fallback recomputation.
    """

    key: CoVarKey
    stored: bool
    serializer: Optional[str] = None
    size_bytes: int = 0


@dataclass
class CheckpointNode:
    """One checkpoint: the delta, code, and dependencies of CE *t*."""

    node_id: str
    parent_id: Optional[str]
    timestamp: int
    execution_count: int
    cell_source: str
    updated: Dict[CoVarKey, PayloadInfo] = field(default_factory=dict)
    deleted: Set[CoVarKey] = field(default_factory=set)
    dependencies: Dict[CoVarKey, str] = field(default_factory=dict)
    state: SessionState = field(default_factory=SessionState)

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def payload_bytes(self) -> int:
        return sum(info.size_bytes for info in self.updated.values())


@dataclass(frozen=True)
class StateDifference:
    """Result of diffing a current against a target state (Definition 6).

    Attributes:
        identical: Co-variable keys whose version is consistent across
            current, target, and their LCA — no data movement needed.
        to_load: Diverged co-variables of the target state, mapped to the
            node holding the version to load.
        to_delete_names: Variable names live in the current state but not
            in the target state.
        lca_id: The lowest common ancestor used for the classification.
    """

    identical: frozenset
    to_load: Tuple[Tuple[CoVarKey, str], ...]
    to_delete_names: frozenset
    lca_id: str


class CheckpointGraph:
    """In-memory checkpoint tree with LCA and state-difference queries."""

    def __init__(self) -> None:
        root = CheckpointNode(
            node_id=ROOT_ID,
            parent_id=None,
            timestamp=0,
            execution_count=0,
            cell_source="",
            state=SessionState(),
        )
        self._nodes: Dict[str, CheckpointNode] = {ROOT_ID: root}
        self._children: Dict[str, List[str]] = {ROOT_ID: []}
        self._depth: Dict[str, int] = {ROOT_ID: 0}
        self.head_id: str = ROOT_ID
        self._next_timestamp = 1
        #: Node ids found in a store but unreachable from the root (their
        #: parent was swept by crash recovery); see :meth:`from_store`.
        self.orphaned_node_ids: List[str] = []

    # -- construction ---------------------------------------------------------

    def new_node_id(self) -> str:
        return f"t{self._next_timestamp}"

    @property
    def next_timestamp(self) -> int:
        """Timestamp the next added node will carry — exposed so callers
        can persist a node's record *before* adding it to the graph."""
        return self._next_timestamp

    def add_node(
        self,
        *,
        cell_source: str,
        execution_count: int,
        updated: Dict[CoVarKey, PayloadInfo],
        deleted: Set[CoVarKey],
        dependencies: Dict[CoVarKey, str],
        parent_id: Optional[str] = None,
    ) -> CheckpointNode:
        """Append a checkpoint under the head (or an explicit parent).

        The new node's session-state metadata is derived from its parent's
        by applying the delta, and the head moves to the new node —
        matching the paper's "written under the head node" semantics.
        """
        parent_id = parent_id if parent_id is not None else self.head_id
        parent = self.get(parent_id)
        node_id = f"t{self._next_timestamp}"
        node = CheckpointNode(
            node_id=node_id,
            parent_id=parent_id,
            timestamp=self._next_timestamp,
            execution_count=execution_count,
            cell_source=cell_source,
            updated=dict(updated),
            deleted=set(deleted),
            dependencies=dict(dependencies),
            state=parent.state.child(node_id, updated.keys(), deleted),
        )
        self._next_timestamp += 1
        self._nodes[node_id] = node
        self._children[node_id] = []
        self._children[parent_id].append(node_id)
        self._depth[node_id] = self._depth[parent_id] + 1
        self.head_id = node_id
        return node

    def move_head(self, node_id: str) -> None:
        self._require(node_id)
        self.head_id = node_id

    # -- queries ---------------------------------------------------------------

    def get(self, node_id: str) -> CheckpointNode:
        self._require(node_id)
        return self._nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def head(self) -> CheckpointNode:
        return self._nodes[self.head_id]

    def children_of(self, node_id: str) -> List[str]:
        self._require(node_id)
        return list(self._children[node_id])

    def all_nodes(self) -> List[CheckpointNode]:
        return list(self._nodes.values())

    def depth_of(self, node_id: str) -> int:
        self._require(node_id)
        return self._depth[node_id]

    def path_to_root(self, node_id: str) -> List[str]:
        """Node ids from ``node_id`` up to and including the root."""
        self._require(node_id)
        path = [node_id]
        current = self._nodes[node_id]
        while current.parent_id is not None:
            path.append(current.parent_id)
            current = self._nodes[current.parent_id]
        return path

    def is_ancestor(self, ancestor_id: str, node_id: str) -> bool:
        """True if ``ancestor_id`` is ``node_id`` or one of its ancestors."""
        self._require(ancestor_id)
        current: Optional[str] = node_id
        while current is not None:
            if current == ancestor_id:
                return True
            current = self._nodes[current].parent_id
        return False

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """LCA by depth-equalising walk — O(depth), the off-the-shelf
        algorithm the paper cites for its linear state-diff cost."""
        self._require(a)
        self._require(b)
        while self._depth[a] > self._depth[b]:
            a = self._nodes[a].parent_id
        while self._depth[b] > self._depth[a]:
            b = self._nodes[b].parent_id
        while a != b:
            a = self._nodes[a].parent_id
            b = self._nodes[b].parent_id
        return a

    # -- state difference (Definition 6) ----------------------------------------

    def state_difference(self, current_id: str, target_id: str) -> StateDifference:
        """Classify co-variables as identical or diverged between states.

        A co-variable X is *identical* iff the same versioned co-variable
        (X, t_c) appears in the states of the current node, the target
        node, and their lowest common ancestor. Everything else in the
        target state must be loaded; names live only in the current state
        must be deleted.
        """
        current_state = self.get(current_id).state
        target_state = self.get(target_id).state
        lca_id = self.lowest_common_ancestor(current_id, target_id)
        lca_state = self.get(lca_id).state

        identical: Set[CoVarKey] = set()
        to_load: List[Tuple[CoVarKey, str]] = []
        for key, version in target_state.items():
            if (
                current_state.get(key) == version
                and lca_state.get(key) == version
            ):
                identical.add(key)
            else:
                to_load.append((key, version))

        to_delete = current_state.names() - target_state.names()
        return StateDifference(
            identical=frozenset(identical),
            to_load=tuple(to_load),
            to_delete_names=frozenset(to_delete),
            lca_id=lca_id,
        )

    # -- durability -----------------------------------------------------------------

    @classmethod
    def from_store(cls, store) -> "CheckpointGraph":
        """Rebuild the graph from a checkpoint store's node records.

        Nodes are replayed in the store's deterministic order (timestamp,
        then execution count, then insertion), re-deriving each node's
        session-state metadata; payload availability is recovered from the
        store's payload rows. The head is left at the latest node (callers
        may move it before checking out).

        A node whose parent is absent — possible when crash recovery swept
        an uncommitted ancestor — is skipped rather than fatal, along with
        its descendants; their ids are recorded in ``orphaned_node_ids``
        so callers can surface the loss. The result is always a valid
        prefix tree of the original history.
        """
        graph = cls()
        for record in store.read_nodes():
            parent_id = record.parent_id if record.parent_id is not None else ROOT_ID
            if parent_id not in graph._nodes:
                graph.orphaned_node_ids.append(record.node_id)
                continue
            updated: Dict[CoVarKey, PayloadInfo] = {}
            for payload in store.payloads_of(record.node_id):
                updated[payload.key] = PayloadInfo(
                    key=payload.key,
                    stored=payload.stored,
                    serializer=payload.serializer,
                    size_bytes=payload.size_bytes,
                )
            parent = record.parent_id if record.parent_id is not None else ROOT_ID
            node = CheckpointNode(
                node_id=record.node_id,
                parent_id=parent,
                timestamp=record.timestamp,
                execution_count=record.execution_count,
                cell_source=record.cell_source,
                updated=updated,
                deleted=set(record.deleted_keys),
                dependencies=dict(record.dependencies),
            )
            graph._adopt(node)
        return graph

    def _adopt(self, node: CheckpointNode) -> None:
        """Insert a reconstructed node, deriving its state metadata."""
        if node.parent_id not in self._nodes:
            raise CheckpointNotFoundError(
                f"cannot adopt node {node.node_id!r}: parent {node.parent_id!r} unknown"
            )
        parent = self._nodes[node.parent_id]
        node.state = parent.state.child(
            node.node_id, node.updated.keys(), node.deleted
        )
        self._nodes[node.node_id] = node
        self._children[node.node_id] = []
        self._children[node.parent_id].append(node.node_id)
        self._depth[node.node_id] = self._depth[node.parent_id] + 1
        self.head_id = node.node_id
        self._next_timestamp = max(self._next_timestamp, node.timestamp + 1)

    # -- sizes (Fig 19) ------------------------------------------------------------

    def metadata_size_estimate(self) -> int:
        """Approximate in-memory metadata footprint in bytes.

        Counts node bookkeeping and per-node session-state references —
        the quantity Fig 19 (left) shows growing linearly with executed
        cells.
        """
        total = 0
        for node in self._nodes.values():
            total += 96  # fixed node overhead
            total += len(node.cell_source)
            for key in node.updated:
                total += sum(len(name) for name in key) + 24
            for key in node.deleted:
                total += sum(len(name) for name in key) + 24
            for key in node.dependencies:
                total += sum(len(name) for name in key) + 32
            for key, version in node.state.items():
                total += sum(len(name) for name in key) + len(version) + 16
        return total

    # -- internals -------------------------------------------------------------------

    def _require(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise CheckpointNotFoundError(f"no checkpoint with id {node_id!r}")
