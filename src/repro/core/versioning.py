"""Versioned co-variables and session-state metadata (§5.1–5.2).

A **versioned co-variable** is a (co-variable, timestamp) pair — the value
a co-variable took after the cell execution at that timestamp (Definition
4). A **session state** at timestamp *t* is the set of versioned
co-variables live after cell execution *t* (Definition 5): each co-variable
version written by an ancestor of *t* and not overwritten on the path to
*t*.

Per the paper's footnote 5, Kishu stores a snapshot of the session-state
*metadata* (references to co-variable versions, not data) in every
checkpoint node; :class:`SessionState` is that snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set

from repro.core.covariable import CoVarKey


@dataclass(frozen=True)
class VersionedCoVariable:
    """A co-variable version: member names + the node that wrote it."""

    key: CoVarKey
    node_id: str

    def __repr__(self) -> str:
        names = ",".join(sorted(self.key))
        return f"({{{names}}}, {self.node_id})"


class SessionState:
    """The set of versioned co-variables constituting one session state.

    Internally a mapping from co-variable key to the id of the checkpoint
    node holding its current version. Immutable-by-convention: deriving the
    next state goes through :meth:`child` which applies one cell's delta.
    """

    __slots__ = ("_versions",)

    def __init__(self, versions: Dict[CoVarKey, str] = None) -> None:
        self._versions: Dict[CoVarKey, str] = dict(versions or {})

    # -- queries ---------------------------------------------------------------

    def version_of(self, key: CoVarKey) -> str:
        return self._versions[key]

    def get(self, key: CoVarKey, default=None):
        return self._versions.get(key, default)

    def keys(self) -> Set[CoVarKey]:
        return set(self._versions)

    def items(self) -> Iterable:
        return self._versions.items()

    def names(self) -> Set[str]:
        """All variable names live in this state."""
        live: Set[str] = set()
        for key in self._versions:
            live |= key
        return live

    def versioned(self) -> Set[VersionedCoVariable]:
        return {
            VersionedCoVariable(key=key, node_id=node_id)
            for key, node_id in self._versions.items()
        }

    def __contains__(self, key: CoVarKey) -> bool:
        return key in self._versions

    def __len__(self) -> int:
        return len(self._versions)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SessionState):
            return NotImplemented
        return self._versions == other._versions

    def __repr__(self) -> str:
        return f"SessionState({len(self._versions)} co-variables)"

    # -- derivation --------------------------------------------------------------

    def child(
        self,
        node_id: str,
        updated_keys: Iterable[CoVarKey],
        deleted_keys: Iterable[CoVarKey],
    ) -> "SessionState":
        """State after applying one cell execution's delta.

        Updated co-variables take version ``node_id``; any prior co-variable
        sharing a name with an updated or deleted one is superseded
        (Definition 5 condition 2: overwritten by a newer version).
        """
        updated = list(updated_keys)
        deleted = set(deleted_keys)
        superseded_names: FrozenSet[str] = frozenset().union(*updated, *deleted) if (
            updated or deleted
        ) else frozenset()

        versions: Dict[CoVarKey, str] = {}
        for key, version in self._versions.items():
            if key in deleted:
                continue
            if superseded_names and not superseded_names.isdisjoint(key):
                continue
            versions[key] = version
        for key in updated:
            versions[key] = node_id
        return SessionState(versions)

    def copy(self) -> "SessionState":
        return SessionState(self._versions)
