"""Rule-based static cell analysis (§6.2 of the paper).

The paper notes that Kishu "can be extended to incorporate … rule-based
cell analyses" to skip update detection for cells that provably cannot
modify the state — the read-only printing cells (``y_train[:10]``,
``df.head()``) whose detection overhead Fig 17 calls out (1.06× of a 2 ms
cell).

:class:`ReadOnlyCellAnalyzer` implements that extension conservatively: a
cell qualifies as read-only only when *every* statement is an expression
whose AST consists of name loads, constants, subscripts, attribute loads,
and calls to a whitelist of known-pure callables (``print``, ``len``,
``repr``, …, plus method names known to be non-mutating like ``head`` or
``describe``). Anything else — assignments, deletes, arbitrary calls,
imports — disqualifies the cell, so skipping detection is always safe.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional

#: Built-in callables that cannot mutate their arguments' object graphs.
PURE_BUILTINS: FrozenSet[str] = frozenset(
    {"print", "len", "repr", "str", "type", "id", "abs", "min", "max",
     "sum", "sorted", "list", "dict", "tuple", "set", "format", "round",
     "any", "all", "isinstance", "hash", "bool", "int", "float"}
)

#: Method names conventionally non-mutating in data-science libraries
#: (the paper's ``df.head`` example). Conservative: a library *could*
#: define a mutating ``head``, so this list is user-extensible and the
#: default rule set can be disabled entirely.
PURE_METHODS: FrozenSet[str] = frozenset(
    {"head", "tail", "describe", "info", "keys", "values", "items",
     "mean", "sum", "min", "max", "std", "count", "copy", "hexdigest"}
)


class ReadOnlyCellAnalyzer:
    """Statically classifies cells that provably perform no state update."""

    def __init__(
        self,
        pure_builtins: Optional[FrozenSet[str]] = None,
        pure_methods: Optional[FrozenSet[str]] = None,
    ) -> None:
        self.pure_builtins = (
            pure_builtins if pure_builtins is not None else PURE_BUILTINS
        )
        self.pure_methods = pure_methods if pure_methods is not None else PURE_METHODS

    def is_read_only(self, source: str) -> bool:
        """True only if every statement is a provably pure expression."""
        try:
            module = ast.parse(source)
        except SyntaxError:
            return False
        if not module.body:
            return True
        return all(
            isinstance(stmt, ast.Expr) and self._pure_expression(stmt.value)
            for stmt in module.body
        )

    def _pure_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Constant, ast.Name)):
            return True
        if isinstance(node, ast.Attribute):
            return self._pure_expression(node.value)
        if isinstance(node, ast.Subscript):
            return self._pure_expression(node.value) and self._pure_slice(node.slice)
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(self._pure_expression(item) for item in node.elts)
        if isinstance(node, ast.BinOp):
            return self._pure_expression(node.left) and self._pure_expression(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._pure_expression(node.operand)
        if isinstance(node, ast.Compare):
            return self._pure_expression(node.left) and all(
                self._pure_expression(comp) for comp in node.comparators
            )
        if isinstance(node, ast.Call):
            return self._pure_call(node)
        if isinstance(node, ast.JoinedStr):
            return all(
                self._pure_expression(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        return False

    def _pure_slice(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Slice):
            parts = (node.lower, node.upper, node.step)
            return all(part is None or self._pure_expression(part) for part in parts)
        return self._pure_expression(node)

    def _pure_call(self, node: ast.Call) -> bool:
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return False
        arguments_pure = all(
            self._pure_expression(arg) for arg in node.args
        ) and all(
            keyword.value is not None and self._pure_expression(keyword.value)
            for keyword in node.keywords
        )
        if not arguments_pure:
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self.pure_builtins
        if isinstance(func, ast.Attribute):
            return func.attr in self.pure_methods and self._pure_expression(func.value)
        return False
