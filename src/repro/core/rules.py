"""Backward-compatibility shim — the rule-based cell analysis moved to
:mod:`repro.analysis` (DESIGN.md §8).

``repro.core.rules.ReadOnlyCellAnalyzer`` keeps working but is
deprecated: import :class:`repro.analysis.ReadOnlyCellAnalyzer` instead,
and extend the purity whitelists through
:data:`repro.analysis.GLOBAL_PURITY` (or a private
:class:`repro.analysis.PurityRegistry`) rather than by constructing
analyzers with frozen whitelist arguments.
"""

from __future__ import annotations

import warnings
from typing import FrozenSet, Optional

from repro.analysis.rules import (  # noqa: F401 - re-exported for compatibility
    PURE_BUILTINS,
    PURE_METHODS,
    PurityRegistry,
)
from repro.analysis.rules import ReadOnlyCellAnalyzer as _ReadOnlyCellAnalyzer


class ReadOnlyCellAnalyzer(_ReadOnlyCellAnalyzer):
    """Deprecated alias of :class:`repro.analysis.ReadOnlyCellAnalyzer`."""

    def __init__(
        self,
        pure_builtins: Optional[FrozenSet[str]] = None,
        pure_methods: Optional[FrozenSet[str]] = None,
        *,
        purity: Optional[PurityRegistry] = None,
    ) -> None:
        warnings.warn(
            "repro.core.rules.ReadOnlyCellAnalyzer is deprecated; use "
            "repro.analysis.ReadOnlyCellAnalyzer (and repro.analysis."
            "GLOBAL_PURITY for whitelist registration) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(pure_builtins, pure_methods, purity=purity)


__all__ = ["PURE_BUILTINS", "PURE_METHODS", "PurityRegistry", "ReadOnlyCellAnalyzer"]
