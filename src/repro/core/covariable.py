"""Co-variables and the co-variable pool (§4.1 of the paper).

A **co-variable** is a set of variable names whose reachable objects form a
maximally connected component (Definition 1). It is the minimum granularity
at which state can be stored and loaded without breaking shared references:
by construction there are no references between distinct co-variables, so a
co-variable can be treated as an independent data table.

The :class:`CoVariablePool` maintains the current partition of the
namespace into co-variables, keyed by frozensets of member names, together
with each member's most recent VarGraph snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.vargraph import VarGraph, VarGraphBuilder

#: A co-variable is identified by its (frozen) set of member names.
CoVarKey = FrozenSet[str]


def covar_key(names: Iterable[str]) -> CoVarKey:
    return frozenset(names)


@dataclass
class CoVariable:
    """One co-variable: member names plus their VarGraph snapshots."""

    names: CoVarKey
    graphs: Dict[str, VarGraph] = field(default_factory=dict)

    @property
    def key(self) -> CoVarKey:
        return self.names

    @property
    def opaque(self) -> bool:
        """True if any member graph contains untraversable objects."""
        return any(graph.opaque for graph in self.graphs.values())

    @property
    def id_set(self) -> FrozenSet[int]:
        union: Set[int] = set()
        for graph in self.graphs.values():
            union |= graph.id_set
        return frozenset(union)

    def total_nodes(self) -> int:
        return sum(len(graph) for graph in self.graphs.values())

    def type_names(self) -> Set[str]:
        """Qualified type names of every reachable object (blocklist checks)."""
        names: Set[str] = set()
        for graph in self.graphs.values():
            names.update(node.type_name for node in graph.nodes)
        return names

    def __repr__(self) -> str:
        return f"CoVariable({{{', '.join(sorted(self.names))}}})"


def group_into_components(graphs: Dict[str, VarGraph]) -> List[Set[str]]:
    """Partition variable names into connected components of shared objects.

    Two names are joined when their VarGraphs' mutable-object id-sets
    intersect (the paper's Fig 7 intersection test). Union-find over the
    object ids gives the maximal components of Definition 1.
    """
    parent: Dict[str, str] = {name: name for name in graphs}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:  # path compression
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    owner_of_id: Dict[int, str] = {}
    for name, graph in graphs.items():
        for obj_id in graph.id_set:
            existing = owner_of_id.get(obj_id)
            if existing is None:
                owner_of_id[obj_id] = name
            else:
                union(existing, name)

    components: Dict[str, Set[str]] = {}
    for name in graphs:
        components.setdefault(find(name), set()).add(name)
    return list(components.values())


class CoVariablePool:
    """The current partition of the user namespace into co-variables."""

    def __init__(self, builder: Optional[VarGraphBuilder] = None) -> None:
        self.builder = builder if builder is not None else VarGraphBuilder()
        self._covars: Dict[CoVarKey, CoVariable] = {}
        self._key_of_name: Dict[str, CoVarKey] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_namespace(
        cls, items: Dict[str, Any], builder: Optional[VarGraphBuilder] = None
    ) -> "CoVariablePool":
        """Build the pool for an entire namespace snapshot."""
        pool = cls(builder)
        graphs = pool.builder.build_many(items)
        for member_names in group_into_components(graphs):
            pool._insert(
                CoVariable(
                    names=covar_key(member_names),
                    graphs={name: graphs[name] for name in member_names},
                )
            )
        return pool

    # -- queries ---------------------------------------------------------------

    def keys(self) -> Set[CoVarKey]:
        return set(self._covars)

    def get(self, key: CoVarKey) -> Optional[CoVariable]:
        return self._covars.get(key)

    def covariable_of(self, name: str) -> Optional[CoVariable]:
        key = self._key_of_name.get(name)
        return self._covars.get(key) if key is not None else None

    def key_of(self, name: str) -> Optional[CoVarKey]:
        return self._key_of_name.get(name)

    def graph_of(self, name: str) -> Optional[VarGraph]:
        """The most recent VarGraph snapshot of one variable, if tracked."""
        covariable = self.covariable_of(name)
        if covariable is None:
            return None
        return covariable.graphs.get(name)

    def all_names(self) -> Set[str]:
        return set(self._key_of_name)

    def covariables(self) -> List[CoVariable]:
        return list(self._covars.values())

    def __len__(self) -> int:
        return len(self._covars)

    def __contains__(self, key: CoVarKey) -> bool:
        return key in self._covars

    # -- mutation (used by the delta detector and checkout) ---------------------

    def _insert(self, covariable: CoVariable) -> None:
        self._covars[covariable.key] = covariable
        for name in covariable.names:
            self._key_of_name[name] = covariable.key

    def _remove(self, key: CoVarKey) -> None:
        covariable = self._covars.pop(key)
        for name in covariable.names:
            existing = self._key_of_name.get(name)
            if existing == key:
                del self._key_of_name[name]

    def replace(
        self, removed_keys: Iterable[CoVarKey], added: Iterable[CoVariable]
    ) -> None:
        """Atomically swap a set of co-variables for their successors."""
        for key in removed_keys:
            if key in self._covars:
                self._remove(key)
        for covariable in added:
            self._insert(covariable)

    def rebuild_for_names(
        self, names: Iterable[str], namespace_items: Dict[str, Any]
    ) -> Dict[str, VarGraph]:
        """Re-generate VarGraphs for ``names`` that still exist in the
        namespace; missing names are simply absent from the result."""
        present = {
            name: namespace_items[name] for name in names if name in namespace_items
        }
        return self.builder.build_many(present)
